"""Bench: regenerate Figure 8 (avg scans/ops vs base number, C=100)."""

from conftest import QUICK


def test_fig8(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig8", quick=QUICK)
    # RangeEval-Opt dominates RangeEval on every base (Figure 8a/8b).
    for row in result.rows:
        _, _, scans_re, scans_opt, ops_re, ops_opt = row
        assert scans_opt <= scans_re + 1e-9
        assert ops_opt <= ops_re + 1e-9
    # Multi-component region: roughly half the operations.
    multi = [row for row in result.rows if row[1] >= 3]
    assert multi
    ratios = [row[5] / row[4] for row in multi]
    assert sum(ratios) / len(ratios) < 0.75
