"""Bench: regenerate Figure 11 (the knee of the space-optimal graph)."""

from conftest import QUICK


def test_fig11(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig11", quick=QUICK)
    knee_rows = [row for row in result.rows if row[4]]
    assert len(knee_rows) == 1
    # The paper's observation: the knee is the 2-component index, and the
    # definition-based knee coincides with the Theorem 7.1 formula.
    assert knee_rows[0][0] == 2
    assert any("matches" in note for note in result.notes)
