"""Bench: regenerate Table 2 (heuristic vs exact constrained search)."""

from conftest import QUICK


def test_table2(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("table2", quick=QUICK)
    for row in result.rows:
        cardinality, constraints, pct_optimal, max_gap = row
        # The paper reports >= 97% optimal; allow a small margin since
        # the swept constraint grid differs.
        assert pct_optimal >= 95.0, cardinality
        assert max_gap < 0.5
