"""Where each bitmap codec wins: a (density, clustering) crossover map.

Sweeps a grid of bit densities and clustering factors (mean run length of
the set bits; ``None`` = uniform random placement), builds each cell's
bitmaps in all three served representations — dense :class:`BitVector`,
:class:`WahBitVector`, and :class:`RoaringBitmap` — and times the AND+OR
pair every evaluator bottoms out in.  Results go to
``benchmarks/results/BENCH_codec_crossover.json``.

The map shows the three regimes the codecs split the plane into:

- **Clustered runs** (run length >= a few hundred bits) — WAH's
  word-aligned run-length coding is at home: smallest payloads, op cost
  proportional to runs.
- **Uniform scatter at low-to-moderate density** — WAH degenerates to one
  literal word per set region and pays its word-at-a-time loop; Roaring's
  array/bitmap containers operate on 2^16-bit chunks with vectorized
  merges and win outright (the headline assertion pins Roaring >= 1.2x
  WAH on at least one uniform cell at full scale).
- **Dense uniform** (density high enough that compression buys < 2x) —
  plain dense word-parallel ops are fastest and compression saves no
  space, so ``dense`` is the honest recommendation.

Each cell records the per-codec payload bytes and op time plus three
verdicts: ``time_winner``, ``space_winner``, and the combined ``winner``
that :func:`repro.core.advisor.recommend_codec` consumes (dense only when
compression is pointless, otherwise the faster compressed codec).

Run standalone (full 1M-row scale)::

    PYTHONPATH=src python benchmarks/bench_codec_crossover.py

smoke mode (quick sizes, used by CI)::

    PYTHONPATH=src python benchmarks/bench_codec_crossover.py --smoke

or through pytest (quick sizes unless ``REPRO_BENCH_FULL=1``)::

    pytest benchmarks/bench_codec_crossover.py -q
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_codec_crossover.json")

QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""

#: Fraction of bits set in each generated bitmap.
DENSITIES = (0.0001, 0.001, 0.01, 0.1, 0.5)

#: Mean run length (bits) of the set-bit runs; None = uniform random.
CLUSTER_RUNS = (None, 64, 1024, 16384)

#: A codec must shrink the dense payload by at least this factor before
#: recommending it over plain dense ops (which are always fastest raw).
COMPRESSION_FLOOR = 2.0

REPEATS = 5
CODECS = ("dense", "wah", "roaring")


def clustered_bools(
    nbits: int, density: float, run: int | None, rng: np.random.Generator
) -> np.ndarray:
    """A 0/1 array with ``density`` ones in runs averaging ``run`` bits.

    ``run=None`` places each bit independently (uniform random).  For the
    clustered case, one-runs are geometric with mean ``run`` and the
    zero-gaps are geometric with the mean that yields the target density.
    """
    if run is None:
        return rng.random(nbits) < density
    gap = max(1.0, run * (1.0 - density) / density)
    n_runs = max(4, int(2 * nbits / (run + gap)))
    lengths = np.empty(2 * n_runs, dtype=np.int64)
    lengths[0::2] = rng.geometric(1.0 / gap, size=n_runs)
    lengths[1::2] = rng.geometric(1.0 / run, size=n_runs)
    values = np.zeros(2 * n_runs, dtype=bool)
    values[1::2] = True
    bits = np.repeat(values, lengths)
    while len(bits) < nbits:
        bits = np.concatenate([bits, bits])
    return bits[:nbits]


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _winner(cell: dict) -> str:
    """The recommendation verdict the advisor consumes (see module doc)."""
    if cell["compression_ratio"] < COMPRESSION_FLOOR:
        return "dense"
    return "wah" if cell["wah_ms"] <= cell["roaring_ms"] else "roaring"


def bench_cell(
    nbits: int, density: float, run: int | None, rng: np.random.Generator
) -> dict:
    a = clustered_bools(nbits, density, run, rng)
    b = clustered_bools(nbits, density, run, rng)
    da, db = BitVector.from_bools(a), BitVector.from_bools(b)
    wa, wb = WahBitVector.from_bitvector(da), WahBitVector.from_bitvector(db)
    ra, rb = RoaringBitmap.from_bools(a), RoaringBitmap.from_bools(b)

    # The three paths must agree bit-for-bit before any of them is timed.
    assert (wa & wb).to_bitvector() == (da & db)
    assert (ra & rb).to_bitvector() == (da & db)
    assert (wa | wb).to_bitvector() == (da | db)
    assert (ra | rb).to_bitvector() == (da | db)

    times = {
        "dense": best_of(lambda: (da & db, da | db)),
        "wah": best_of(lambda: (wa & wb, wa | wb)),
        "roaring": best_of(lambda: (ra & rb, ra | rb)),
    }
    nbytes = {"dense": da.nbytes, "wah": wa.nbytes, "roaring": ra.nbytes}
    cell = {
        "nbits": nbits,
        "density": density,
        "cluster_run": run,
        # Uniform placement still makes runs of mean 1/(1-d) bits; the
        # advisor's nearest-cell lookup needs one numeric axis for both.
        "effective_run": run if run is not None else round(1.0 / (1.0 - density), 2),
        "dense_bytes": nbytes["dense"],
        "wah_bytes": nbytes["wah"],
        "roaring_bytes": nbytes["roaring"],
        "compression_ratio": round(
            nbytes["dense"] / min(nbytes["wah"], nbytes["roaring"]), 2
        ),
        "dense_ms": round(times["dense"] * 1e3, 4),
        "wah_ms": round(times["wah"] * 1e3, 4),
        "roaring_ms": round(times["roaring"] * 1e3, 4),
        "roaring_vs_wah": round(times["wah"] / times["roaring"], 2),
        "time_winner": min(CODECS, key=lambda c: times[c]),
        "space_winner": min(CODECS, key=lambda c: nbytes[c]),
    }
    cell["winner"] = _winner(cell)
    return cell


def run(nbits: int) -> dict:
    rng = np.random.default_rng(42)
    cells = [
        bench_cell(nbits, density, run, rng)
        for density in DENSITIES
        for run in CLUSTER_RUNS
    ]
    uniform = [c for c in cells if c["cluster_run"] is None]
    headline = max(c["roaring_vs_wah"] for c in uniform)
    return {
        "benchmark": "codec_crossover",
        "config": {
            "nbits": nbits,
            "densities": list(DENSITIES),
            "cluster_runs": [r if r is not None else "uniform" for r in CLUSTER_RUNS],
            "compression_floor": COMPRESSION_FLOOR,
            "repeats": REPEATS,
            "quick": nbits < 1_000_000,
        },
        "crossover_map": cells,
        "headline_roaring_vs_wah_uniform": headline,
    }


def save(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report(payload: dict) -> str:
    lines = [
        f"codec crossover at {payload['config']['nbits']} rows "
        f"(AND+OR, best of {payload['config']['repeats']}):",
        f"{'density':>8} {'cluster':>8} {'ratio':>7} {'dense ms':>9} "
        f"{'wah ms':>8} {'roar ms':>8} {'roar/wah':>9} {'winner':>8}",
    ]
    for cell in payload["crossover_map"]:
        cluster = cell["cluster_run"] if cell["cluster_run"] is not None else "uniform"
        lines.append(
            f"{cell['density']:>8} {cluster:>8} {cell['compression_ratio']:>7} "
            f"{cell['dense_ms']:>9} {cell['wah_ms']:>8} {cell['roaring_ms']:>8} "
            f"{cell['roaring_vs_wah']:>9} {cell['winner']:>8}"
        )
    lines.append(
        f"headline: roaring is {payload['headline_roaring_vs_wah_uniform']}x "
        f"wah on its best uniform-random cell"
    )
    return "\n".join(lines)


def test_codec_crossover():
    """Roaring beats WAH on uniform scatter; the map covers all regimes.

    The 1.2x acceptance bar applies to the full 1M-row run; quick mode
    uses a looser floor because fixed per-op overheads loom larger at
    small sizes.
    """
    payload = run(100_000 if QUICK else 1_000_000)
    save(payload)
    print()
    print(report(payload))
    floor = 1.1 if QUICK else 1.2
    assert payload["headline_roaring_vs_wah_uniform"] >= floor
    winners = {cell["winner"] for cell in payload["crossover_map"]}
    # The plane genuinely splits.  At quick sizes WAH's fixed per-op
    # overhead can push its clustered wins under Roaring's, so the full
    # three-way split is only pinned at paper scale.
    assert {"dense", "roaring"} <= winners, winners
    if not QUICK:
        assert winners == set(CODECS), winners


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        description="Map the (density, clustering) codec-crossover plane."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick sizes and no result file (CI sanity run)",
    )
    args = parser.parse_args(argv)
    nbits = 100_000 if args.smoke else 1_000_000
    payload = run(nbits)
    if not args.smoke:
        save(payload)
    print(report(payload))
    if not args.smoke:
        print(
            f"wrote {os.path.relpath(RESULT_FILE)}; best uniform roaring-vs-wah "
            f"{payload['headline_roaring_vs_wah_uniform']}x"
        )


if __name__ == "__main__":
    main()
