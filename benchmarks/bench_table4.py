"""Bench: regenerate Table 4 (compressibility of BS/CS/IS)."""

from conftest import QUICK


def test_table4(run_experiment_benchmark):
    results = run_experiment_benchmark("table4", quick=QUICK)
    assert len(results) == 2  # one per data set
    for result in results:
        # Paper: CS-indexes compress best, most dramatically at n = 1.
        first = result.rows[0]
        assert first[3] <= first[2]  # cCS% <= cBS% on one component
        # Compression's benefit shrinks as the index is decomposed.
        assert result.rows[-1][2] > result.rows[0][2]
