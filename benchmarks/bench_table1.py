"""Bench: regenerate Table 1 (RangeEval vs RangeEval-Opt worst cases)."""

from conftest import QUICK


def test_table1(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("table1", quick=QUICK)
    # Every measured worst case matches its closed-form expression.
    assert all(row[-1] == "yes" for row in result.rows)
    # The paper's headline: one fewer scan for range predicates.
    by_key = {(row[0], row[1], row[2]): row for row in result.rows}
    for n in {row[0] for row in result.rows}:
        old = by_key[(n, "range_eval", "A <= c")]
        new = by_key[(n, "range_eval_opt", "A <= c")]
        assert new[9] == old[9] - 1  # scans
        assert new[7] <= old[7]  # ops
