"""Compressed-domain execution vs. decode-then-operate.

Three measurements, written to
``benchmarks/results/BENCH_compressed_path.json``:

- ``bitmap_ops`` — raw AND/OR on WAH-coded bitmaps across row counts and
  clustering factors (mean run length in bits).  ``compressed`` operates
  on the payloads directly (:func:`repro.bitmaps.wah.wah_and`);
  ``decode_then_operate`` is the old path: decode both payloads to dense
  :class:`BitVector` and run the dense op.  On clustered bitmaps the
  compressed path wins because its cost is proportional to runs, not
  rows; on incompressible bitmaps it loses — which is exactly the
  crossover the ``ablation_compressed_ops`` experiment maps.
- ``kway_or`` — the k-way :func:`~repro.bitmaps.wah.wah_or_many` run
  merge (per Kaser & Lemire) vs. folding ``wah_or`` pairwise and vs.
  decoding everything dense.
- ``query_eval`` + ``cache_capacity`` — end-to-end ``evaluate()`` latency
  on a clustered 1M-row column through a dense index vs. its
  ``as_compressed()`` view (results verified bit-identical), and how many
  of the index's bitmaps one :class:`SharedBitmapCache` byte budget holds
  in each representation.

Run standalone (full scale)::

    PYTHONPATH=src python benchmarks/bench_compressed_path.py

or through pytest (quick sizes unless ``REPRO_BENCH_FULL=1``)::

    pytest benchmarks/bench_compressed_path.py -q
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.wah import wah_and, wah_decode, wah_encode, wah_or, wah_or_many
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import OPERATORS, Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.engine.cache import SharedBitmapCache
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import open_scheme, write_index

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_compressed_path.json")

QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""

#: Mean run length in bits; None = uniform random (incompressible).  The
#: sweep brackets the crossover: short runs (128) lose to decode-then-
#: operate, long runs win by growing margins.
CLUSTER_FACTORS = (128, 512, 4096, 32768, None)
REPEATS = 5
KWAY = 8


def clustered_bools(
    nbits: int, factor: int | None, rng: np.random.Generator
) -> np.ndarray:
    """A random 0/1 array whose runs average ``factor`` bits long."""
    if factor is None:
        return rng.random(nbits) < 0.5
    lengths = rng.geometric(1.0 / factor, size=max(4, 2 * nbits // factor))
    values = np.zeros(len(lengths), dtype=bool)
    values[int(rng.integers(0, 2)) :: 2] = True
    bits = np.repeat(values, lengths)
    while len(bits) < nbits:
        bits = np.concatenate([bits, bits])
    return bits[:nbits]


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_bitmap_ops(row_counts: tuple[int, ...]) -> list[dict]:
    rows = []
    rng = np.random.default_rng(42)
    for nbits in row_counts:
        for factor in CLUSTER_FACTORS:
            a = clustered_bools(nbits, factor, rng)
            b = clustered_bools(nbits, factor, rng)
            pa = wah_encode(np.packbits(a, bitorder="little").tobytes())
            pb = wah_encode(np.packbits(b, bitorder="little").tobytes())
            da = BitVector.from_bools(a)
            db = BitVector.from_bools(b)

            compressed_s = best_of(lambda: (wah_and(pa, pb), wah_or(pa, pb)))
            decode_s = best_of(
                lambda: (
                    BitVector.from_bytes(wah_decode(pa), nbits)
                    & BitVector.from_bytes(wah_decode(pb), nbits),
                    BitVector.from_bytes(wah_decode(pa), nbits)
                    | BitVector.from_bytes(wah_decode(pb), nbits),
                )
            )
            # Sanity: the two paths agree bit-for-bit.
            assert wah_decode(wah_and(pa, pb)) == (da & db).to_bytes()
            assert wah_decode(wah_or(pa, pb)) == (da | db).to_bytes()
            rows.append(
                {
                    "nbits": nbits,
                    "cluster_factor": factor,
                    "compressed_bytes": len(pa),
                    "dense_bytes": da.nbytes,
                    "compression_ratio": round(da.nbytes / len(pa), 2),
                    "compressed_ms": round(compressed_s * 1e3, 4),
                    "decode_then_operate_ms": round(decode_s * 1e3, 4),
                    "speedup": round(decode_s / compressed_s, 2),
                }
            )
    return rows


def bench_kway_or(nbits: int) -> dict:
    rng = np.random.default_rng(7)
    payloads = []
    for _ in range(KWAY):
        bits = clustered_bools(nbits, 4096, rng)
        payloads.append(wah_encode(np.packbits(bits, bitorder="little").tobytes()))

    def pairwise():
        acc = payloads[0]
        for p in payloads[1:]:
            acc = wah_or(acc, p)
        return acc

    def dense_fold():
        acc = BitVector.from_bytes(wah_decode(payloads[0]), nbits)
        for p in payloads[1:]:
            acc = acc | BitVector.from_bytes(wah_decode(p), nbits)
        return acc

    kway_s = best_of(lambda: wah_or_many(payloads))
    pairwise_s = best_of(pairwise)
    dense_s = best_of(dense_fold)
    assert wah_decode(wah_or_many(payloads)) == wah_decode(pairwise())
    assert wah_decode(wah_or_many(payloads)) == dense_fold().to_bytes()
    return {
        "nbits": nbits,
        "k": KWAY,
        "kway_ms": round(kway_s * 1e3, 4),
        "pairwise_ms": round(pairwise_s * 1e3, 4),
        "decode_then_fold_ms": round(dense_s * 1e3, 4),
        "speedup_vs_pairwise": round(pairwise_s / kway_s, 2),
        "speedup_vs_decode": round(dense_s / kway_s, 2),
    }


def bench_query_eval(nbits: int) -> dict:
    """End-to-end evaluate() over WAH-coded storage, dense vs compressed.

    Both readers serve the same stored BS/wah index of a clustered (sorted)
    column.  The dense reader decodes every fetched bitmap to a
    :class:`BitVector` before operating — the old path; the compressed
    reader hands the stored payload straight to the WAH algebra.
    """
    rng = np.random.default_rng(3)
    cardinality = 100
    values = np.sort(rng.integers(0, cardinality, nbits))
    index = BitmapIndex(
        values, cardinality, encoding=EncodingScheme.RANGE, keep_values=False
    )
    disk = SimulatedDisk()
    write_index(disk, "bench", index, scheme="BS", codec="wah")
    dense_reader = open_scheme(disk, "bench")
    comp_reader = open_scheme(disk, "bench", compressed=True)
    predicates = [Predicate(op, v) for op in OPERATORS for v in (10, 50, 90)]
    for predicate in predicates:
        dense_result = evaluate(dense_reader, predicate, stats=ExecutionStats())
        comp_result = evaluate(comp_reader, predicate, stats=ExecutionStats())
        assert np.array_equal(dense_result.indices(), comp_result.indices())

    def run_all(source):
        for predicate in predicates:
            evaluate(source, predicate, stats=ExecutionStats())

    dense_s = best_of(lambda: run_all(dense_reader))
    comp_s = best_of(lambda: run_all(comp_reader))
    return {
        "nbits": nbits,
        "cardinality": cardinality,
        "scheme": "BS",
        "codec": "wah",
        "num_queries": len(predicates),
        "dense_ms_per_query": round(dense_s * 1e3 / len(predicates), 4),
        "compressed_ms_per_query": round(comp_s * 1e3 / len(predicates), 4),
        "speedup": round(dense_s / comp_s, 2),
        "verified_bit_identical": True,
    }


def bench_cache_capacity(nbits: int) -> dict:
    """Bitmaps held under one byte budget, dense vs compressed entries."""
    rng = np.random.default_rng(11)
    cardinality = 64
    values = np.sort(rng.integers(0, cardinality, nbits))
    index = BitmapIndex(
        values, cardinality, encoding=EncodingScheme.EQUALITY, keep_values=False
    )
    budget = 8 * (nbits // 8)  # room for exactly 8 dense bitmaps
    dense_cache = SharedBitmapCache(capacity=None, byte_budget=budget)
    wah_cache = SharedBitmapCache(capacity=None, byte_budget=budget)
    stats = ExecutionStats()
    for slot in index.stored_slots(1):
        dense_cache.put(slot, index.fetch(1, slot, stats))
        wah_cache.put(slot, index.fetch(1, slot, stats, compressed=True))
    return {
        "nbits": nbits,
        "stored_bitmaps": index.num_bitmaps,
        "byte_budget": budget,
        "dense_entries": len(dense_cache),
        "compressed_entries": len(wah_cache),
        "capacity_ratio": round(len(wah_cache) / max(1, len(dense_cache)), 2),
        "compressed_bytes_cached": wah_cache.bytes_cached,
    }


def run(row_counts: tuple[int, ...]) -> dict:
    largest = row_counts[-1]
    bitmap_ops = bench_bitmap_ops(row_counts)
    headline = max(
        row["speedup"]
        for row in bitmap_ops
        if row["nbits"] == largest and row["cluster_factor"] is not None
    )
    return {
        "benchmark": "compressed_path",
        "config": {
            "row_counts": list(row_counts),
            "cluster_factors": [
                f if f is not None else "uniform" for f in CLUSTER_FACTORS
            ],
            "repeats": REPEATS,
            "quick": QUICK,
        },
        "bitmap_ops": bitmap_ops,
        "kway_or": bench_kway_or(largest),
        "query_eval": bench_query_eval(largest),
        "cache_capacity": bench_cache_capacity(largest),
        "headline_clustered_speedup": headline,
    }


def save(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report(payload: dict) -> str:
    lines = [
        "compressed execution vs decode-then-operate:",
        f"{'rows':>10} {'cluster':>8} {'ratio':>7} {'comp ms':>9} "
        f"{'decode ms':>10} {'speedup':>8}",
    ]
    for row in payload["bitmap_ops"]:
        cluster = row["cluster_factor"] or "uniform"
        lines.append(
            f"{row['nbits']:>10} {cluster:>8} {row['compression_ratio']:>7} "
            f"{row['compressed_ms']:>9} {row['decode_then_operate_ms']:>10} "
            f"{row['speedup']:>8}"
        )
    kway = payload["kway_or"]
    lines.append(
        f"k-way OR (k={kway['k']}): {kway['speedup_vs_pairwise']}x vs pairwise, "
        f"{kway['speedup_vs_decode']}x vs decode-then-fold"
    )
    query = payload["query_eval"]
    lines.append(
        f"query eval at {query['nbits']} rows: "
        f"{query['compressed_ms_per_query']} ms/query compressed vs "
        f"{query['dense_ms_per_query']} dense ({query['speedup']}x)"
    )
    cache = payload["cache_capacity"]
    lines.append(
        f"cache byte budget {cache['byte_budget']}: {cache['compressed_entries']} "
        f"compressed entries vs {cache['dense_entries']} dense "
        f"({cache['capacity_ratio']}x)"
    )
    return "\n".join(lines)


def test_compressed_path_benchmark():
    """Compressed ops beat decode-then-operate on clustered bitmaps, and
    the byte-budget cache holds >= 4x more compressed entries.

    The 2x acceptance bar applies to the full 1M-row run; quick mode uses
    a looser floor because fixed per-op overheads loom larger at 100k.
    """
    payload = run((20_000, 100_000) if QUICK else (100_000, 1_000_000))
    save(payload)
    print()
    print(report(payload))
    floor = 1.2 if QUICK else 2.0
    assert payload["headline_clustered_speedup"] >= floor
    assert payload["query_eval"]["speedup"] >= floor
    assert payload["cache_capacity"]["capacity_ratio"] >= 4.0
    assert payload["query_eval"]["verified_bit_identical"]


def main() -> None:
    payload = run((100_000, 1_000_000))
    save(payload)
    print(report(payload))
    print(
        f"wrote {os.path.relpath(RESULT_FILE)}; clustered 1M speedup "
        f"{payload['headline_clustered_speedup']}x"
    )


if __name__ == "__main__":
    main()
