"""Microbenchmarks of the library's engine-level operations.

Unlike the ``bench_<table|fig>`` files, which regenerate the paper's
artifacts, these measure the substrate itself: bitvector logic, popcount,
index construction, single-query latency, codecs, and bit-sliced
aggregation.  They use pytest-benchmark's normal multi-round mode.
"""

import numpy as np
import pytest

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compression import get_codec
from repro.core.aggregation import BitSlicedAggregator
from repro.core.decomposition import Base
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.engine.engine import QueryEngine
from repro.query.options import QueryOptions
from repro.relation.relation import Relation
from repro.workloads.generators import clustered_values, uniform_values

NBITS = 1_000_000


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    a = BitVector.from_bools(rng.random(NBITS) < 0.5)
    b = BitVector.from_bools(rng.random(NBITS) < 0.5)
    return a, b


@pytest.fixture(scope="module")
def column():
    return uniform_values(200_000, 100, seed=3)


@pytest.fixture(scope="module")
def knee_index(column):
    return BitmapIndex(column, 100, Base((10, 10)))


def test_bitvector_and(benchmark, vectors):
    a, b = vectors
    result = benchmark(lambda: a & b)
    assert result.nbits == NBITS


def test_bitvector_popcount(benchmark, vectors):
    a, _ = vectors
    count = benchmark(a.count)
    assert 0 < count < NBITS


def test_bitvector_not(benchmark, vectors):
    a, _ = vectors
    result = benchmark(lambda: ~a)
    assert result.count() == NBITS - a.count()


def test_index_build_knee(benchmark, column):
    index = benchmark(lambda: BitmapIndex(column, 100, Base((10, 10))))
    assert index.num_bitmaps == 18


def test_index_build_bit_sliced(benchmark, column):
    index = benchmark(lambda: BitmapIndex(column, 100))
    assert index.num_bitmaps == 99


def test_query_latency_range_eval_opt(benchmark, knee_index):
    predicate = Predicate("<=", 55)
    result = benchmark(lambda: evaluate(knee_index, predicate))
    assert result.count() > 0


def test_query_latency_equality_predicate(benchmark, knee_index):
    predicate = Predicate("=", 55)
    result = benchmark(lambda: evaluate(knee_index, predicate))
    assert result.count() > 0


@pytest.mark.parametrize("codec_name", ["zlib", "wah"])
def test_codec_encode_clustered(benchmark, codec_name):
    values = clustered_values(200_000, 100, run_length=64, seed=1)
    bitmap = BitVector.from_bools(values <= 50)
    codec = get_codec(codec_name)
    payload = bitmap.to_bytes()
    encoded = benchmark(lambda: codec.encode(payload))
    assert codec.decode(encoded) == payload


@pytest.mark.parametrize("codec_name", ["zlib", "wah"])
def test_codec_decode_clustered(benchmark, codec_name):
    values = clustered_values(200_000, 100, run_length=64, seed=1)
    bitmap = BitVector.from_bools(values <= 50)
    codec = get_codec(codec_name)
    encoded = codec.encode(bitmap.to_bytes())
    decoded = benchmark(lambda: codec.decode(encoded))
    assert decoded == bitmap.to_bytes()


def test_bit_sliced_sum(benchmark, column):
    aggregator = BitSlicedAggregator.from_values(column)
    foundset = BitVector.from_bools(column <= 50)
    total = benchmark(lambda: aggregator.sum(foundset))
    assert total == int(column[column <= 50].sum())


def test_maintenance_update(benchmark, column):
    index = BitmapIndex(column, 100, Base((10, 10)))
    state = {"rid": 0, "value": 0}

    def one_update():
        index.update(state["rid"], state["value"])
        state["rid"] = (state["rid"] + 7919) % index.nbits
        state["value"] = (state["value"] + 13) % 100

    benchmark(one_update)


def test_maintenance_append_batch(benchmark):
    values = uniform_values(50_000, 100, seed=9)
    extra = uniform_values(1_000, 100, seed=10)

    def append_batch():
        index = BitmapIndex(values, 100, Base((10, 10)), keep_values=False)
        index.append(extra)
        return index

    index = benchmark.pedantic(append_batch, rounds=5, iterations=1)
    assert index.nbits == 51_000


@pytest.fixture(scope="module")
def serving_engine():
    rng = np.random.default_rng(11)
    relation = Relation.from_dict(
        "bench",
        {
            "a": rng.integers(0, 100, 200_000),
            "b": rng.integers(0, 16, 200_000),
        },
    )
    engine = QueryEngine(cache_capacity=0)
    engine.register(relation, base=Base((10, 10)))
    engine.warm()
    return engine


def test_engine_query_untraced(benchmark, serving_engine):
    # The untraced hot path: the tracing layer must keep this within
    # noise of the pre-observability engine (acceptance: <5% regression).
    result = benchmark(lambda: serving_engine.query("a <= 55"))
    assert result.count > 0
    assert result.trace is None


def test_engine_query_traced(benchmark, serving_engine):
    options = QueryOptions(trace=True)
    result = benchmark(
        lambda: serving_engine.query("a <= 55", options=options)
    )
    assert result.trace is not None
    assert result.trace.count("fetch") + result.trace.count("cache") > 0


def test_engine_query_expression(benchmark, serving_engine):
    result = benchmark(
        lambda: serving_engine.query("a <= 55 and (b = 3 or b = 7)")
    )
    assert result.count > 0


def test_compressed_domain_and_sorted(benchmark):
    from repro.bitmaps.compressed import WahBitVector

    values = np.sort(uniform_values(500_000, 100, seed=2))
    a = WahBitVector.from_bitvector(BitVector.from_bools(values <= 40))
    b = WahBitVector.from_bitvector(BitVector.from_bools(values <= 70))
    result = benchmark(lambda: a & b)
    assert result.count() == int((values <= 40).sum())
