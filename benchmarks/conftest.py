"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures via
``pytest-benchmark``.  Formatted result tables are printed and also saved
under ``benchmarks/results/`` so they survive output capturing.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import importlib
import os

import pytest

from repro.experiments.harness import ExperimentResult, format_table, save_results

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Set REPRO_BENCH_FULL=1 to run every benchmark at paper scale.
QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""


@pytest.fixture
def run_experiment_benchmark(benchmark):
    """Benchmark one experiment module and persist its tables.

    Returns the list of :class:`ExperimentResult` the experiment produced.
    Experiments run once (they are end-to-end reproductions, not
    microbenchmarks); pytest-benchmark records the wall time.
    """

    def runner(exp_id: str, quick: bool = True, **params):
        module = importlib.import_module(f"repro.experiments.{exp_id}")

        def target():
            outcome = module.run(quick=quick, **params)
            if isinstance(outcome, ExperimentResult):
                return [outcome]
            return list(outcome)

        results = benchmark.pedantic(target, rounds=1, iterations=1)
        save_results(results, RESULTS_DIR)
        for result in results:
            print()
            print(format_table(result))
        return results

    return runner
