"""Bench: regenerate Figure 10 (families vs the full design cloud)."""

from conftest import QUICK


def test_fig10(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig10", quick=QUICK)
    families = {row[0] for row in result.rows}
    assert families == {"space-optimal", "time-optimal", "pareto(all)"}
    # The space-optimal family approximates the overall front.
    note = next(n for n in result.notes if "space-optimal family" in n)
    covered, total = note.split()[0].split("/")
    assert int(covered) >= int(total) / 2
