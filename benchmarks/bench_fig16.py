"""Bench: regenerate Figure 16 (time/space of BS, cBS, cCS)."""

from conftest import QUICK


def test_fig16(run_experiment_benchmark):
    # Figure 16's effect (decompression dominating cCS) needs bitmaps big
    # enough that transfer + inflate outweigh per-file seeks, so this bench
    # always runs at the 60k-row scale; it is still fast (~1.5 s).
    (result,) = run_experiment_benchmark("fig16", quick=QUICK, num_rows=60_000)
    times = {(row[0], row[1]): row[3] for row in result.rows}
    sizes = {(row[0], row[1]): row[2] for row in result.rows}
    ns = sorted({row[0] for row in result.rows})

    # Figure 16(b): cCS is the smallest configuration at every n.
    for n in ns:
        assert sizes[(n, "cCS")] <= sizes[(n, "BS")]
        assert sizes[(n, "cCS")] <= sizes[(n, "cBS")] + 1

    # Figure 16(a): under the era cost model, cCS is slower than BS for
    # most component counts (they coincide once every base is 2), and BS
    # and cBS stay comparable.
    slower = sum(1 for n in ns if times[(n, "cCS")] >= times[(n, "BS")] - 1e-9)
    assert slower >= len(ns) - 2
    for n in ns:
        assert abs(times[(n, "cBS")] - times[(n, "BS")]) <= 0.5 * times[(n, "BS")]
