"""Bench: regenerate the Section 1 bitmap vs RID-list crossover."""

from conftest import QUICK


def test_crossover(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("crossover", quick=QUICK)
    # The empirical crossover lands within one percentage point of 1/32.
    note = result.notes[0]
    observed = float(note.rsplit(" ", 1)[1])
    assert abs(observed - 1 / 32) <= 0.01
    # Low-selectivity rows favour RID lists; high-selectivity rows favour
    # bitmaps.
    assert result.rows[0][4] == "rid-list"
    assert result.rows[-1][4] == "bitmap"
