"""Batch throughput of the :class:`QueryEngine` vs. thread-pool width.

Runs the same cold-cache mixed batch against one engine at increasing
worker counts over a large relation (1M rows by default in script mode)
and writes ``benchmarks/results/BENCH_engine.json``.

Two sweeps are reported:

- ``io_modeled`` — the engine is configured with the repo's
  :class:`~repro.storage.disk.DiskModel`, so every cache miss pays a real
  (scaled) sleep for the modeled seek + transfer.  Worker threads overlap
  those waits exactly as a disk-backed server overlaps seeks; this is the
  headline scaling number and is near-independent of host core count.
- ``cpu_only`` — no I/O model.  Scaling here comes purely from numpy
  releasing the GIL inside the AND/OR/NOT hot path, so it tracks the
  host's core count (≈1x on a single-core container).
- ``process_backend`` — the sharded process backend
  (``QueryOptions(backend="processes")``): the relation is partitioned
  into row-range shards published once through shared memory, and each
  worker process evaluates every query against its shard.  This is the
  GIL escape hatch, so CPU-bound scaling tracks the host's core count
  without depending on numpy's lock release windows.

Every engine result is verified bit-identical to the sequential
``execute()`` ground truth before any timing is trusted.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_concurrency.py

or through pytest (quick sizes unless ``REPRO_BENCH_FULL=1``)::

    pytest benchmarks/bench_engine_concurrency.py -q
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.decomposition import Base
from repro.engine import QueryEngine, QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.storage.disk import DiskModel
from repro.workloads.generators import uniform_values, zipf_values

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_engine.json")

QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""

CARDINALITY = 1000
BASE = Base((32, 32))
NUM_QUERIES = 200
WORKER_COUNTS = (1, 2, 4, 8)
#: Timed repetitions per worker count (best-of; one untimed warmup first).
REPEATS = 2
#: Fraction of the late-90s DiskModel latency charged per cache miss.
IO_TIME_SCALE = 0.5
OPS = ("<", "<=", "=", "!=", ">=", ">")


def build_relation(num_rows: int) -> Relation:
    return Relation.from_dict(
        "bench",
        {
            "a": uniform_values(num_rows, CARDINALITY, seed=1),
            "b": uniform_values(num_rows, CARDINALITY, seed=2),
            "c": zipf_values(num_rows, CARDINALITY, seed=3),
        },
    )


def build_batch(relation: Relation, count: int, seed: int) -> list[AttributePredicate]:
    rng = np.random.default_rng(seed)
    attributes = sorted(relation.columns)
    batch = []
    for _ in range(count):
        attribute = attributes[int(rng.integers(0, len(attributes)))]
        op = OPS[int(rng.integers(0, len(OPS)))]
        value = int(rng.integers(0, CARDINALITY))
        batch.append(AttributePredicate(attribute, op, value))
    return batch


def sweep(
    relation: Relation,
    batch: list[AttributePredicate],
    worker_counts: tuple[int, ...],
    io_model: DiskModel | None,
) -> dict:
    """Time the same cold-cache batch at each worker count on one engine."""
    engine = QueryEngine(
        cache_capacity=512,
        storage=io_model,
        io_time_scale=IO_TIME_SCALE,
    )
    engine.register(relation, base=BASE)
    engine.warm()  # index builds are a one-time cost, not batch work

    baseline_rids = None
    runs = {}
    for workers in worker_counts:
        # Untimed warmup at THIS worker count first: the first batch a
        # thread-pool shape runs pays one-time allocator-arena growth and
        # first-touch page faults (several seconds of real CPU at 1M rows)
        # that say nothing about steady-state serving throughput.
        engine.query_batch(batch, workers=workers)
        elapsed = float("inf")
        for _ in range(REPEATS):
            engine.reset_cache()
            engine.reset_metrics()
            start = time.perf_counter()
            results = engine.query_batch(batch, workers=workers)
            elapsed = min(elapsed, time.perf_counter() - start)
        snap = engine.snapshot()
        if baseline_rids is None:
            baseline_rids = [r.rids for r in results]
            for pred, result in zip(batch, results):
                truth = relation.scan(pred.attribute, pred.op, pred.value)
                assert np.array_equal(result.rids, truth), (
                    f"engine diverged from scan ground truth on '{pred}'"
                )
        else:
            for pred, result, expected in zip(batch, results, baseline_rids):
                assert np.array_equal(result.rids, expected), (
                    f"{workers}-worker result not bit-identical on '{pred}'"
                )
        runs[str(workers)] = {
            "elapsed_seconds": round(elapsed, 4),
            "queries_per_second": round(len(batch) / elapsed, 2),
            "latency_ms_p50": round(snap["latency_ms"]["p50"], 3),
            "latency_ms_p95": round(snap["latency_ms"]["p95"], 3),
            "cache_hit_rate": round(snap["cache"]["hit_rate"], 4),
            "scans": snap["stats"]["scans"],
            "bytes_read": snap["stats"]["bytes_read"],
        }
    engine.close()
    base_qps = runs[str(worker_counts[0])]["queries_per_second"]
    speedups = {
        w: round(run["queries_per_second"] / base_qps, 2)
        for w, run in runs.items()
    }
    return {"workers": runs, "speedup_vs_1_worker": speedups}


def process_sweep(
    relation: Relation,
    batch: list[AttributePredicate],
    worker_counts: tuple[int, ...],
) -> dict:
    """Time the batch on the sharded process backend at each worker count.

    The shard count is pinned to the widest worker count so every run
    partitions the work identically — only the degree of parallelism
    varies between rows of the sweep.
    """
    shards = max(worker_counts)
    engine = QueryEngine(cache_capacity=512)
    engine.register(relation, base=BASE)

    # Ground truth: the inline backend over the same engine.
    inline = engine.query_batch(batch, options=QueryOptions(backend="inline"))
    expected = [r.rids for r in inline]
    for pred, result in zip(batch, inline):
        truth = relation.scan(pred.attribute, pred.op, pred.value)
        assert np.array_equal(result.rids, truth), (
            f"inline ground truth diverged from scan on '{pred}'"
        )

    runs = {}
    for workers in worker_counts:
        options = QueryOptions(backend="processes", shards=shards)
        # Untimed warmup: the first batch at this width pays the one-time
        # sharded-index build, shared-memory publication, and worker
        # spawn — serving-steady-state numbers must exclude all three.
        results = engine.query_batch(batch, workers=workers, options=options)
        elapsed = float("inf")
        for _ in range(REPEATS):
            engine.reset_metrics()
            start = time.perf_counter()
            results = engine.query_batch(batch, workers=workers, options=options)
            elapsed = min(elapsed, time.perf_counter() - start)
        for pred, result, rids in zip(batch, results, expected):
            assert np.array_equal(result.rids, rids), (
                f"process backend not bit-identical to inline on '{pred}'"
            )
        snap = engine.snapshot()
        runs[str(workers)] = {
            "elapsed_seconds": round(elapsed, 4),
            "queries_per_second": round(len(batch) / elapsed, 2),
            "latency_ms_p50": round(snap["latency_ms"]["p50"], 3),
            "latency_ms_p95": round(snap["latency_ms"]["p95"], 3),
            "scans": snap["stats"]["scans"],
        }
    engine.close()
    base_qps = runs[str(worker_counts[0])]["queries_per_second"]
    speedups = {
        w: round(run["queries_per_second"] / base_qps, 2)
        for w, run in runs.items()
    }
    return {"shards": shards, "workers": runs, "speedup_vs_1_worker": speedups}


def run(num_rows: int, worker_counts: tuple[int, ...] = WORKER_COUNTS) -> dict:
    relation = build_relation(num_rows)
    batch = build_batch(relation, NUM_QUERIES, seed=7)
    io_modeled = sweep(relation, batch, worker_counts, DiskModel())
    cpu_only = sweep(relation, batch, (worker_counts[0], 4), None)
    process_counts = tuple(w for w in worker_counts if w <= 4) or (1, 4)
    process_backend = process_sweep(relation, batch, process_counts)
    payload = {
        "benchmark": "engine_concurrency",
        "config": {
            "num_rows": num_rows,
            "num_queries": len(batch),
            "cardinality": CARDINALITY,
            "base": str(BASE),
            "attributes": sorted(relation.columns),
            "cache_capacity": 512,
            "io_time_scale": IO_TIME_SCALE,
            "cpu_count": os.cpu_count(),
        },
        "verified_bit_identical": True,
        "io_modeled": io_modeled,
        "cpu_only": cpu_only,
        "process_backend": process_backend,
    }
    return payload


def save(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report(payload: dict) -> str:
    lines = [
        f"engine batch throughput, {payload['config']['num_rows']} rows, "
        f"{payload['config']['num_queries']} queries (modeled-I/O engine):",
        f"{'workers':>8} {'qps':>10} {'speedup':>8} {'p95 ms':>9} {'hit rate':>9}",
    ]
    sweep_data = payload["io_modeled"]
    for workers, stats in sweep_data["workers"].items():
        lines.append(
            f"{workers:>8} {stats['queries_per_second']:>10} "
            f"{sweep_data['speedup_vs_1_worker'][workers]:>8} "
            f"{stats['latency_ms_p95']:>9} {stats['cache_hit_rate']:>9}"
        )
    cpu = payload["cpu_only"]["speedup_vs_1_worker"]
    lines.append(f"cpu-only speedup at 4 workers: {cpu.get('4')}")
    proc = payload["process_backend"]
    lines.append(
        f"process backend ({proc['shards']} shards), speedup vs 1 worker:"
    )
    for workers, stats in proc["workers"].items():
        lines.append(
            f"{workers:>8} {stats['queries_per_second']:>10} "
            f"{proc['speedup_vs_1_worker'][workers]:>8} "
            f"{stats['latency_ms_p95']:>9}"
        )
    return "\n".join(lines)


def test_engine_batch_throughput_scales_with_workers():
    """4 workers must beat 1 worker by >= 1.5x on the modeled-I/O engine."""
    payload = run(100_000 if QUICK else 1_000_000, worker_counts=(1, 4))
    save(payload)
    print()
    print(report(payload))
    assert payload["verified_bit_identical"]
    assert payload["io_modeled"]["speedup_vs_1_worker"]["4"] >= 1.5


def test_process_backend_scales_on_multicore_hosts():
    """4 process workers must beat 1 by >= 2.5x — when cores exist.

    Process parallelism cannot manufacture cores: on hosts with fewer
    than 4 CPUs the assertion relaxes to "no pathological slowdown" and
    the honest single-core numbers are still recorded in the payload.
    """
    relation = build_relation(50_000 if QUICK else 1_000_000)
    batch = build_batch(relation, 50 if QUICK else NUM_QUERIES, seed=7)
    result = process_sweep(relation, batch, (1, 4))
    speedup = result["speedup_vs_1_worker"]["4"]
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.5, f"expected >=2.5x on a 4+-core host, got {speedup}x"
    else:
        assert speedup >= 0.5, f"pathological slowdown: {speedup}x"


def main() -> None:
    payload = run(1_000_000)
    save(payload)
    print(report(payload))
    speedup = payload["io_modeled"]["speedup_vs_1_worker"]["4"]
    print(f"wrote {os.path.relpath(RESULT_FILE)}; 4-worker speedup {speedup}x")


if __name__ == "__main__":
    main()
