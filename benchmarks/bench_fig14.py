"""Bench: regenerate Figure 14 (candidate-set size vs space budget)."""

from conftest import QUICK


def test_fig14(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig14", quick=QUICK)
    sizes = [row[1] for row in result.rows]
    # Hump shape: a large middle, collapsing to 1 for generous budgets.
    assert sizes[-1] == 1
    assert max(sizes) > 50


def test_fig13(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig13", quick=QUICK)
    # Theorem 6.1's bounding argument: the optimum never escapes [n, n'].
    assert all(row[6] == "yes" for row in result.rows)
