"""Bench: regenerate Figure 9 (range vs equality encoding tradeoff)."""

from conftest import QUICK


def test_fig9(run_experiment_benchmark):
    results = run_experiment_benchmark("fig9", quick=QUICK)
    assert len(results) >= 2  # one table per cardinality
    for result in results:
        # Range encoding matches-or-beats most of the equality front.
        dominance_note = next(
            n for n in result.notes if "matched-or-beaten" in n
        )
        covered, total = dominance_note.split()[0].split("/")
        assert int(covered) >= 0.8 * int(total)
