"""Bench: regenerate Figure 17 (tradeoff under optimal buffering)."""

from conftest import QUICK


def test_fig17(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("fig17", quick=QUICK)
    # The space-time tradeoff improves monotonically with buffer size m.
    best_times = [row[2] for row in result.rows]
    assert all(
        best_times[i] >= best_times[i + 1] - 1e-12
        for i in range(len(best_times) - 1)
    )
    # m = 0 row reproduces the unbuffered time-optimal single component.
    assert result.rows[0][0] == 0
