"""Compressed-domain threshold and COUNT pushdown vs. materialize-then-count.

Two questions, answered per codec at 1M rows:

1. **Threshold kernels.**  How much does the native k-of-N kernel
   (:func:`repro.core.evaluation.threshold_all` dispatching to each
   codec's ``threshold_many``) win over the generic fallback — decode
   every operand to booleans, count, re-encode?  WAH counts run-aligned
   fills without touching individual bits and Roaring counts per
   container, so both should beat bit-blasting on clustered operands;
   dense *is* word counting, so its ratio hovers near 1x (reported
   honestly as the control).

2. **Aggregate pushdown.**  How much does ``engine.count(expr)`` —
   popcount the result bitmap, materialize nothing — win over the
   RID path ``len(engine.query(expr).rids)``, and ``group_count`` over
   materialize-then-bincount?  Both run against a warm cache so the
   difference isolated is exactly the materialization the pushdown
   skips.  The acceptance floor (>= 2x at full scale on every codec) is
   the PR's headline number.

Results go to ``benchmarks/results/BENCH_threshold.json``.

Run standalone (full 1M-row scale)::

    PYTHONPATH=src python benchmarks/bench_threshold.py

smoke mode (quick sizes, no result file, used by CI)::

    PYTHONPATH=src python benchmarks/bench_threshold.py --smoke

or through pytest (quick sizes unless ``REPRO_BENCH_FULL=1``)::

    pytest benchmarks/bench_threshold.py -q
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.core.evaluation import Predicate, evaluate, threshold_all
from repro.engine import QueryEngine
from repro.query.options import DEFAULT_OPTIONS
from repro.relation.relation import Relation
from repro.stats import ExecutionStats

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_threshold.json")

QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""

REPEATS = 5
CODECS = ("dense", "wah", "roaring")

#: ~78% of rows match at k=2 with three ~0.7-selective operands: big
#: result bitmaps make the skipped materialization visible.
EXPRESSION = "atleast(2, a <= 6, b <= 6, c <= 27)"
GROUP_BY = "g"
K = 2


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_relation(num_rows: int) -> Relation:
    rng = np.random.default_rng(1998)

    def clustered(cardinality: int, chunks: int) -> np.ndarray:
        # Sorted chunks -> long fill runs, the regime the paper's
        # workloads (time- or load-order correlated attributes) put
        # word-aligned codecs in.  Different chunk counts per column
        # keep the run boundaries misaligned across operands.
        column = rng.integers(0, cardinality, num_rows)
        chunk = max(1, num_rows // chunks)
        for start in range(0, num_rows, chunk):
            column[start : start + chunk] = np.sort(column[start : start + chunk])
        return column

    return Relation.from_dict(
        "facts",
        {
            "a": clustered(10, 16),
            "b": clustered(10, 23),
            "c": clustered(40, 11),
            "g": clustered(8, 7),
        },
    )


def bench_threshold_kernel(engine: QueryEngine, relation: Relation) -> dict:
    """Native k-of-N kernel vs. the decode-count-reencode fallback."""
    sources = {
        attr: engine._source_for("facts", attr, DEFAULT_OPTIONS)
        for attr in ("a", "b", "c")
    }
    operands = [
        evaluate(sources["a"], Predicate("<=", 6)),
        evaluate(sources["b"], Predicate("<=", 6)),
        evaluate(sources["c"], Predicate("<=", 27)),
    ]
    cls = type(operands[0])

    def fallback():
        counts = np.zeros(relation.num_rows, dtype=np.int32)
        for vector in operands:
            counts += vector.to_bools()
        dense = BitVector.from_bools(counts >= K)
        return dense if cls is BitVector else cls.from_bitvector(dense)

    native = best_of(lambda: threshold_all(list(operands), K, ExecutionStats()))
    fell = best_of(fallback)
    # Bit-identical before anything is reported.
    assert np.array_equal(
        threshold_all(list(operands), K, ExecutionStats()).indices(),
        fallback().indices(),
    )
    return {
        "threshold_native_ms": round(native * 1e3, 4),
        "threshold_fallback_ms": round(fell * 1e3, 4),
        "threshold_native_vs_fallback": round(fell / native, 2),
    }


def bench_codec(codec: str, relation: Relation) -> dict:
    with QueryEngine(codec=codec, cache_capacity=1024) as engine:
        engine.register(relation)
        # Warm the cache: both paths then pay identical fetch costs and
        # the measured difference is the materialization alone.
        engine.query(EXPRESSION)
        engine.count(EXPRESSION)
        engine.group_count(EXPRESSION, GROUP_BY)

        cell = bench_threshold_kernel(engine, relation)

        query_s = best_of(lambda: engine.query(EXPRESSION))
        count_s = best_of(lambda: engine.count(EXPRESSION))

        codes = relation.column(GROUP_BY).codes
        cardinality = relation.column(GROUP_BY).cardinality

        def group_via_rids():
            rids = engine.query(EXPRESSION).rids
            return np.bincount(codes[rids], minlength=cardinality)

        group_rids_s = best_of(group_via_rids)
        group_push_s = best_of(lambda: engine.group_count(EXPRESSION, GROUP_BY))

        result = engine.count(EXPRESSION)
        rids = engine.query(EXPRESSION).rids
        groups = engine.group_count(EXPRESSION, GROUP_BY).groups
        assert result.count == len(rids)
        assert np.array_equal(
            np.array([groups[v] for v in sorted(groups)]), group_via_rids()
        )

    cell.update(
        {
            "codec": codec,
            "matching_rows": int(result.count),
            "query_materialize_ms": round(query_s * 1e3, 4),
            "count_pushdown_ms": round(count_s * 1e3, 4),
            "count_pushdown_speedup": round(query_s / count_s, 2),
            "group_materialize_ms": round(group_rids_s * 1e3, 4),
            "group_pushdown_ms": round(group_push_s * 1e3, 4),
            "group_pushdown_speedup": round(group_rids_s / group_push_s, 2),
        }
    )
    return cell


def run(num_rows: int) -> dict:
    relation = make_relation(num_rows)
    cells = [bench_codec(codec, relation) for codec in CODECS]
    return {
        "benchmark": "threshold",
        "config": {
            "num_rows": num_rows,
            "expression": EXPRESSION,
            "group_by": GROUP_BY,
            "k": K,
            "repeats": REPEATS,
            "quick": num_rows < 1_000_000,
        },
        "codecs": cells,
        "headline_count_pushdown_speedup": min(
            c["count_pushdown_speedup"] for c in cells
        ),
    }


def save(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report(payload: dict) -> str:
    config = payload["config"]
    lines = [
        f"threshold + aggregate pushdown at {config['num_rows']} rows "
        f"('{config['expression']}', best of {config['repeats']}):",
        f"{'codec':>8} {'thresh native':>14} {'fallback':>9} {'x':>6} "
        f"{'query ms':>9} {'count ms':>9} {'x':>6} {'group ms':>9} "
        f"{'push ms':>8} {'x':>6}",
    ]
    for c in payload["codecs"]:
        lines.append(
            f"{c['codec']:>8} {c['threshold_native_ms']:>14} "
            f"{c['threshold_fallback_ms']:>9} "
            f"{c['threshold_native_vs_fallback']:>6} "
            f"{c['query_materialize_ms']:>9} {c['count_pushdown_ms']:>9} "
            f"{c['count_pushdown_speedup']:>6} {c['group_materialize_ms']:>9} "
            f"{c['group_pushdown_ms']:>8} {c['group_pushdown_speedup']:>6}"
        )
    lines.append(
        f"headline: COUNT pushdown is >= "
        f"{payload['headline_count_pushdown_speedup']}x materialize-then-count "
        f"on every codec"
    )
    return "\n".join(lines)


def test_threshold_pushdown():
    """COUNT pushdown beats materialize-then-count on every codec.

    The 2x acceptance bar applies to the full 1M-row run; quick mode
    uses a looser floor because the materialized RID array is small
    enough that fixed per-query overheads loom larger.
    """
    payload = run(100_000 if QUICK else 1_000_000)
    save(payload)
    print()
    print(report(payload))
    floor = 1.1 if QUICK else 2.0
    assert payload["headline_count_pushdown_speedup"] >= floor
    for cell in payload["codecs"]:
        assert cell["group_pushdown_speedup"] >= (0.8 if QUICK else 1.0)
    if not QUICK:
        # The compressed kernels must not lose to bit-blasting at scale.
        for cell in payload["codecs"]:
            if cell["codec"] != "dense":
                assert cell["threshold_native_vs_fallback"] >= 1.0, cell


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        description="Threshold kernels and aggregate pushdown vs. RID paths."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick sizes and no result file (CI sanity run)",
    )
    args = parser.parse_args(argv)
    num_rows = 100_000 if args.smoke else 1_000_000
    payload = run(num_rows)
    if not args.smoke:
        save(payload)
    print(report(payload))
    if not args.smoke:
        print(
            f"wrote {os.path.relpath(RESULT_FILE)}; COUNT pushdown "
            f"{payload['headline_count_pushdown_speedup']}x on the slowest codec"
        )


if __name__ == "__main__":
    main()
