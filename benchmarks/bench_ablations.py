"""Bench: the extension ablations (encodings, codecs, buffer policies)."""

from conftest import QUICK


def test_ablation_encodings(run_experiment_benchmark):
    results = run_experiment_benchmark("ablation_encodings", quick=QUICK)
    for result in results:
        interval_rows = [row for row in result.rows if row[0] == "interval"]
        range_rows = [row for row in result.rows if row[0] == "range"]
        assert interval_rows and range_rows
        # The 1999 scheme's headline: the single-component interval index
        # stores about half of range encoding's bitmaps.
        i1 = next(r for r in interval_rows if "," not in r[1])
        r1 = next(r for r in range_rows if "," not in r[1])
        assert i1[2] <= (r1[2] + 1) // 2 + 1


def test_ablation_codecs(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("ablation_codecs", quick=QUICK)
    ratios = {(row[0], row[1]): row[3] for row in result.rows}
    # Deflate beats WAH on uniform data; both collapse on sorted data.
    assert ratios[("uniform", "zlib")] < ratios[("uniform", "wah")]
    assert ratios[("sorted", "zlib")] < 10
    assert ratios[("sorted", "wah")] < 10
    # Run-structured data compresses far better than random data.
    assert ratios[("clustered", "wah")] < ratios[("uniform", "wah")]


def test_ablation_updates(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("ablation_updates", quick=QUICK)
    rows = {(row[0], row[2]): row[4] for row in result.rows}
    # The Value-List index updates like a RID list (~2 touches)...
    assert rows[(1, "equality")] <= 2.5
    # ...while single-component range encoding pays ~b/3 touches.
    assert rows[(1, "range")] > 5 * rows[(1, "equality")]
    # Decomposition shrinks update cost.
    assert rows[(3, "range")] < rows[(1, "range")]


def test_ablation_query_skew(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("ablation_query_skew", quick=QUICK)
    # The knee chosen under the uniform model stays near-optimal under
    # every tested constant skew.
    for row in result.rows:
        assert row[4] <= 10.0


def test_ablation_compressed_ops(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("ablation_compressed_ops", quick=QUICK)
    by_name = {row[0]: row for row in result.rows}
    # Compressed-domain algebra pays off exactly where runs exist.
    assert by_name["sorted"][2] < by_name["sorted"][3]
    assert by_name["sorted"][1] < by_name["uniform"][1]
    assert all(row[5] == "yes" for row in result.rows)


def test_ablation_buffering(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("ablation_buffering", quick=QUICK)
    for row in result.rows:
        m, pinned, lru, model, _ = row
        # The pinned measurement tracks Eq. 5 closely.
        assert abs(pinned - model) <= 0.25
    # Pinned-optimal matches or beats LRU on most buffer sizes.
    wins = sum(1 for row in result.rows if row[4] == "yes")
    assert wins >= len(result.rows) - 1
