"""Bench: regenerate Table 3 (experimental data characteristics)."""

from conftest import QUICK


def test_table3(run_experiment_benchmark):
    (result,) = run_experiment_benchmark("table3", quick=QUICK)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["data set 1"][4] == 50  # Lineitem.quantity
    # Data set 2 approaches the full 2406 distinct order dates.
    assert by_name["data set 2"][4] >= 2000
