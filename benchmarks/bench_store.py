"""Persistence benchmark: the on-disk index store vs. in-memory rebuild.

Measures the costs the :class:`~repro.storage.store.IndexStore` exists
to avoid or amortize, and writes
``benchmarks/results/BENCH_store.json``:

- ``build`` — one-time cost of indexing and persisting a relation.
- ``cold_open`` — opening the store and serving the *first* query
  entirely from the mmapped file (dictionary parse + the touched
  payloads), against rebuilding the same index from raw values.  This is
  the headline number: restart-to-first-answer latency.
- ``lazy_vs_eager`` — payload bytes actually read by a single-predicate
  query vs. the total payload bytes in the file; the lazy fraction is
  what mmap materialization saves over slurping the file.
- ``append_compact`` — delta-append throughput and the cost of folding
  the sidecar back into the base file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store.py

or through pytest (quick sizes unless ``REPRO_BENCH_FULL=1``)::

    pytest benchmarks/bench_store.py -q
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

import numpy as np

import repro
from repro.core.decomposition import Base
from repro.engine import QueryEngine
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.storage import IndexStore
from repro.workloads.generators import uniform_values, zipf_values

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_store.json")

QUICK = os.environ.get("REPRO_BENCH_FULL", "") == ""

CARDINALITY = 500
BASE = Base((25, 20))
CODEC = "wah"
APPEND_BATCH = 1_000


def build_relation(num_rows: int) -> Relation:
    return Relation.from_dict(
        "bench",
        {
            "a": uniform_values(num_rows, CARDINALITY, seed=1),
            "b": zipf_values(num_rows, CARDINALITY, seed=2),
        },
    )


def time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def bench_cold_open(root: str, relation: Relation, pred: AttributePredicate):
    """Restart-to-first-answer: open the store cold vs. rebuild in memory."""

    def from_store():
        engine = repro.open_store(root)
        result = engine.query(pred)
        engine.close()
        return result.rids

    def from_scratch():
        engine = QueryEngine()
        engine.register(relation, base=BASE)
        result = engine.query(pred)
        engine.close()
        return result.rids

    store_s, store_rids = time_once(from_store)
    rebuild_s, rebuild_rids = time_once(from_scratch)
    assert np.array_equal(store_rids, rebuild_rids), "store diverged from rebuild"
    return {
        "store_first_answer_seconds": round(store_s, 4),
        "rebuild_first_answer_seconds": round(rebuild_s, 4),
        "speedup": round(rebuild_s / store_s, 2) if store_s else None,
    }


def bench_lazy(root: str, pred: AttributePredicate, total_payload_bytes: int):
    store = IndexStore(root)
    engine = QueryEngine(storage=store)
    engine.register(store.relation_view("bench"))
    engine.query(pred)
    snap = store.io_snapshot()
    engine.close()
    read = snap["payload_bytes_read"]
    return {
        "total_payload_bytes": total_payload_bytes,
        "payload_bytes_read": read,
        "dict_bytes": snap["dict_bytes"],
        "bitmaps_materialized": snap["bitmaps_materialized"],
        "pages_touched": snap["pages_touched"],
        "lazy_read_fraction": round(read / total_payload_bytes, 4),
    }


def bench_append_compact(root: str, relation: Relation, batches: int):
    store = IndexStore(root)
    rng = np.random.default_rng(3)
    rows = {
        "a": rng.integers(0, CARDINALITY, APPEND_BATCH),
        "b": rng.integers(0, CARDINALITY, APPEND_BATCH),
    }
    append_s = 0.0
    for _ in range(batches):
        elapsed, _ = time_once(lambda: store.append("bench", rows))
        append_s += elapsed
    appended = batches * APPEND_BATCH
    compact_s, summary = time_once(lambda: store.compact("bench"))
    assert summary["compacted"] and summary["rows"] == relation.num_rows + appended
    assert store.verify("bench") == []
    store.close()
    return {
        "batches": batches,
        "rows_per_batch": APPEND_BATCH,
        "append_seconds_total": round(append_s, 4),
        "append_rows_per_second": round(appended / append_s, 1) if append_s else None,
        "compact_seconds": round(compact_s, 4),
        "compacted_rows": summary["rows"],
    }


def run(num_rows: int, append_batches: int) -> dict:
    relation = build_relation(num_rows)
    pred = AttributePredicate("a", "<=", CARDINALITY // 8)
    root = tempfile.mkdtemp(prefix="bench_store_")
    try:
        store = IndexStore(root)
        build_s, summary = time_once(
            lambda: store.build(relation, codec=CODEC, base=BASE)
        )
        store.close()
        total_payload = sum(
            attr["payload_bytes"] for attr in summary["attributes"].values()
        )
        payload = {
            "benchmark": "store",
            "config": {
                "num_rows": num_rows,
                "cardinality": CARDINALITY,
                "base": str(BASE),
                "codec": CODEC,
                "attributes": sorted(relation.columns),
            },
            "build": {
                "seconds": round(build_s, 4),
                "file_bytes": summary["file_bytes"],
                "bytes_per_row": round(summary["file_bytes"] / num_rows, 2),
            },
            "cold_open": bench_cold_open(root, relation, pred),
            "lazy_vs_eager": bench_lazy(root, pred, total_payload),
            "append_compact": bench_append_compact(root, relation, append_batches),
        }
        return payload
    finally:
        shutil.rmtree(root, ignore_errors=True)


def save(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report(payload: dict) -> str:
    cold = payload["cold_open"]
    lazy = payload["lazy_vs_eager"]
    append = payload["append_compact"]
    return "\n".join(
        [
            f"store persistence, {payload['config']['num_rows']} rows "
            f"({payload['config']['codec']} payloads):",
            f"  build+persist: {payload['build']['seconds']}s "
            f"({payload['build']['file_bytes']} bytes on disk)",
            f"  first answer from cold store: "
            f"{cold['store_first_answer_seconds']}s vs rebuild "
            f"{cold['rebuild_first_answer_seconds']}s "
            f"({cold['speedup']}x)",
            f"  lazy read: {lazy['payload_bytes_read']} of "
            f"{lazy['total_payload_bytes']} payload bytes "
            f"({lazy['lazy_read_fraction'] * 100:.1f}%), "
            f"{lazy['bitmaps_materialized']} bitmaps, "
            f"{lazy['pages_touched']} pages",
            f"  append: {append['append_rows_per_second']} rows/s over "
            f"{append['batches']} batches; compact "
            f"{append['compact_seconds']}s for {append['compacted_rows']} rows",
        ]
    )


def test_store_persistence_benchmark():
    """A cold store must answer without reading most of the payload bytes."""
    payload = run(20_000 if QUICK else 500_000, append_batches=2)
    save(payload)
    print()
    print(report(payload))
    lazy = payload["lazy_vs_eager"]
    assert 0 < lazy["payload_bytes_read"] < lazy["total_payload_bytes"]
    # A single one-sided predicate on one of two attributes cannot need
    # even half of the file's payload bytes.
    assert lazy["lazy_read_fraction"] < 0.5


def main() -> None:
    payload = run(500_000, append_batches=5)
    save(payload)
    print(report(payload))
    print(f"wrote {os.path.relpath(RESULT_FILE)}")


if __name__ == "__main__":
    main()
