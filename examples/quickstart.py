"""Quickstart: the paper's running example, end to end.

Builds the indexes of Figures 1, 3, and 4 over the 10-record example
column, evaluates the Figure 7 predicate ``A <= 5`` with both evaluation
algorithms, and prints the space/time cost model values for a few designs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Base,
    BitmapIndex,
    EncodingScheme,
    ExecutionStats,
    Predicate,
    evaluate,
)
from repro.core import costmodel

#: The attribute column of the paper's Figure 1 (values 0..8, C = 9).
VALUES = np.array([3, 2, 1, 2, 8, 2, 2, 0, 7, 5])
CARDINALITY = 9


def show_index(title: str, index: BitmapIndex) -> None:
    print(f"\n{title}")
    print(f"  base {index.base}, {index.encoding.value}-encoded, "
          f"{index.num_bitmaps} stored bitmaps")
    for i, component in enumerate(index.components, start=1):
        for slot in component.stored_slots():
            bits = "".join(
                "1" if b else "0" for b in component.bitmap(slot).to_bools()
            )
            print(f"  component {i}, B^{slot}: {bits}")


def main() -> None:
    print(f"example column (N=10, C=9): {VALUES.tolist()}")

    # Figure 1: the classical Value-List index — one equality-encoded
    # component, one bitmap per value.
    value_list = BitmapIndex(
        VALUES, CARDINALITY, encoding=EncodingScheme.EQUALITY
    )
    show_index("Figure 1 - Value-List index", value_list)

    # Figure 3: decomposing into base <3,3> cuts 9 bitmaps to 6 (equality).
    decomposed = BitmapIndex(
        VALUES, CARDINALITY, Base((3, 3)), EncodingScheme.EQUALITY
    )
    show_index("Figure 3 - base <3,3> Value-List index", decomposed)

    # Figure 4(c): range encoding the same decomposition stores only 4.
    range_encoded = BitmapIndex(VALUES, CARDINALITY, Base((3, 3)))
    show_index("Figure 4(c) - base <3,3> range-encoded index", range_encoded)

    # Figure 7: evaluate A <= 5 with both algorithms.
    predicate = Predicate("<=", 5)
    print(f"\nevaluating '{predicate}' on the range-encoded index:")
    for algorithm in ("range_eval", "range_eval_opt"):
        stats = ExecutionStats()
        result = evaluate(range_encoded, predicate, algorithm=algorithm, stats=stats)
        rows = sorted(result.iter_indices())
        print(f"  {algorithm:15s}: rows {rows}, "
              f"{stats.scans} scans, {stats.ops} bitmap ops")
    print("  (RangeEval-Opt saves one scan and roughly half the operations)")

    # The cost model that drives the whole design study.
    print("\ncost model (C = 9):")
    for base in (Base((9,)), Base((3, 3)), Base.binary(9)):
        print(f"  base {str(base):14s}: "
              f"space = {costmodel.space_range(base)} bitmaps, "
              f"expected scans/query = {costmodel.time_range(base):.3f}")


if __name__ == "__main__":
    main()
