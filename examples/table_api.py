"""The high-level Table API: design, query, aggregate, persist.

Everything the other examples do by hand — index design, plan choice,
expression evaluation, bit-sliced aggregation, storage — through the one
object a downstream user would actually hold.

Run:  python examples/table_api.py
"""

from __future__ import annotations

import numpy as np

from repro import Table
from repro.storage.disk import SimulatedDisk

NUM_ROWS = 25_000


def main() -> None:
    rng = np.random.default_rng(11)
    table = Table(
        "orders",
        {
            "customer": rng.integers(0, 500, NUM_ROWS),
            "priority": rng.integers(0, 5, NUM_ROWS),
            "month": rng.integers(0, 12, NUM_ROWS),
            "total": rng.integers(10, 10_000, NUM_ROWS),
        },
    )
    print(table, "\n")

    # Design indexes for the three dimension columns under one budget;
    # 'customer' gets the largest share because it is queried most.
    bases = table.design_indexes(
        70,
        weights={"customer": 3.0, "priority": 1.0, "month": 1.5},
        attributes=["customer", "priority", "month"],
    )
    for name, base in sorted(bases.items()):
        print(f"index on {name:9s}: base {base}")
    table.create_rid_index("customer")
    table.analyze("total")
    print()

    queries = [
        "priority <= 2 and month between 3 and 8",
        "customer = 123",
        "customer in (1, 2, 3) or priority = 4",
        "not month <= 9 and priority != 0",
    ]
    for text in queries:
        rids = table.select(text)
        print(f"{text!r}")
        print(f"  plan: {table.explain(text)}")
        print(f"  rows: {len(rids):,}")
        if len(rids):
            print(f"  SUM(total) = {table.aggregate('total', 'sum', where=text):,}"
                  f"   AVG = {table.aggregate('total', 'avg', where=text):,.0f}")
        print()

    # Persist and reload.
    disk = SimulatedDisk()
    table.save(disk, "orders_v1")
    restored = Table.load(disk, "orders_v1")
    same = np.array_equal(
        table.select(queries[0]), restored.select(queries[0])
    )
    print(f"persisted {disk.stats.bytes_written:,} bytes; reload "
          f"returns identical results: {same}")


if __name__ == "__main__":
    main()
