"""A data-warehouse column, stored and queried three ways.

Builds the paper's data set 1 (a TPC-D-shaped Lineitem.quantity column),
designs the knee index for it, serializes the index under the Bitmap-,
Component-, and Index-level storage schemes (plain and compressed), and
compares disk footprint and query cost — a condensed version of the
Section 9 study.

Run:  python examples/warehouse_compression.py
"""

from __future__ import annotations

from repro import evaluate
from repro.core.optimize import knee_base
from repro.query.executor import bitmap_index_for
from repro.stats import ExecutionStats
from repro.storage import SimulatedDisk, write_index
from repro.workloads import dataset1, restricted_query_space

NUM_ROWS = 30_000


def main() -> None:
    relation, spec = dataset1(num_rows=NUM_ROWS)
    cardinality = spec.attribute_cardinality
    print(f"data set: {spec.relation}.{spec.attribute}, "
          f"N={spec.relation_cardinality}, C={cardinality}")

    base = knee_base(cardinality)
    index = bitmap_index_for(relation, spec.attribute, base=base)
    print(f"knee index: base {base}, {index.num_bitmaps} bitmaps, "
          f"{index.size_in_bits // 8:,} bytes uncompressed\n")

    print(f"{'scheme':8s} {'files':>6s} {'bytes':>10s} "
          f"{'avg scans':>10s} {'avg bytes/query':>16s}")
    disk = SimulatedDisk()
    for scheme_name in ("BS", "cBS", "CS", "cCS", "IS", "cIS"):
        scheme = write_index(disk, scheme_name, index, scheme_name)
        totals = ExecutionStats()
        count = 0
        for predicate in restricted_query_space(cardinality):
            stats = ExecutionStats()
            result = evaluate(scheme, predicate, stats=stats)
            expected = index.naive_eval(predicate.op, predicate.value)
            assert result == expected, "storage scheme disagreed with memory!"
            scheme.reset_cache()
            totals.merge(stats)
            count += 1
        print(f"{scheme_name:8s} {scheme.file_count:6d} "
              f"{scheme.stored_bytes:10,d} {totals.scans / count:10.2f} "
              f"{totals.bytes_read // count:16,d}")

    print("\ntakeaways (matching the paper's Section 9):")
    print("  - compressed component-level storage (cCS) is the smallest")
    print("  - bitmap-level storage reads only the bitmaps a query needs;")
    print("    CS/IS scan whole files and pay to extract bit columns")
    print("  - after decomposition, compression adds little (the bitmaps")
    print("    are already few and dense)")


if __name__ == "__main__":
    main()
