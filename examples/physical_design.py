"""Physical database design with the advisor.

Scenario: a warehouse fact table has a ``customer_region`` dimension with
1000 distinct values.  The DBA wants to know which bitmap index to build
under different constraints — unlimited disk, a tight disk budget, and a
machine with buffer memory to spare.  This walks the paper's four
"interesting points" (Figure 2) through the advisor API.

Run:  python examples/physical_design.py
"""

from __future__ import annotations

from repro import recommend
from repro.core import costmodel
from repro.core.optimize import (
    global_space_optimal_base,
    global_time_optimal_base,
    knee_base,
)

CARDINALITY = 1000


def main() -> None:
    print(f"designing a bitmap index for attribute cardinality C={CARDINALITY}\n")

    # Point (D): the time-optimal index — fastest, huge.
    fastest = recommend(CARDINALITY, objective="time")
    print(f"(D) time-optimal:   {fastest}")

    # Point (A): the space-optimal index — tiny, slowest.
    smallest = recommend(CARDINALITY, objective="space")
    print(f"(A) space-optimal:  {smallest}")

    # Point (C): the knee — the sweet spot the paper recommends.
    knee = recommend(CARDINALITY)
    print(f"(C) knee:           {knee}")

    # Point (B): the best index that fits a 40-bitmap disk budget.
    constrained = recommend(CARDINALITY, space_budget=40, objective="time")
    print(f"(B) within budget:  {constrained}")

    print("\nhow much does the knee give up vs the extremes?")
    d_time = costmodel.time_range(global_time_optimal_base(CARDINALITY))
    a_space = costmodel.space_range(global_space_optimal_base(CARDINALITY))
    k = knee_base(CARDINALITY)
    print(f"  knee uses {costmodel.space_range(k)} bitmaps vs "
          f"{costmodel.space_range(global_time_optimal_base(CARDINALITY))} "
          f"for the time-optimal index "
          f"({costmodel.space_range(k) / (CARDINALITY - 1):.1%} of the space)")
    print(f"  knee answers in {costmodel.time_range(k):.2f} expected scans vs "
          f"{d_time:.2f} for the time-optimal and "
          f"{costmodel.time_range(global_space_optimal_base(CARDINALITY)):.2f} "
          f"for the {a_space}-bitmap space-optimal index")

    print("\nwith 8 bitmaps of buffer memory (Section 10):")
    buffered = recommend(CARDINALITY, buffer_bitmaps=8)
    print(f"  {buffered}")

    print("\nsweeping the disk budget (Algorithm TimeOptHeur):")
    for budget in (10, 15, 25, 40, 70, 120, 300):
        design = recommend(CARDINALITY, space_budget=budget, objective="time")
        print(f"  M={budget:4d} bitmaps -> base {str(design.base):28s} "
              f"space={design.space_bitmaps:4d}  "
              f"scans={design.expected_scans:.3f}")


if __name__ == "__main__":
    main()
