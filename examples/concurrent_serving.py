"""Serve a mixed predicate batch through the concurrent QueryEngine.

Registers a two-attribute relation with the engine, runs the same
80-query batch sequentially and with a 4-thread pool, verifies the
results are bit-identical, and prints the engine's metrics snapshot —
latency percentiles, cache hit rate, and build-once registry counters.

Run with::

    PYTHONPATH=src python examples/concurrent_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import QueryEngine
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation

NUM_ROWS = 200_000
NUM_QUERIES = 80
OPS = ("<", "<=", "=", "!=", ">=", ">")


def build_relation(num_rows: int) -> Relation:
    rng = np.random.default_rng(11)
    return Relation.from_dict(
        "sales",
        {
            "store": rng.integers(0, 200, num_rows),
            "quantity": rng.integers(0, 50, num_rows),
        },
    )


def build_batch(relation: Relation, count: int) -> list[AttributePredicate]:
    rng = np.random.default_rng(7)
    attributes = sorted(relation.columns)
    batch = []
    for _ in range(count):
        attribute = attributes[int(rng.integers(0, len(attributes)))]
        op = OPS[int(rng.integers(0, len(OPS)))]
        cardinality = relation.column(attribute).cardinality
        value = int(rng.integers(0, cardinality))
        batch.append(AttributePredicate(attribute, op, value))
    return batch


def main() -> None:
    relation = build_relation(NUM_ROWS)
    batch = build_batch(relation, NUM_QUERIES)

    engine = QueryEngine(cache_capacity=128, max_workers=4)
    engine.register(relation, components=2)
    built = engine.warm()  # prebuild indexes off the query path
    print(f"registered {relation.name!r} ({relation.num_rows} rows), "
          f"prebuilt {built} indexes")

    sequential = engine.query_batch(batch, workers=1)
    engine.reset_metrics()
    engine.reset_cache()
    concurrent = engine.query_batch(batch)  # uses the engine's pool

    identical = all(
        np.array_equal(s.rids, c.rids) for s, c in zip(sequential, concurrent)
    )
    print(f"4-thread results bit-identical to sequential: {identical}")

    snap = engine.snapshot()
    print(f"queries served:  {snap['queries']}")
    print(f"latency ms:      p50={snap['latency_ms']['p50']:.2f}  "
          f"p95={snap['latency_ms']['p95']:.2f}")
    print(f"cache hit rate:  {snap['cache']['hit_rate']:.2%} "
          f"({snap['cache']['hits']} hits / {snap['cache']['misses']} misses)")
    print(f"index builds:    {snap['registry']['builds']} "
          f"(reused {snap['registry']['reuses']} times)")


if __name__ == "__main__":
    main()
