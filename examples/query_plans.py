"""The introduction's plan analysis, executed.

Reproduces the paper's Section 1 scenario: a high-selectivity conjunctive
selection over two attributes, evaluated as (P1) a full scan, (P2) one
index plus a partial scan, and (P3) per-predicate index scans merged —
with both RID-list and bitmap indexes — and shows the bitmap-vs-RID-list
byte crossover at selectivity 1/32.

Run:  python examples/query_plans.py
"""

from __future__ import annotations

import numpy as np

from repro.query.executor import bitmap_index_for, conjunctive_select
from repro.query.plans import (
    plan_p1_cost,
    plan_p2_cost,
    plan_p3_bitmap_cost,
    plan_p3_ridlist_cost,
    ridlist_crossover_selectivity,
)
from repro.query.predicate import parse_predicate
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex

NUM_ROWS = 50_000


def build_relation() -> Relation:
    rng = np.random.default_rng(99)
    return Relation.from_dict(
        "orders",
        {
            "priority": rng.integers(0, 5, NUM_ROWS),
            "month": rng.integers(0, 12, NUM_ROWS),
        },
    )


def main() -> None:
    relation = build_relation()
    pred_a = parse_predicate("priority <= 2")
    pred_b = parse_predicate("month <= 7")
    print(f"query: SELECT * FROM orders WHERE {pred_a} AND {pred_b}")
    print(f"relation: N={relation.num_rows:,} rows, "
          f"{relation.row_bytes} bytes/row\n")

    indexes = {
        "priority": bitmap_index_for(relation, "priority"),
        "month": bitmap_index_for(relation, "month"),
    }
    result = conjunctive_select(relation, [pred_a, pred_b], indexes)
    selectivity = result.count / relation.num_rows
    print(f"result: {result.count:,} rows (selectivity {selectivity:.1%}) — "
          f"a classic high-selectivity-factor DSS query\n")

    rid_a = RIDListIndex(relation.column("priority").values)
    rid_b = RIDListIndex(relation.column("month").values)
    rows_a = len(rid_a.lookup(pred_a.op, pred_a.value))

    p1 = plan_p1_cost(relation)
    p2 = plan_p2_cost(relation, rid_a.bytes_for(pred_a.op, pred_a.value), rows_a)
    p3_rid = plan_p3_ridlist_cost(
        [rid_a, rid_b],
        [(pred_a.op, pred_a.value), (pred_b.op, pred_b.value)],
    )
    p3_bitmap = plan_p3_bitmap_cost(relation.num_rows, 1)

    print("plan costs (bytes read):")
    for cost in (p1, p2, p3_rid, p3_bitmap):
        print(f"  {cost}")
    cheapest = min((p1, p2, p3_rid, p3_bitmap), key=lambda c: c.bytes_read)
    print(f"\ncheapest: {cheapest.plan} — for large foundsets the bitmap "
          f"plan reads only N/8 bytes per bitmap per predicate")

    threshold = ridlist_crossover_selectivity()
    print(f"\ncrossover: bitmaps beat RID lists once the result holds more "
          f"than {threshold:.2%} of the rows (N <= 32 n);")
    print(f"this query selects {selectivity:.1%}, far above the threshold.")


if __name__ == "__main__":
    main()
