"""An OLAP mini-dashboard: optimizer + bitmap indexes + bit-sliced aggregates.

Puts the whole library to work on one fact table:

1. the multi-attribute allocator splits a disk budget across three
   dimension columns (Section 6-8 machinery, per column);
2. the cost-based optimizer picks P1/P2/P3 per query (the introduction's
   plan analysis);
3. bit-sliced aggregation computes SUM/AVG/MIN/MAX of the measure column
   over each query's foundset without touching the relation;
4. the serving engine answers the dashboard's breakdown panel with
   pushed-down aggregates: ``group_count`` over a threshold expression
   returns per-channel counts from popcounts alone, no RID list ever
   materialized.

Run:  python examples/olap_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro import AttributeSpec, BitSlicedAggregator, QueryEngine, allocate_budget
from repro.bitmaps.bitvector import BitVector
from repro.query.executor import bitmap_index_for
from repro.query.optimizer import Catalog, choose_plan, execute_plan
from repro.query.predicate import parse_predicate
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex

NUM_ROWS = 40_000
BITMAP_BUDGET = 60  # total bitmaps across all dimension indexes


def build_fact_table() -> Relation:
    rng = np.random.default_rng(7)
    return Relation.from_dict(
        "sales",
        {
            "store": rng.integers(0, 200, NUM_ROWS),     # high cardinality
            "product": rng.integers(0, 50, NUM_ROWS),    # medium
            "channel": rng.integers(0, 4, NUM_ROWS),     # tiny
            "amount": rng.integers(1, 5000, NUM_ROWS),   # the measure
        },
    )


def main() -> None:
    relation = build_fact_table()
    print(f"fact table: {relation.num_rows:,} rows\n")

    # 1. Split the bitmap budget across the dimensions by query share.
    specs = [
        AttributeSpec("store", 200, weight=3.0),    # queried most often
        AttributeSpec("product", 50, weight=2.0),
        AttributeSpec("channel", 4, weight=1.0),
    ]
    design = allocate_budget(specs, BITMAP_BUDGET)
    print(f"physical design under a {BITMAP_BUDGET}-bitmap budget:")
    for name in ("store", "product", "channel"):
        base = design.indexes[name]
        print(f"  {name:8s} -> base {str(base):22s} "
              f"({design.budgets[name]} bitmaps)")
    print(f"  weighted expected scans/query: {design.expected_scans:.3f}\n")

    catalog = Catalog(
        bitmap_indexes={
            name: bitmap_index_for(relation, name, base=design.indexes[name])
            for name in design.indexes
        },
        rid_indexes={
            name: RIDListIndex(relation.column(name).values)
            for name in design.indexes
        },
    )
    aggregator = BitSlicedAggregator.from_values(
        relation.column("amount").values
    )

    # 2. + 3. Run dashboard queries through the optimizer and aggregate.
    queries = [
        ["store <= 99", "channel = 2"],
        ["product <= 24"],
        ["store = 17"],
        ["product >= 40", "channel <= 1"],
    ]
    for texts in queries:
        predicates = [parse_predicate(t) for t in texts]
        choice = choose_plan(relation, predicates, catalog)
        result, _ = execute_plan(relation, predicates, catalog, choice=choice)
        foundset = BitVector.from_indices(relation.num_rows, result.rids)
        label = " AND ".join(texts)
        print(f"query: {label}")
        print(f"  plan: {choice}")
        if result.count:
            print(f"  rows: {result.count:,}   "
                  f"SUM(amount) = {aggregator.sum(foundset):,}   "
                  f"AVG = {aggregator.average(foundset):,.1f}   "
                  f"MIN = {aggregator.minimum(foundset)}   "
                  f"MAX = {aggregator.maximum(foundset)}")
        else:
            print("  rows: 0")
        print()

    # 4. The breakdown panel: per-channel counts of "interesting" sales
    #    (at least 2 of 3 signals), pushed down to popcounts.
    breakdown = "atleast(2, store <= 99, product <= 24, channel >= 2)"
    with QueryEngine(codec="wah") as engine:
        engine.register(relation)
        per_channel = engine.group_count(breakdown, by="channel")
        print(f"breakdown: {breakdown} by channel")
        print(f"  total rows: {per_channel.count:,} (no RIDs materialized)")
        for channel, matched in sorted(per_channel.groups.items()):
            print(f"  channel {channel}: {matched:,}")


if __name__ == "__main__":
    main()
