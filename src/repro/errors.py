"""Exception hierarchy for the :mod:`repro` bitmap-index library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching unrelated Python
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidBaseError(ReproError, ValueError):
    """A decomposition base is not well-defined.

    The paper requires every base number to satisfy ``b_i >= 2`` and the
    product of base numbers to cover the attribute cardinality.
    """


class ValueOutOfRangeError(ReproError, ValueError):
    """An attribute value lies outside ``[0, C)`` for the index at hand."""


class LengthMismatchError(ReproError, ValueError):
    """Two bitvectors of different lengths were combined."""


class InvalidPredicateError(ReproError, ValueError):
    """A selection predicate uses an unknown comparison operator."""


class StorageError(ReproError):
    """Base class for simulated-storage failures."""


class FileMissingError(StorageError, KeyError):
    """A bitmap file was requested that does not exist on the disk."""


class CorruptFileError(StorageError):
    """A stored bitmap file failed its integrity checks on read."""


class BufferConfigError(ReproError, ValueError):
    """A buffer assignment is not well-defined for the index it targets."""


class EngineConfigError(ReproError, ValueError):
    """A query engine was configured or queried inconsistently.

    Raised for unregistered relations/attributes, invalid worker or cache
    settings, and index-spec overrides that target unserved attributes.
    """


class OptimizationError(ReproError):
    """An index-optimization routine cannot satisfy its constraints.

    Raised, for example, when a space budget is below the global
    space-optimal index size, so no feasible index exists.
    """
