"""Exception hierarchy for the :mod:`repro` bitmap-index library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching unrelated Python
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidBaseError(ReproError, ValueError):
    """A decomposition base is not well-defined.

    The paper requires every base number to satisfy ``b_i >= 2`` and the
    product of base numbers to cover the attribute cardinality.
    """


class ValueOutOfRangeError(ReproError, ValueError):
    """An attribute value lies outside ``[0, C)`` for the index at hand."""


class LengthMismatchError(ReproError, ValueError):
    """Two bitvectors of different lengths were combined."""


class InvalidPredicateError(ReproError, ValueError):
    """A selection predicate uses an unknown comparison operator."""


class StorageError(ReproError):
    """Base class for simulated-storage failures."""


class FileMissingError(StorageError, KeyError):
    """A bitmap file was requested that does not exist on the disk."""


class CorruptFileError(StorageError):
    """A stored bitmap file failed its integrity checks on read."""


class CorruptShardError(CorruptFileError):
    """A shared-memory shard payload failed its checksum on attach.

    Raised worker-side when a published bitmap's CRC disagrees with the
    manifest; the engine treats it as a signal to rebuild the publication
    from the source index and retry.
    """


class ShmAttachError(StorageError):
    """A worker could not attach a published shared-memory shard.

    Raised when the named segment has vanished (the publisher unlinked or
    crashed) or when the fault harness injects an attach failure.  The
    engine retries the dispatch; the publication itself is still owned by
    the parent, so a fresh attach normally succeeds.
    """


class InjectedFaultError(StorageError):
    """An error deliberately injected by a :class:`repro.faults.FaultPlan`.

    Distinct from organic failures so chaos tests (and operators reading
    logs from a fault drill) can tell drills from real incidents.  The
    engine's recovery path treats it exactly like the organic error it
    stands in for.
    """


class QueryTimeoutError(ReproError):
    """A query exceeded its ``QueryOptions.deadline_ms`` budget.

    Raised cooperatively at the evaluator, shard, and storage seams — the
    query never produces a partial (wrong) answer, it raises instead.
    When the query ran with tracing enabled the partial
    :class:`~repro.trace.QueryTrace` collected up to the expiry rides on
    the ``trace`` attribute (``None`` otherwise, and after crossing a
    process boundary).
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.trace = None


class BufferConfigError(ReproError, ValueError):
    """A buffer assignment is not well-defined for the index it targets."""


class EngineConfigError(ReproError, ValueError):
    """A query engine was configured or queried inconsistently.

    Raised for unregistered relations/attributes, invalid worker or cache
    settings, and index-spec overrides that target unserved attributes.
    """


class OptimizationError(ReproError):
    """An index-optimization routine cannot satisfy its constraints.

    Raised, for example, when a space budget is below the global
    space-optimal index size, so no feasible index exists.
    """
