"""A from-scratch Roaring bitmap codec: adaptive per-chunk containers.

Roaring (Chambi, Lemire, Kaser & Godin, "Better bitmap performance with
Roaring bitmaps") partitions the row space into 2^16-row *chunks* and
stores each non-empty chunk in whichever of three container shapes is
smallest for its contents:

- **array** — a sorted ``uint16`` array of the set positions; used while
  the chunk holds at most :data:`ARRAY_MAX` (4096) rows, at which point
  the array (2 bytes/row) would outgrow the bitmap container.
- **bitmap** — a packed 1024-word (8 KiB) ``uint64`` bit array; used for
  dense chunks beyond the array threshold.
- **run** — sorted, coalesced ``(start, length)`` intervals; used
  whenever the chunk's set bits form few enough runs that 4 bytes/run
  beats both alternatives.

Container selection is re-evaluated after every operation
(:func:`_seal_array` / :func:`_seal_words` / :func:`_seal_runs`), so a
chunk crossing the 4096-row boundary flips representation automatically
and run-structured results collapse to run containers without an explicit
``runOptimize`` pass.

Where WAH's run-length words lose on uniform-random (short-run) data —
every 31-bit group becomes a literal word and the codec degenerates to a
dense bitmap with 1/32 overhead plus per-run merge cost — Roaring's array
containers keep both the space and the AND/OR cost proportional to the
number of *set bits*, which is exactly the regime the
``bench_codec_crossover`` benchmark maps against WAH and dense execution.

:class:`RoaringBitmap` mirrors the algebra surface of
:class:`~repro.bitmaps.bitvector.BitVector` and
:class:`~repro.bitmaps.compressed.WahBitVector` (``zeros`` / ``ones``,
``count``, ``indices``, ``to_bools``, ``copy``, ``nbytes``, the four
logical operators, and k-way ``and_many`` / ``or_many``), so the
evaluation algorithms of :mod:`repro.core.evaluation`, the storage
schemes, and the query engine serve it unchanged as a third backend.

The serialized form (:meth:`RoaringBitmap.serialize` /
:meth:`RoaringBitmap.deserialize`) is self-describing and validated on
read: truncated, overlong, or internally inconsistent payloads raise
:class:`~repro.errors.CorruptFileError` rather than crashing or decoding
to a wrong answer.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator, Sequence

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.errors import CorruptFileError, LengthMismatchError

#: Rows per chunk (the Roaring partition unit).
CHUNK_SIZE = 1 << 16
#: Array containers hold at most this many rows before flipping to bitmap
#: (2 bytes/row * 4096 = the 8 KiB bitmap container size).
ARRAY_MAX = 4096
#: 64-bit words in a bitmap container.
BITMAP_WORDS = CHUNK_SIZE // 64
#: Bytes in a bitmap container.
BITMAP_NBYTES = BITMAP_WORDS * 8

#: Container kind tags (also the on-disk ``kind`` byte).
ARRAY, BITMAP, RUN = 0, 1, 2

_KIND_NAMES = {ARRAY: "array", BITMAP: "bitmap", RUN: "run"}

# header: magic(4) version(B) reserved(B) nbits(Q) ncontainers(I)
_HEADER = struct.Struct("<4sBBQI")
# per container: key(H) kind(B) count(I)
_CONTAINER_HEADER = struct.Struct("<HBI")
_MAGIC = b"ROAR"
_VERSION = 1

_ONE = np.uint64(1)
_SIX3 = np.uint64(63)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_words(words: np.ndarray) -> int:
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return int(np.unpackbits(words.view(np.uint8)).sum())


def _words_to_indices(words: np.ndarray) -> np.ndarray:
    """Positions of set bits in a 1024-word chunk, as int64."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits)


def _indices_to_words(values: np.ndarray) -> np.ndarray:
    """Pack sorted in-chunk positions into a 1024-word bitmap."""
    bools = np.zeros(CHUNK_SIZE, dtype=bool)
    bools[values] = True
    return np.packbits(bools, bitorder="little").view(np.uint64)


def _runs_to_words(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Pack coalesced runs into a 1024-word bitmap (delta + cumsum)."""
    delta = np.zeros(CHUNK_SIZE + 1, dtype=np.int32)
    delta[starts] = 1
    # Coalesced runs guarantee start[k+1] > start[k] + length[k], so the
    # decrement positions never collide with an increment.
    delta[starts + lengths] -= 1
    bools = np.cumsum(delta[:CHUNK_SIZE]).astype(bool)
    return np.packbits(bools, bitorder="little").view(np.uint64)


def _runs_to_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand runs to the sorted positions they cover (vectorized)."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    step = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    step[0] = starts[0]
    step[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(step)


def _shift_up(words: np.ndarray) -> np.ndarray:
    """Each bit moved one position higher (bit i gets old bit i-1)."""
    out = words << _ONE
    out[1:] |= words[:-1] >> _SIX3
    return out


def _shift_down(words: np.ndarray) -> np.ndarray:
    """Each bit moved one position lower (bit i gets old bit i+1)."""
    out = words >> _ONE
    out[:-1] |= words[1:] << _SIX3
    return out


# ----------------------------------------------------------------------
# Container construction: pick the smallest representation
# ----------------------------------------------------------------------
#
# A container is a ``(kind, data)`` pair: ARRAY data is a sorted uint16
# array; BITMAP data is a 1024-entry uint64 array (owned, never a view
# into shared storage); RUN data is an ``(starts, lengths)`` pair of
# int64 arrays describing sorted, coalesced, non-empty intervals.


def _run_bytes(nruns: int) -> int:
    return 4 * nruns


def _pick_kind(cardinality: int, nruns: int) -> int:
    """The smallest representation for a chunk's statistics."""
    array_ok = cardinality <= ARRAY_MAX
    threshold = min(2 * cardinality, BITMAP_NBYTES) if array_ok else BITMAP_NBYTES
    if _run_bytes(nruns) < threshold:
        return RUN
    return ARRAY if array_ok else BITMAP


def _seal_array(values: np.ndarray):
    """Seal sorted unique in-chunk positions into the best container."""
    card = len(values)
    if card == 0:
        return None
    boundaries = np.flatnonzero(np.diff(values) != 1)
    nruns = len(boundaries) + 1
    kind = _pick_kind(card, nruns)
    if kind == RUN:
        starts = values[np.concatenate(([0], boundaries + 1))].astype(np.int64)
        ends = values[np.concatenate((boundaries, [card - 1]))].astype(np.int64)
        return (RUN, (starts, ends - starts + 1))
    if kind == ARRAY:
        return (ARRAY, values.astype(np.uint16))
    return (BITMAP, _indices_to_words(values))


def _seal_words(words: np.ndarray):
    """Seal a 1024-word chunk bitmap into the best container.

    Takes ownership of ``words``; pass a copy when the array aliases
    shared storage.
    """
    card = _popcount_words(words)
    if card == 0:
        return None
    starts_mask = words & ~_shift_up(words)
    nruns = _popcount_words(starts_mask)
    kind = _pick_kind(card, nruns)
    if kind == RUN:
        ends_mask = words & ~_shift_down(words)
        starts = _words_to_indices(starts_mask)
        ends = _words_to_indices(ends_mask)
        return (RUN, (starts, ends - starts + 1))
    if kind == ARRAY:
        return (ARRAY, _words_to_indices(words).astype(np.uint16))
    return (BITMAP, words)


def _seal_runs(starts: np.ndarray, lengths: np.ndarray):
    """Seal sorted coalesced runs into the best container."""
    nruns = len(starts)
    if nruns == 0:
        return None
    card = int(lengths.sum())
    kind = _pick_kind(card, nruns)
    if kind == RUN:
        return (RUN, (starts, lengths))
    if kind == ARRAY:
        return (ARRAY, _runs_to_indices(starts, lengths).astype(np.uint16))
    return (BITMAP, _runs_to_words(starts, lengths))


# ----------------------------------------------------------------------
# Container accessors
# ----------------------------------------------------------------------


def _container_count(container) -> int:
    kind, data = container
    if kind == ARRAY:
        return len(data)
    if kind == BITMAP:
        return _popcount_words(data)
    return int(data[1].sum())


def _container_indices(container) -> np.ndarray:
    """Sorted in-chunk positions of a container, as int64."""
    kind, data = container
    if kind == ARRAY:
        return data.astype(np.int64)
    if kind == BITMAP:
        return _words_to_indices(data)
    return _runs_to_indices(*data)


def _container_words(container) -> np.ndarray:
    """The container as a fresh (owned) 1024-word bitmap."""
    kind, data = container
    if kind == ARRAY:
        return _indices_to_words(data.astype(np.int64))
    if kind == BITMAP:
        return data.copy()
    return _runs_to_words(*data)


def _member_mask(values: np.ndarray, container) -> np.ndarray:
    """Boolean mask: which sorted int64 ``values`` are in ``container``."""
    kind, data = container
    if kind == ARRAY:
        other = data.astype(np.int64)
        pos = np.searchsorted(other, values)
        pos[pos >= len(other)] = len(other) - 1
        return other[pos] == values
    if kind == BITMAP:
        return ((data[values >> 6] >> (values & 63).astype(np.uint64)) & _ONE) == 1
    starts, lengths = data
    pos = np.searchsorted(starts, values, side="right") - 1
    valid = pos >= 0
    pos[~valid] = 0
    return valid & (values < starts[pos] + lengths[pos])


# ----------------------------------------------------------------------
# Container algebra
# ----------------------------------------------------------------------


def _and_runs(a, b):
    """Intersect two coalesced run lists with a two-pointer sweep."""
    (sa, la), (sb, lb) = a, b
    starts: list[int] = []
    lengths: list[int] = []
    i = j = 0
    while i < len(sa) and j < len(sb):
        lo = max(sa[i], sb[j])
        hi = min(sa[i] + la[i], sb[j] + lb[j])
        if lo < hi:
            starts.append(int(lo))
            lengths.append(int(hi - lo))
        if sa[i] + la[i] <= sb[j] + lb[j]:
            i += 1
        else:
            j += 1
    return np.asarray(starts, dtype=np.int64), np.asarray(lengths, dtype=np.int64)


def _or_runs(a, b):
    """Union two coalesced run lists with a merge sweep."""
    (sa, la), (sb, lb) = a, b
    order = np.argsort(np.concatenate((sa, sb)), kind="stable")
    all_starts = np.concatenate((sa, sb))[order]
    all_ends = np.concatenate((sa + la, sb + lb))[order]
    starts: list[int] = []
    lengths: list[int] = []
    cur_start = int(all_starts[0])
    cur_end = int(all_ends[0])
    for s, e in zip(all_starts[1:].tolist(), all_ends[1:].tolist()):
        if s > cur_end:  # gap: runs must stay coalesced (end + 1 adjacency merges)
            starts.append(cur_start)
            lengths.append(cur_end - cur_start)
            cur_start, cur_end = s, e
        elif e > cur_end:
            cur_end = e
    starts.append(cur_start)
    lengths.append(cur_end - cur_start)
    return np.asarray(starts, dtype=np.int64), np.asarray(lengths, dtype=np.int64)


def _container_and(a, b):
    ka, kb = a[0], b[0]
    if ka == ARRAY and kb == ARRAY:
        return _seal_array(
            np.intersect1d(a[1], b[1], assume_unique=True).astype(np.int64)
        )
    if ka == BITMAP and kb == BITMAP:
        return _seal_words(a[1] & b[1])
    if ka == RUN and kb == RUN:
        return _seal_runs(*_and_runs(a[1], b[1]))
    if ka == ARRAY or kb == ARRAY:
        arr, other = (a, b) if ka == ARRAY else (b, a)
        values = arr[1].astype(np.int64)
        return _seal_array(values[_member_mask(values, other)])
    # bitmap x run
    return _seal_words(_container_words(a) & _container_words(b))


def _container_and_count(a, b) -> int:
    """Cardinality of the container intersection without sealing it."""
    ka, kb = a[0], b[0]
    if ka == ARRAY and kb == ARRAY:
        return int(np.intersect1d(a[1], b[1], assume_unique=True).size)
    if ka == ARRAY or kb == ARRAY:
        arr, other = (a, b) if ka == ARRAY else (b, a)
        return int(_member_mask(arr[1].astype(np.int64), other).sum())
    if ka == RUN and kb == RUN:
        return int(_and_runs(a[1], b[1])[1].sum())
    return int(_popcount_words(_container_words(a) & _container_words(b)))


def _container_or(a, b):
    ka, kb = a[0], b[0]
    if ka == ARRAY and kb == ARRAY:
        return _seal_array(np.union1d(a[1], b[1]).astype(np.int64))
    if ka == RUN and kb == RUN:
        return _seal_runs(*_or_runs(a[1], b[1]))
    return _seal_words(_container_words(a) | _container_words(b))


def _container_xor(a, b):
    if a[0] == ARRAY and b[0] == ARRAY:
        return _seal_array(
            np.setxor1d(a[1], b[1], assume_unique=True).astype(np.int64)
        )
    return _seal_words(_container_words(a) ^ _container_words(b))


def _container_andnot(a, b):
    ka, kb = a[0], b[0]
    if ka == ARRAY and kb == ARRAY:
        return _seal_array(
            np.setdiff1d(a[1], b[1], assume_unique=True).astype(np.int64)
        )
    if ka == ARRAY:
        values = a[1].astype(np.int64)
        return _seal_array(values[~_member_mask(values, b)])
    return _seal_words(_container_words(a) & ~_container_words(b))


def _complement_container(container, limit: int):
    """The complement of a container within ``[0, limit)``."""
    if container is None:
        if limit == 0:
            return None
        return _seal_runs(
            np.asarray([0], dtype=np.int64), np.asarray([limit], dtype=np.int64)
        )
    kind, data = container
    if kind == RUN:
        starts, lengths = data
        ends = starts + lengths
        gap_starts = np.concatenate(([0], ends))
        gap_ends = np.concatenate((starts, [limit]))
        keep = gap_starts < gap_ends
        return _seal_runs(gap_starts[keep], (gap_ends - gap_starts)[keep])
    words = ~_container_words(container)
    if limit < CHUNK_SIZE:
        full, tail = divmod(limit, 64)
        words[full + 1 :] = 0
        if tail:
            words[full] &= np.uint64((1 << tail) - 1)
        else:
            words[full:] = 0
    return _seal_words(words)


# ----------------------------------------------------------------------
# The bitmap
# ----------------------------------------------------------------------


class RoaringBitmap:
    """A Roaring-compressed bitmap supporting compressed-domain algebra.

    Instances are immutable by convention: every operator returns a new
    bitmap and containers are never mutated in place, matching the
    aliasing contract of :class:`BitVector` and :class:`WahBitVector`.
    """

    __slots__ = ("_nbits", "_keys", "_containers")

    def __init__(self, nbits: int, keys: list[int], containers: list):
        self._nbits = nbits
        self._keys = keys
        self._containers = containers

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "RoaringBitmap":
        """The all-zero bitmap of ``nbits`` bits (no containers at all)."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        return cls(nbits, [], [])

    @classmethod
    def ones(cls, nbits: int) -> "RoaringBitmap":
        """The all-one bitmap of ``nbits`` bits (one run per chunk)."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        keys: list[int] = []
        containers: list = []
        for key in range(_num_chunks(nbits)):
            limit = _chunk_limit(nbits, key)
            keys.append(key)
            containers.append(
                _seal_runs(
                    np.asarray([0], dtype=np.int64),
                    np.asarray([limit], dtype=np.int64),
                )
            )
        return cls(nbits, keys, containers)

    @classmethod
    def from_indices(cls, nbits: int, indices) -> "RoaringBitmap":
        """A bitmap with exactly the bits in ``indices`` set."""
        values = np.unique(np.asarray(indices, dtype=np.int64))
        if values.size and (values[0] < 0 or values[-1] >= nbits):
            raise IndexError("bit index out of range")
        keys: list[int] = []
        containers: list = []
        if values.size:
            chunk_of = values >> 16
            cut = np.flatnonzero(np.diff(chunk_of)) + 1
            for part in np.split(values, cut):
                keys.append(int(part[0] >> 16))
                containers.append(_seal_array(part & 0xFFFF))
        return cls(nbits, keys, containers)

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "RoaringBitmap":
        """Build from a boolean array (bit ``i`` = ``bools[i]``)."""
        return cls.from_bitvector(BitVector.from_bools(np.asarray(bools, bool)))

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "RoaringBitmap":
        """Compress an uncompressed vector, chunk by chunk."""
        nbits = vector.nbits
        raw = vector.to_bytes()
        nchunks = _num_chunks(nbits)
        buf = np.zeros(nchunks * BITMAP_NBYTES, dtype=np.uint8)
        buf[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        words = buf.view(np.uint64).reshape(nchunks, BITMAP_WORDS)
        keys: list[int] = []
        containers: list = []
        for key in range(nchunks):
            container = _seal_words(words[key].copy())
            if container is not None:
                keys.append(key)
                containers.append(container)
        return cls(nbits, keys, containers)

    def to_bitvector(self) -> BitVector:
        """Materialize back to the uncompressed form."""
        nchunks = _num_chunks(self._nbits)
        words = np.zeros(nchunks * BITMAP_WORDS, dtype=np.uint64)
        for key, container in zip(self._keys, self._containers):
            base = key * BITMAP_WORDS
            words[base : base + BITMAP_WORDS] = _container_words(container)
        nwords = (self._nbits + 63) // 64
        return BitVector(self._nbits, words[:nwords].copy())

    def copy(self) -> "RoaringBitmap":
        """An independent handle (containers are immutable by convention)."""
        return RoaringBitmap(self._nbits, list(self._keys), list(self._containers))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nbits(self) -> int:
        return self._nbits

    @property
    def num_containers(self) -> int:
        """Resident containers (non-empty 2^16-row chunks)."""
        return len(self._containers)

    def container_kinds(self) -> list[tuple[int, str]]:
        """``(chunk_key, kind_name)`` per container — for tests and tuning."""
        return [
            (key, _KIND_NAMES[container[0]])
            for key, container in zip(self._keys, self._containers)
        ]

    @property
    def nbytes(self) -> int:
        """In-memory footprint in bytes: actual container storage.

        This is the accounting hook byte-budget caches rely on
        (:class:`~repro.engine.cache.SharedBitmapCache` sizes entries via
        ``nbytes`` for every bitmap representation): the sum of each
        container's backing-array bytes plus a small fixed per-container
        and per-bitmap bookkeeping overhead.
        """
        total = _HEADER.size
        for kind, data in self._containers:
            total += _CONTAINER_HEADER.size
            if kind == RUN:
                total += data[0].nbytes + data[1].nbytes
            else:
                total += data.nbytes
        return total

    def count(self) -> int:
        """Population count, summed container by container."""
        return sum(_container_count(c) for c in self._containers)

    def and_count(self, other: "RoaringBitmap") -> int:
        """``(self & other).count()`` without sealing result containers.

        The aggregate-pushdown primitive: intersects chunk pairs with the
        same kind-specialized paths as ``&`` but counts in place — no
        result container is classified, copied, or sealed.
        """
        self._check(other)
        mine = dict(zip(self._keys, self._containers))
        total = 0
        for key, theirs in zip(other._keys, other._containers):
            ours = mine.get(key)
            if ours is not None:
                total += _container_and_count(ours, theirs)
        return total

    def any(self) -> bool:
        return bool(self._containers)

    def to_bools(self) -> np.ndarray:
        """Decode to a boolean numpy array of length ``nbits``."""
        return self.to_bitvector().to_bools()

    def indices(self) -> np.ndarray:
        """Sorted array of set-bit positions (the RID list)."""
        if not self._containers:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [
                (key << 16) + _container_indices(container)
                for key, container in zip(self._keys, self._containers)
            ]
        )

    def iter_indices(self) -> Iterator[int]:
        """Iterate over set-bit positions in increasing order."""
        return iter(self.indices().tolist())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def _check(self, other: "RoaringBitmap") -> None:
        if not isinstance(other, RoaringBitmap):
            raise TypeError(
                f"expected RoaringBitmap, got {type(other).__name__}"
            )
        if self._nbits != other._nbits:
            raise LengthMismatchError(
                f"cannot combine vectors of {self._nbits} and "
                f"{other._nbits} bits"
            )

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        self._check(other)
        keys: list[int] = []
        containers: list = []
        mine = dict(zip(self._keys, self._containers))
        for key, theirs in zip(other._keys, other._containers):
            ours = mine.get(key)
            if ours is None:
                continue
            merged = _container_and(ours, theirs)
            if merged is not None:
                keys.append(key)
                containers.append(merged)
        return RoaringBitmap(self._nbits, keys, containers)

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        self._check(other)
        return self._merge_union(other, _container_or)

    def __xor__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        self._check(other)
        return self._merge_union(other, _container_xor)

    def _merge_union(self, other: "RoaringBitmap", op) -> "RoaringBitmap":
        """Key-union merge for operators where one-sided chunks survive."""
        mine = dict(zip(self._keys, self._containers))
        theirs = dict(zip(other._keys, other._containers))
        keys: list[int] = []
        containers: list = []
        for key in sorted(mine.keys() | theirs.keys()):
            a, b = mine.get(key), theirs.get(key)
            merged = op(a, b) if a is not None and b is not None else (a or b)
            if merged is not None:
                keys.append(key)
                containers.append(merged)
        return RoaringBitmap(self._nbits, keys, containers)

    def andnot(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """``self AND NOT other`` as a single container-level operation."""
        self._check(other)
        theirs = dict(zip(other._keys, other._containers))
        keys: list[int] = []
        containers: list = []
        for key, ours in zip(self._keys, self._containers):
            b = theirs.get(key)
            merged = ours if b is None else _container_andnot(ours, b)
            if merged is not None:
                keys.append(key)
                containers.append(merged)
        return RoaringBitmap(self._nbits, keys, containers)

    def __invert__(self) -> "RoaringBitmap":
        mine = dict(zip(self._keys, self._containers))
        keys: list[int] = []
        containers: list = []
        for key in range(_num_chunks(self._nbits)):
            flipped = _complement_container(
                mine.get(key), _chunk_limit(self._nbits, key)
            )
            if flipped is not None:
                keys.append(key)
                containers.append(flipped)
        return RoaringBitmap(self._nbits, keys, containers)

    @classmethod
    def or_many(cls, vectors: Sequence["RoaringBitmap"]) -> "RoaringBitmap":
        """OR k bitmaps in one k-way container merge (see :func:`roaring_or_many`)."""
        return roaring_or_many(vectors)

    @classmethod
    def and_many(cls, vectors: Sequence["RoaringBitmap"]) -> "RoaringBitmap":
        """AND k bitmaps in one k-way container merge (see :func:`roaring_and_many`)."""
        return roaring_and_many(vectors)

    @classmethod
    def threshold_many(
        cls, vectors: Sequence["RoaringBitmap"], k: int
    ) -> "RoaringBitmap":
        """k-of-N threshold over containers (see :func:`roaring_threshold_many`)."""
        return roaring_threshold_many(vectors, k)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """The bitmap as a self-describing, validated byte payload."""
        parts = [
            _HEADER.pack(_MAGIC, _VERSION, 0, self._nbits, len(self._containers))
        ]
        for key, (kind, data) in zip(self._keys, self._containers):
            if kind == ARRAY:
                count = len(data)
                payload = data.astype("<u2").tobytes()
            elif kind == BITMAP:
                count = _popcount_words(data)
                payload = data.astype("<u8").tobytes()
            else:
                starts, lengths = data
                count = len(starts)
                pairs = np.empty((count, 2), dtype="<u2")
                pairs[:, 0] = starts
                pairs[:, 1] = lengths - 1  # length is stored minus one
                payload = pairs.tobytes()
            parts.append(_CONTAINER_HEADER.pack(key, kind, count))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "RoaringBitmap":
        """Inverse of :meth:`serialize`; validates every structural invariant.

        Raises :class:`~repro.errors.CorruptFileError` on truncated,
        overlong, or internally inconsistent payloads — a corrupt stored
        bitmap must never decode to a silently wrong answer.
        """
        if len(blob) < _HEADER.size:
            raise CorruptFileError("roaring payload shorter than its header")
        magic, version, _, nbits, ncontainers = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise CorruptFileError(f"roaring payload has bad magic {magic!r}")
        if version != _VERSION:
            raise CorruptFileError(
                f"unsupported roaring payload version {version}"
            )
        nchunks = _num_chunks(nbits)
        if ncontainers > nchunks:
            raise CorruptFileError(
                f"roaring payload declares {ncontainers} containers for "
                f"{nbits} bits ({nchunks} chunks)"
            )
        offset = _HEADER.size
        keys: list[int] = []
        containers: list = []
        prev_key = -1
        for _ in range(ncontainers):
            if len(blob) < offset + _CONTAINER_HEADER.size:
                raise CorruptFileError("roaring container header truncated")
            key, kind, count = _CONTAINER_HEADER.unpack_from(blob, offset)
            offset += _CONTAINER_HEADER.size
            if key <= prev_key:
                raise CorruptFileError(
                    f"roaring container keys not strictly increasing at {key}"
                )
            if key >= nchunks:
                raise CorruptFileError(
                    f"roaring container key {key} out of range for {nbits} bits"
                )
            prev_key = key
            limit = _chunk_limit(nbits, key)
            container, offset = cls._read_container(
                blob, offset, kind, count, limit
            )
            keys.append(key)
            containers.append(container)
        if offset != len(blob):
            raise CorruptFileError(
                f"roaring payload has {len(blob) - offset} trailing bytes"
            )
        return cls(nbits, keys, containers)

    @staticmethod
    def _read_container(blob: bytes, offset: int, kind: int, count: int, limit: int):
        if count == 0:
            raise CorruptFileError("roaring payload contains an empty container")
        if kind == ARRAY:
            size = 2 * count
            if len(blob) < offset + size:
                raise CorruptFileError("roaring array container truncated")
            values = np.frombuffer(blob, dtype="<u2", count=count, offset=offset)
            inorder = values[:-1] < values[1:]
            if not bool(inorder.all()):
                raise CorruptFileError(
                    "roaring array container not sorted strictly increasing"
                )
            if int(values[-1]) >= limit:
                raise CorruptFileError(
                    "roaring array container exceeds the bitmap length"
                )
            return (ARRAY, values.astype(np.uint16)), offset + size
        if kind == BITMAP:
            if len(blob) < offset + BITMAP_NBYTES:
                raise CorruptFileError("roaring bitmap container truncated")
            words = np.frombuffer(
                blob, dtype="<u8", count=BITMAP_WORDS, offset=offset
            ).astype(np.uint64)
            if _popcount_words(words) != count:
                raise CorruptFileError(
                    "roaring bitmap container cardinality mismatch"
                )
            if limit < CHUNK_SIZE:
                tail = _words_to_indices(words)
                if len(tail) and int(tail[-1]) >= limit:
                    raise CorruptFileError(
                        "roaring bitmap container exceeds the bitmap length"
                    )
            return (BITMAP, words), offset + BITMAP_NBYTES
        if kind == RUN:
            size = 4 * count
            if len(blob) < offset + size:
                raise CorruptFileError("roaring run container truncated")
            pairs = np.frombuffer(blob, dtype="<u2", count=2 * count, offset=offset)
            starts = pairs[0::2].astype(np.int64)
            lengths = pairs[1::2].astype(np.int64) + 1
            ends = starts + lengths
            if len(starts) > 1 and not bool((starts[1:] > ends[:-1]).all()):
                raise CorruptFileError(
                    "roaring run container runs overlap or are not coalesced"
                )
            if int(ends[-1]) > limit:
                raise CorruptFileError(
                    "roaring run container exceeds the bitmap length"
                )
            return (RUN, (starts, lengths)), offset + size
        raise CorruptFileError(f"unknown roaring container kind {kind}")

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        if self._nbits != other._nbits:
            return False
        if self._keys != other._keys:
            return False
        for a, b in zip(self._containers, other._containers):
            if a[0] == b[0]:
                if a[0] == RUN:
                    if not (
                        np.array_equal(a[1][0], b[1][0])
                        and np.array_equal(a[1][1], b[1][1])
                    ):
                        return False
                elif not np.array_equal(a[1], b[1]):
                    return False
            elif not np.array_equal(_container_indices(a), _container_indices(b)):
                return False
        return True

    def __hash__(self):  # pragma: no cover - parity with BitVector
        raise TypeError("RoaringBitmap is unhashable")

    def __repr__(self) -> str:
        kinds = [kind for _, kind in self.container_kinds()]
        summary = {name: kinds.count(name) for name in ("array", "bitmap", "run")}
        parts = ", ".join(f"{v} {k}" for k, v in summary.items() if v)
        return (
            f"RoaringBitmap({self._nbits} bits, {self.count()} set, "
            f"containers: {parts or 'none'})"
        )


# ----------------------------------------------------------------------
# k-way kernels
# ----------------------------------------------------------------------


def roaring_or_many(vectors: Sequence[RoaringBitmap]) -> RoaringBitmap:
    """OR k bitmaps in one pass over each chunk's containers.

    Equivalent to folding ``|`` pairwise, but each chunk accumulates all
    its operands at once: sparse chunks concatenate their arrays and
    deduplicate once, dense chunks fold into a single 1024-word buffer —
    no intermediate containers are sealed and re-opened per operand.
    """
    if not vectors:
        raise ValueError("roaring_or_many needs at least one vector")
    first = vectors[0]
    for other in vectors[1:]:
        first._check(other)
    if len(vectors) == 1:
        return first.copy()
    per_chunk: dict[int, list] = {}
    for vector in vectors:
        for key, container in zip(vector._keys, vector._containers):
            per_chunk.setdefault(key, []).append(container)
    keys: list[int] = []
    containers: list = []
    for key in sorted(per_chunk):
        group = per_chunk[key]
        if len(group) == 1:
            merged = group[0]
        elif all(kind == ARRAY for kind, _ in group):
            merged = _seal_array(
                np.unique(np.concatenate([data for _, data in group])).astype(
                    np.int64
                )
            )
        else:
            words = _container_words(group[0])
            for container in group[1:]:
                if container[0] == BITMAP:
                    words |= container[1]
                else:
                    words |= _container_words(container)
            merged = _seal_words(words)
        if merged is not None:
            keys.append(key)
            containers.append(merged)
    return RoaringBitmap(first.nbits, keys, containers)


def roaring_and_many(vectors: Sequence[RoaringBitmap]) -> RoaringBitmap:
    """AND k bitmaps chunk by chunk, cheapest containers first.

    Chunks missing from any operand vanish without touching the others;
    surviving chunks fold in ascending-cardinality order so the running
    intersection shrinks as fast as possible and can short-circuit to
    empty.
    """
    if not vectors:
        raise ValueError("roaring_and_many needs at least one vector")
    first = vectors[0]
    for other in vectors[1:]:
        first._check(other)
    if len(vectors) == 1:
        return first.copy()
    common = set(vectors[0]._keys)
    for vector in vectors[1:]:
        common &= set(vector._keys)
        if not common:
            return RoaringBitmap(first.nbits, [], [])
    maps = [dict(zip(v._keys, v._containers)) for v in vectors]
    keys: list[int] = []
    containers: list = []
    for key in sorted(common):
        group = sorted(
            (m[key] for m in maps), key=_container_count
        )
        acc = group[0]
        for container in group[1:]:
            acc = _container_and(acc, container)
            if acc is None:
                break
        if acc is not None:
            keys.append(key)
            containers.append(acc)
    return RoaringBitmap(first.nbits, keys, containers)


def roaring_threshold_many(
    vectors: Sequence[RoaringBitmap], k: int
) -> RoaringBitmap:
    """k-of-N threshold: bit ``i`` set iff at least ``k`` operands set it.

    ``k == 1`` is the k-way OR and ``k == N`` the k-way AND; intermediate
    ``k`` is the symmetric threshold neither fold expresses.  Works
    container-wise (Kaser & Lemire's per-chunk counter approach): each
    chunk accumulates a per-position occurrence counter fed directly from
    whatever container shapes its operands use — arrays bump their listed
    positions, run containers add a delta/cumsum staircase, bitmap
    containers unpack once — and chunks present in fewer than ``k``
    operands are skipped without touching their containers at all.

    ``k <= 0`` clamps to the all-ones bitmap and ``k > N`` to all-zeros.
    """
    if not vectors:
        raise ValueError("roaring_threshold_many needs at least one vector")
    first = vectors[0]
    for other in vectors[1:]:
        first._check(other)
    if k <= 0:
        return RoaringBitmap.ones(first.nbits)
    if k > len(vectors):
        return RoaringBitmap.zeros(first.nbits)
    if len(vectors) == 1:
        return first.copy()
    per_chunk: dict[int, list] = {}
    for vector in vectors:
        for key, container in zip(vector._keys, vector._containers):
            per_chunk.setdefault(key, []).append(container)
    keys: list[int] = []
    containers: list = []
    for key in sorted(per_chunk):
        group = per_chunk[key]
        if len(group) < k:
            continue  # fewer operands touch this chunk than the threshold
        if all(kind != BITMAP for kind, _ in group):
            # Run/array-only chunk: count coverage at run boundaries
            # instead of per position — O(total runs), never 65536-wide.
            merged = _threshold_boundary_merge(group, k)
        else:
            counts = np.zeros(CHUNK_SIZE, dtype=np.int32)
            for kind, data in group:
                if kind == ARRAY:
                    # Array positions are unique, so fancy-index += is exact.
                    counts[data.astype(np.int64)] += 1
                elif kind == BITMAP:
                    counts += np.unpackbits(
                        data.view(np.uint8), bitorder="little"
                    )
                else:
                    starts, lengths = data
                    delta = np.zeros(CHUNK_SIZE + 1, dtype=np.int32)
                    delta[starts] = 1
                    delta[starts + lengths] -= 1
                    counts += np.cumsum(delta[:CHUNK_SIZE])
            merged = _seal_words(
                np.packbits(counts >= k, bitorder="little").view(np.uint64)
            )
        if merged is not None:
            keys.append(key)
            containers.append(merged)
    return RoaringBitmap(first.nbits, keys, containers)


def _threshold_boundary_merge(group, k: int):
    """k-of-N over one chunk's run/array containers, at run granularity.

    Every operand contributes +1 at each interval start and -1 one past
    its end (array positions are length-1 intervals); sorting the
    boundary events and prefix-summing the deltas gives the coverage
    depth between consecutive boundaries, and the ``depth >= k`` spans
    are exactly the result's runs.  The whole chunk costs one sort of the
    event list — proportional to the operands' run counts, not to
    CHUNK_SIZE.
    """
    starts_parts = []
    ends_parts = []
    for kind, data in group:
        if kind == ARRAY:
            positions = data.astype(np.int64)
            starts_parts.append(positions)
            ends_parts.append(positions + 1)
        else:
            run_starts, run_lengths = data
            starts_parts.append(run_starts.astype(np.int64))
            ends_parts.append((run_starts + run_lengths).astype(np.int64))
    starts = np.concatenate(starts_parts)
    ends = np.concatenate(ends_parts)
    points = np.concatenate((starts, ends))
    deltas = np.concatenate(
        (
            np.ones(len(starts), dtype=np.int64),
            np.full(len(ends), -1, dtype=np.int64),
        )
    )
    order = np.argsort(points, kind="stable")
    points = points[order]
    coverage = np.cumsum(deltas[order])
    # Keep the last event at each distinct boundary: its running sum is
    # the coverage depth on [points[i], points[i + 1]).
    last = np.empty(len(points), dtype=bool)
    last[:-1] = points[1:] != points[:-1]
    last[-1] = True
    points = points[last]
    coverage = coverage[last]
    above = coverage >= k
    # Coverage always falls back to zero at the final boundary (every +1
    # has its -1), so each rising edge pairs with a later falling edge.
    previous = np.empty(len(above), dtype=bool)
    previous[0] = False
    previous[1:] = above[:-1]
    run_starts = points[above & ~previous]
    run_ends = points[previous & ~above]
    return _seal_runs(run_starts, run_ends - run_starts)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _num_chunks(nbits: int) -> int:
    return (nbits + CHUNK_SIZE - 1) // CHUNK_SIZE


def _chunk_limit(nbits: int, key: int) -> int:
    """Valid positions in chunk ``key`` of an ``nbits``-bit bitmap."""
    return min(CHUNK_SIZE, nbits - key * CHUNK_SIZE)
