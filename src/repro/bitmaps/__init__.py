"""Bitmap substrate: packed bitvectors and bitmap compression codecs.

This subpackage provides the low-level machinery the paper's indexes are
built on:

- :class:`repro.bitmaps.bitvector.BitVector` — a packed, word-aligned bit
  vector with the four logical operations the paper relies on
  (AND, OR, XOR, NOT) plus population count and (de)serialization.
- :mod:`repro.bitmaps.compression` — pluggable bitmap codecs: the
  zlib/deflate codec used in the paper's Section 9 experiments, a
  from-scratch Word-Aligned Hybrid (WAH) run-length codec, a Roaring
  container codec, and an identity codec.
- :class:`repro.bitmaps.roaring.RoaringBitmap` — an adaptive
  array/bitmap/run container bitmap with compressed-domain algebra, the
  third backend behind the ``Bitmap`` seam.
"""

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.compression import (
    Codec,
    NullCodec,
    RoaringCodec,
    WahCodec,
    ZlibCodec,
    get_codec,
    register_codec,
)
from repro.bitmaps.roaring import RoaringBitmap, roaring_and_many, roaring_or_many

__all__ = [
    "BitVector",
    "Codec",
    "NullCodec",
    "RoaringBitmap",
    "RoaringCodec",
    "WahBitVector",
    "WahCodec",
    "ZlibCodec",
    "get_codec",
    "register_codec",
    "roaring_and_many",
    "roaring_or_many",
]
