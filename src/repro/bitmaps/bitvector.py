"""Packed bitvectors built on 64-bit words.

A :class:`BitVector` is the in-memory representation of one bitmap of a
bitmap index: bit ``i`` corresponds to record (RID) ``i`` of the indexed
relation.  The class supports exactly the operations the paper's evaluation
algorithms need — logical AND, OR, XOR, and NOT — plus population count,
set-bit enumeration, and byte-level (de)serialization for the storage layer.

Bits are stored little-endian within each 64-bit word: bit ``i`` lives in
word ``i // 64`` at position ``i % 64``.  Unused tail bits in the final word
are always kept at zero so that :meth:`BitVector.count` and equality
comparisons never see garbage.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import LengthMismatchError

_WORD_BITS = 64

# ``np.bitwise_count`` exists from numpy 2.0; fall back to unpackbits-based
# popcount on older versions.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _words_needed(nbits: int) -> int:
    """Number of 64-bit words required to hold ``nbits`` bits."""
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


class BitVector:
    """A fixed-length vector of bits packed into 64-bit words.

    Instances are mutable through :meth:`set`, but all logical operators
    return new vectors, which keeps evaluation-algorithm code free of
    aliasing surprises.

    Parameters
    ----------
    nbits:
        Length of the vector (number of records in the indexed relation).
    words:
        Optional backing array of ``uint64`` words.  When omitted the
        vector starts out all-zero.  The array is used as-is (not copied),
        so callers handing one in must not alias it elsewhere.
    """

    __slots__ = ("_nbits", "_words")

    def __init__(self, nbits: int, words: np.ndarray | None = None):
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        self._nbits = nbits
        if words is None:
            self._words = np.zeros(_words_needed(nbits), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.ndim != 1:
                raise ValueError("words must be a 1-D uint64 array")
            if len(words) != _words_needed(nbits):
                raise ValueError(
                    f"words has {len(words)} entries; "
                    f"{_words_needed(nbits)} needed for {nbits} bits"
                )
            self._words = words
            self._mask_tail()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "BitVector":
        """An all-zero vector of length ``nbits``."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "BitVector":
        """An all-one vector of length ``nbits``."""
        words = np.full(_words_needed(nbits), np.uint64(0xFFFFFFFFFFFFFFFF))
        return cls(nbits, words)

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "BitVector":
        """A vector with exactly the bits in ``indices`` set.

        Indices outside ``[0, nbits)`` raise ``IndexError``.
        """
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        vec = cls(nbits)
        if idx.size == 0:
            return vec
        if idx.min() < 0 or idx.max() >= nbits:
            raise IndexError("bit index out of range")
        bools = np.zeros(nbits, dtype=bool)
        bools[idx] = True
        return cls.from_bools(bools)

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "BitVector":
        """Build a vector from a boolean numpy array (bit ``i`` = ``bools[i]``)."""
        bools = np.asarray(bools, dtype=bool)
        nbits = len(bools)
        nwords = _words_needed(nbits)
        packed = np.packbits(bools, bitorder="little")
        buf = np.zeros(nwords * 8, dtype=np.uint8)
        buf[: len(packed)] = packed
        return cls(nbits, buf.view(np.uint64))

    @classmethod
    def from_words(cls, words: np.ndarray, nbits: int) -> "BitVector":
        """Wrap an existing little-endian ``uint64`` word buffer.

        The zero-copy deserialization path for word-aligned storage (the
        persistent index store mmaps a file region and hands the view
        straight in).  The buffer may be read-only **provided its unused
        tail bits are already zero** — the serializer guarantees that; a
        read-only buffer with garbage tail bits raises ``ValueError``
        rather than being silently copied or mutated.
        """
        if words.dtype != np.uint64 or words.ndim != 1:
            raise ValueError("words must be a 1-D uint64 array")
        if len(words) != _words_needed(nbits):
            raise ValueError(
                f"words has {len(words)} entries; "
                f"{_words_needed(nbits)} needed for {nbits} bits"
            )
        if words.flags.writeable:
            return cls(nbits, words)
        tail = nbits % _WORD_BITS
        if nbits and tail and len(words):
            keep = np.uint64((1 << tail) - 1)
            if words[-1] & ~keep:
                raise ValueError(
                    "read-only word buffer has nonzero unused tail bits"
                )
        vector = cls.__new__(cls)
        vector._nbits = nbits
        vector._words = words
        return vector

    def to_word_bytes(self) -> bytes:
        """Serialize to the full padded word buffer (``8 * nwords`` bytes).

        Unlike :meth:`to_bytes` the tail padding is kept, so the payload
        can be reconstructed zero-copy with :meth:`from_words` /
        ``np.frombuffer``.
        """
        return self._words.astype("<u8", copy=False).tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int) -> "BitVector":
        """Inverse of :meth:`to_bytes`.

        ``data`` must contain exactly ``ceil(nbits / 8)`` bytes.
        """
        expected = (nbits + 7) // 8
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes for {nbits} bits, got {len(data)}")
        nwords = _words_needed(nbits)
        buf = np.zeros(nwords * 8, dtype=np.uint8)
        buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return cls(nbits, buf.view(np.uint64))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    @property
    def nbits(self) -> int:
        """Length of the vector in bits."""
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes (``ceil(nbits / 8)``)."""
        return (self._nbits + 7) // 8

    @property
    def words(self) -> np.ndarray:
        """The backing ``uint64`` word array (not a copy; tail bits zero).

        Unlike :meth:`to_bytes` this is word-aligned — ``len(words) * 8``
        bytes — which is what shared-memory publication needs so attached
        processes can reconstruct zero-copy views at 8-byte offsets.
        """
        return self._words

    def get(self, i: int) -> bool:
        """Return bit ``i``."""
        self._check_index(i)
        word = int(self._words[i // _WORD_BITS])
        return bool((word >> (i % _WORD_BITS)) & 1)

    def set(self, i: int, value: bool = True) -> None:
        """Set bit ``i`` to ``value`` (in place)."""
        self._check_index(i)
        mask = np.uint64(1 << (i % _WORD_BITS))
        if value:
            self._words[i // _WORD_BITS] |= mask
        else:
            self._words[i // _WORD_BITS] &= ~mask

    def __getitem__(self, i: int) -> bool:
        return self.get(i)

    def count(self) -> int:
        """Population count: the number of set bits (the "foundset" size)."""
        if _HAS_BITWISE_COUNT:
            return int(np.bitwise_count(self._words).sum())
        as_bytes = self._words.view(np.uint8)
        return int(np.unpackbits(as_bytes).sum())

    def and_count(self, other: "BitVector") -> int:
        """``(self & other).count()`` without allocating the AND."""
        self._check_compatible(other)
        words = self._words & other._words
        if _HAS_BITWISE_COUNT:
            return int(np.bitwise_count(words).sum())
        return int(np.unpackbits(words.view(np.uint8)).sum())

    def any(self) -> bool:
        """``True`` if at least one bit is set."""
        return bool(self._words.any())

    def all(self) -> bool:
        """``True`` if every bit in ``[0, nbits)`` is set."""
        return self.count() == self._nbits

    def to_bools(self) -> np.ndarray:
        """The vector as a boolean numpy array of length ``nbits``."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._nbits].astype(bool)

    def indices(self) -> np.ndarray:
        """Sorted array of set-bit positions (the RID list of the bitmap)."""
        return np.nonzero(self.to_bools())[0]

    def iter_indices(self) -> Iterator[int]:
        """Iterate over set-bit positions in increasing order."""
        return iter(self.indices().tolist())

    def to_bytes(self) -> bytes:
        """Serialize to ``ceil(nbits / 8)`` little-endian-bit bytes."""
        return self._words.view(np.uint8)[: self.nbytes].tobytes()

    def copy(self) -> "BitVector":
        """An independent copy of this vector."""
        return BitVector(self._nbits, self._words.copy())

    # ------------------------------------------------------------------
    # Logical operations (the paper's AND / OR / XOR / NOT)
    # ------------------------------------------------------------------

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words | other._words)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words ^ other._words)

    def __invert__(self) -> "BitVector":
        result = BitVector(self._nbits, ~self._words)
        return result

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self AND NOT other`` as a single operation."""
        self._check_compatible(other)
        return BitVector(self._nbits, self._words & ~other._words)

    @classmethod
    def threshold_many(
        cls, vectors: "Iterable[BitVector]", k: int
    ) -> "BitVector":
        """k-of-N threshold: bit ``i`` set iff >= ``k`` operands set it.

        ``k == 1`` is the N-way OR and ``k == N`` the N-way AND; ``k <= 0``
        clamps to all-ones and ``k > N`` to all-zeros.

        Runs entirely on packed words with bit-sliced ripple counters:
        slice ``j`` holds bit ``j`` of each position's occurrence count,
        and each operand is added with one AND/XOR carry chain — never
        unpacking a single bit.  The final ``count >= k`` comparison is a
        word-wise magnitude comparator against the constant ``k``, so the
        whole kernel is ``O(N log N)`` word passes instead of the 8x
        memory blow-up of unpack-and-sum.
        """
        vectors = list(vectors)
        first = vectors[0]
        for other in vectors[1:]:
            first._check_compatible(other)
        if k <= 0:
            return cls.ones(first._nbits)
        if k > len(vectors):
            return cls.zeros(first._nbits)
        slices = [
            np.zeros_like(first._words)
            for _ in range(len(vectors).bit_length())
        ]
        for vector in vectors:
            carry = vector._words
            for index, current in enumerate(slices):
                slices[index] = current ^ carry
                carry = current & carry
        # Word-wise (count >= k): walk the counter slices from the most
        # significant down, tracking positions already strictly greater
        # (gt) and positions still tied with k's bits (eq).
        gt = np.zeros_like(first._words)
        eq = np.full_like(first._words, np.uint64(0xFFFFFFFFFFFFFFFF))
        for index in reversed(range(len(slices))):
            current = slices[index]
            if (k >> index) & 1:
                eq = eq & current
            else:
                gt = gt | (eq & current)
                eq = eq & ~current
        # Tail bits beyond nbits stay clear: every operand's tail is zero,
        # so their counter reads zero and zero < k for any valid k.
        return cls(first._nbits, gt | eq)

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("BitVector is mutable and therefore unhashable")

    def __repr__(self) -> str:
        if self._nbits <= 64:
            bits = "".join("1" if self.get(i) else "0" for i in range(self._nbits))
            return f"BitVector({self._nbits}, bits={bits!r})"
        return f"BitVector({self._nbits}, count={self.count()})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._nbits:
            raise IndexError(f"bit index {i} out of range for {self._nbits}-bit vector")

    def _check_compatible(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if self._nbits != other._nbits:
            raise LengthMismatchError(
                f"cannot combine vectors of {self._nbits} and {other._nbits} bits"
            )

    def _mask_tail(self) -> None:
        """Force unused bits of the final word to zero."""
        if self._nbits == 0:
            return
        tail = self._nbits % _WORD_BITS
        if tail and len(self._words):
            keep = np.uint64((1 << tail) - 1)
            self._words[-1] &= keep
