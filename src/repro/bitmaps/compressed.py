"""Compressed bitvectors: logical algebra without decompression.

:class:`WahBitVector` keeps a bitmap in WAH-encoded form and implements
the same logical operators as :class:`~repro.bitmaps.bitvector.BitVector`
by operating run-by-run on the compressed payloads
(:func:`repro.bitmaps.wah.wah_and` and friends).  On run-structured
bitmaps this makes an AND cost proportional to the number of *runs*
rather than the number of bits — the property that made word-aligned
codecs the standard for bitmap indexes after the paper.

The class mirrors enough of the :class:`BitVector` surface — ``zeros`` /
``ones`` constructors, ``count``, ``indices``, ``to_bools``, ``copy``,
``nbytes`` — that the evaluation algorithms of
:mod:`repro.core.evaluation` run unmodified over either representation;
only the final ``indices()``/``to_bools()`` materialization decodes.
The two vector types interconvert losslessly; the
``ablation_compressed_ops`` experiment and ``bench_compressed_path``
benchmark quantify when staying compressed wins.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.wah import (
    wah_and,
    wah_and_many,
    wah_and_popcount,
    wah_decode,
    wah_encode,
    wah_not,
    wah_ones,
    wah_or,
    wah_or_many,
    wah_popcount,
    wah_threshold_many,
    wah_word_count,
    wah_xor,
    wah_zeros,
)
from repro.errors import LengthMismatchError


class WahBitVector:
    """A WAH-compressed bitmap supporting compressed-domain algebra."""

    __slots__ = ("_blob", "_nbits")

    def __init__(self, blob: bytes, nbits: int):
        self._blob = blob
        self._nbits = nbits

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "WahBitVector":
        """The all-zero compressed vector of ``nbits`` bits (one fill run)."""
        return cls(wah_zeros(nbits), nbits)

    @classmethod
    def ones(cls, nbits: int) -> "WahBitVector":
        """The all-one compressed vector of ``nbits`` bits (at most 3 runs)."""
        return cls(wah_ones(nbits), nbits)

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "WahBitVector":
        """Compress an uncompressed vector."""
        return cls(wah_encode(vector.to_bytes()), vector.nbits)

    def to_bitvector(self) -> BitVector:
        """Materialize back to the uncompressed form."""
        return BitVector.from_bytes(wah_decode(self._blob), self._nbits)

    def copy(self) -> "WahBitVector":
        """An independent handle (payloads are immutable bytes)."""
        return WahBitVector(self._blob, self._nbits)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nbits(self) -> int:
        return self._nbits

    @property
    def blob(self) -> bytes:
        """The raw WAH payload (header + words), as stored on disk."""
        return self._blob

    @property
    def compressed_bytes(self) -> int:
        """Size of the compressed payload."""
        return len(self._blob)

    @property
    def nbytes(self) -> int:
        """In-memory footprint in bytes (the compressed payload size).

        Mirrors :attr:`BitVector.nbytes` so byte-budget caches can size
        entries of either representation uniformly.
        """
        return len(self._blob)

    @property
    def num_words(self) -> int:
        """32-bit WAH words in the payload (the run count bound)."""
        return wah_word_count(self._blob)

    def count(self) -> int:
        """Population count, computed on the compressed form."""
        return wah_popcount(self._blob)

    def and_count(self, other: "WahBitVector") -> int:
        """``(self & other).count()`` without materializing the AND.

        The aggregate-pushdown primitive: one fused run merge
        (:func:`repro.bitmaps.wah.wah_and_popcount`) — no result payload
        is encoded, so intersect-and-count stays cheap even when the
        intersection itself is incompressible.
        """
        self._check(other)
        return wah_and_popcount(self._blob, other._blob)

    def any(self) -> bool:
        return self.count() > 0

    def to_bools(self) -> np.ndarray:
        """Decode to a boolean numpy array of length ``nbits``."""
        return self.to_bitvector().to_bools()

    def indices(self) -> np.ndarray:
        """Sorted array of set-bit positions (decodes once)."""
        return self.to_bitvector().indices()

    # ------------------------------------------------------------------
    # Compressed-domain algebra
    # ------------------------------------------------------------------

    def _check(self, other: "WahBitVector") -> None:
        if not isinstance(other, WahBitVector):
            raise TypeError(
                f"expected WahBitVector, got {type(other).__name__}"
            )
        if self._nbits != other._nbits:
            raise LengthMismatchError(
                f"cannot combine vectors of {self._nbits} and "
                f"{other._nbits} bits"
            )

    def __and__(self, other: "WahBitVector") -> "WahBitVector":
        self._check(other)
        return WahBitVector(wah_and(self._blob, other._blob), self._nbits)

    def __or__(self, other: "WahBitVector") -> "WahBitVector":
        self._check(other)
        return WahBitVector(wah_or(self._blob, other._blob), self._nbits)

    def __xor__(self, other: "WahBitVector") -> "WahBitVector":
        self._check(other)
        return WahBitVector(wah_xor(self._blob, other._blob), self._nbits)

    def __invert__(self) -> "WahBitVector":
        return WahBitVector(wah_not(self._blob, self._nbits), self._nbits)

    @classmethod
    def or_many(cls, vectors: Sequence["WahBitVector"]) -> "WahBitVector":
        """OR k vectors in one multi-way run merge (k-way aggregation).

        Equivalent to folding ``|`` pairwise, but each payload is parsed
        once and the merged run boundaries walked once, so wide ORs (the
        ``digit < v`` side of equality-encoded evaluation) cost one pass
        over the total runs instead of k - 1 intermediate payloads.
        """
        first = vectors[0]
        for other in vectors[1:]:
            first._check(other)
        return cls(wah_or_many([v._blob for v in vectors]), first._nbits)

    @classmethod
    def and_many(cls, vectors: Sequence["WahBitVector"]) -> "WahBitVector":
        """AND k vectors in one multi-way run merge (see :meth:`or_many`)."""
        first = vectors[0]
        for other in vectors[1:]:
            first._check(other)
        return cls(wah_and_many([v._blob for v in vectors]), first._nbits)

    @classmethod
    def threshold_many(
        cls, vectors: Sequence["WahBitVector"], k: int
    ) -> "WahBitVector":
        """k-of-N threshold in one multi-way run merge.

        Bit ``i`` of the result is set iff at least ``k`` operands have
        bit ``i`` set; ``k <= 0`` clamps to all-ones and ``k > N`` to
        all-zeros over the true bit length.  Runs entirely in the
        compressed domain (:func:`repro.bitmaps.wah.wah_threshold_many`).
        """
        first = vectors[0]
        for other in vectors[1:]:
            first._check(other)
        if k <= 0:
            return cls.ones(first._nbits)
        if k > len(vectors):
            return cls.zeros(first._nbits)
        return cls(
            wah_threshold_many([v._blob for v in vectors], k), first._nbits
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitVector):
            return NotImplemented
        return self._nbits == other._nbits and (
            self._blob == other._blob
            or self.to_bitvector() == other.to_bitvector()
        )

    def __hash__(self):  # pragma: no cover - parity with BitVector
        raise TypeError("WahBitVector is unhashable")

    def __repr__(self) -> str:
        return (
            f"WahBitVector({self._nbits} bits, "
            f"{self.compressed_bytes} compressed bytes, "
            f"{self.num_words} words)"
        )
