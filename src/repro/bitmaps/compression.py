"""Pluggable bitmap codecs.

The paper's Section 9 compresses bitmap files with zlib's deflate.  The
storage layer treats compression as a strategy object so experiments can
swap codecs; three are provided:

- :class:`ZlibCodec` — the paper's choice (stdlib ``zlib``, deflate).
- :class:`WahCodec` — a from-scratch Word-Aligned Hybrid codec
  (:mod:`repro.bitmaps.wah`), the bitmap-specific alternative used as an
  ablation.
- :class:`RoaringCodec` — the adaptive array/bitmap/run container codec
  (:mod:`repro.bitmaps.roaring`), strongest on uniform-random data where
  run-length codecs degenerate.
- :class:`NullCodec` — identity, used for the uncompressed BS/CS/IS
  storage schemes.

Codecs are self-describing: ``decode(encode(data)) == data`` without any
out-of-band length bookkeeping.
"""

from __future__ import annotations

import zlib
from typing import Protocol

from repro.errors import CorruptFileError
from repro.bitmaps.wah import wah_decode, wah_encode
from repro.bitmaps.roaring import RoaringBitmap


class Codec(Protocol):
    """Protocol all bitmap codecs implement."""

    name: str

    def encode(self, data: bytes) -> bytes:
        """Compress ``data``."""
        ...

    def decode(self, blob: bytes) -> bytes:
        """Decompress ``blob``; must invert :meth:`encode`."""
        ...


class NullCodec:
    """Identity codec (uncompressed storage)."""

    name = "none"

    def encode(self, data: bytes) -> bytes:
        return data

    def decode(self, blob: bytes) -> bytes:
        return blob


class ZlibCodec:
    """Deflate codec, matching the paper's use of the zlib library.

    Parameters
    ----------
    level:
        zlib compression level 1–9 (default 6, the zlib default, which is
        what the paper's experiments used).
    """

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be in 1..9, got {level}")
        self.level = level
        self.name = "zlib" if level == 6 else f"zlib{level}"

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, blob: bytes) -> bytes:
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise CorruptFileError(f"zlib payload corrupt: {exc}") from exc


class WahCodec:
    """Word-Aligned Hybrid run-length codec (see :mod:`repro.bitmaps.wah`)."""

    name = "wah"

    def encode(self, data: bytes) -> bytes:
        return wah_encode(data)

    def decode(self, blob: bytes) -> bytes:
        return wah_decode(blob)


class RoaringCodec:
    """Roaring container codec (see :mod:`repro.bitmaps.roaring`).

    The byte payload is interpreted as a packed bitmap (bit ``i`` of the
    input is row ``i``), partitioned into 2^16-row chunks and stored in
    adaptive array/bitmap/run containers.
    """

    name = "roaring"

    def encode(self, data: bytes) -> bytes:
        from repro.bitmaps.bitvector import BitVector

        vector = BitVector.from_bytes(data, nbits=len(data) * 8)
        return RoaringBitmap.from_bitvector(vector).serialize()

    def decode(self, blob: bytes) -> bytes:
        return RoaringBitmap.deserialize(blob).to_bitvector().to_bytes()


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    """Register ``codec`` under ``codec.name`` for :func:`get_codec` lookup."""
    _REGISTRY[codec.name] = codec


def get_codec(name: str | Codec | None) -> Codec:
    """Resolve a codec by name.

    Accepts an existing codec instance (returned unchanged), a registered
    name, or ``None`` (the identity codec).
    """
    if name is None:
        return _REGISTRY["none"]
    if not isinstance(name, str):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown codec {name!r}; known codecs: {known}") from None


register_codec(NullCodec())
register_codec(ZlibCodec())
register_codec(WahCodec())
register_codec(RoaringCodec())
