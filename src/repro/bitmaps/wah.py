"""A from-scratch Word-Aligned Hybrid (WAH) run-length bitmap codec.

The paper compresses bitmaps with zlib (deflate).  WAH is the canonical
*bitmap-specific* compression scheme from the follow-on literature (Wu,
Otoo & Shoshani); we implement it here as an ablation point so the Section 9
experiments can compare a general-purpose codec against a bitmap-aware one.

Format
------
The encoded stream is a sequence of little-endian ``uint32`` words following
an 8-byte little-endian header that records the original payload length in
bytes:

- *literal word*: most-significant bit 0; the low 31 bits are a verbatim
  group of 31 bits from the input (input bit ``k`` of the group is payload
  bit ``k``).
- *fill word*: most-significant bit 1; bit 30 is the fill value; the low
  30 bits count how many consecutive 31-bit groups consist entirely of the
  fill value.

The input bitstream is read little-endian within each byte and padded with
zero bits up to a multiple of 31.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptFileError

_GROUP_BITS = 31
_LITERAL_MASK = (1 << _GROUP_BITS) - 1
_FILL_FLAG = 1 << 31
_FILL_VALUE_FLAG = 1 << 30
_MAX_RUN = (1 << 30) - 1
_HEADER = struct.Struct("<Q")

_POWERS = (np.uint32(1) << np.arange(_GROUP_BITS, dtype=np.uint32)).astype(np.uint32)


def _bits_from_bytes(data: bytes) -> np.ndarray:
    """Unpack ``data`` into a little-endian-bit array of 0/1 ``uint8``."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")


def _groups_from_bits(bits: np.ndarray) -> np.ndarray:
    """Chunk a 0/1 bit array into ``uint32`` groups of 31 bits."""
    ngroups = (len(bits) + _GROUP_BITS - 1) // _GROUP_BITS
    padded = np.zeros(ngroups * _GROUP_BITS, dtype=np.uint32)
    padded[: len(bits)] = bits
    return (padded.reshape(ngroups, _GROUP_BITS) * _POWERS).sum(
        axis=1, dtype=np.uint64
    ).astype(np.uint32)


def wah_encode(data: bytes) -> bytes:
    """Compress ``data`` into the WAH format described in the module docs.

    Vectorized: groups are classified once, run boundaries found with one
    diff, and literal stretches are emitted as array slices, so encoding
    cost scales with the number of *runs* plus O(n) numpy passes rather
    than a Python-level loop over every word.
    """
    bits = _bits_from_bytes(data)
    groups = _groups_from_bits(bits)
    n = len(groups)
    if n == 0:
        return _HEADER.pack(len(data))

    # 0 = literal, 1 = zero fill, 2 = one fill.
    classes = np.zeros(n, dtype=np.uint8)
    classes[groups == 0] = 1
    classes[groups == _LITERAL_MASK] = 2
    boundaries = np.flatnonzero(np.diff(classes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))

    chunks: list[np.ndarray] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        cls = classes[start]
        if cls == 0:
            chunks.append(groups[start:end])
        else:
            run = end - start
            fill_word = _FILL_FLAG | (_FILL_VALUE_FLAG if cls == 2 else 0)
            full, rest = divmod(run, _MAX_RUN)
            words = np.full(full + (1 if rest else 0),
                            fill_word | _MAX_RUN, dtype=np.uint32)
            if rest:
                words[-1] = fill_word | rest
            chunks.append(words)
    body = np.concatenate(chunks).astype(np.uint32).tobytes()
    return _HEADER.pack(len(data)) + body


def wah_decode(blob: bytes) -> bytes:
    """Inverse of :func:`wah_encode`."""
    if len(blob) < _HEADER.size:
        raise CorruptFileError("WAH payload shorter than its header")
    (orig_len,) = _HEADER.unpack_from(blob)
    body = blob[_HEADER.size :]
    if len(body) % 4:
        raise CorruptFileError("WAH body is not word-aligned")
    words = np.frombuffer(body, dtype=np.uint32)

    is_fill = (words & np.uint32(_FILL_FLAG)) != 0
    lengths = np.where(is_fill, words & np.uint32(_MAX_RUN), 1).astype(np.int64)
    fill_values = np.where(
        (words & np.uint32(_FILL_VALUE_FLAG)) != 0,
        np.uint32(_LITERAL_MASK),
        np.uint32(0),
    )
    values = np.where(is_fill, fill_values, words & np.uint32(_LITERAL_MASK))
    groups = np.repeat(values, lengths) if len(words) else np.zeros(0, np.uint32)

    total_bits = len(groups) * _GROUP_BITS
    if total_bits < orig_len * 8:
        raise CorruptFileError("WAH payload decodes to fewer bits than declared")
    bits = (
        (groups[:, None] >> np.arange(_GROUP_BITS, dtype=np.uint32)) & np.uint32(1)
    ).astype(np.uint8)
    flat = bits.reshape(-1)[: orig_len * 8]
    return np.packbits(flat, bitorder="little").tobytes()


def wah_word_count(blob: bytes) -> int:
    """Number of 32-bit words in an encoded payload (excluding the header)."""
    return (len(blob) - _HEADER.size) // 4


# ----------------------------------------------------------------------
# Compressed-domain logical operations
# ----------------------------------------------------------------------
#
# The defining advantage of word-aligned codecs over deflate: AND/OR/NOT
# and popcount run directly on the compressed form, run-by-run, without
# materializing the bitmap.  Cost is proportional to the number of runs,
# not the number of bits.


class _RunReader:
    """Streams an encoded payload as (is_fill, value, groups) runs."""

    __slots__ = ("_words", "_pos", "is_fill", "value", "remaining", "orig_len")

    def __init__(self, blob: bytes):
        if len(blob) < _HEADER.size:
            raise CorruptFileError("WAH payload shorter than its header")
        (self.orig_len,) = _HEADER.unpack_from(blob)
        body = blob[_HEADER.size :]
        if len(body) % 4:
            raise CorruptFileError("WAH body is not word-aligned")
        self._words = np.frombuffer(body, dtype=np.uint32).tolist()
        self._pos = 0
        self.is_fill = False
        self.value = 0
        self.remaining = 0
        self._advance()

    def _advance(self) -> None:
        if self._pos >= len(self._words):
            self.remaining = 0
            return
        word = self._words[self._pos]
        self._pos += 1
        if word & _FILL_FLAG:
            self.is_fill = True
            self.value = _LITERAL_MASK if word & _FILL_VALUE_FLAG else 0
            self.remaining = word & _MAX_RUN
        else:
            self.is_fill = False
            self.value = word & _LITERAL_MASK
            self.remaining = 1

    def consume(self, groups: int) -> None:
        """Advance past ``groups`` groups of the current run."""
        self.remaining -= groups
        if self.remaining == 0:
            self._advance()

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0


class _RunWriter:
    """Builds an encoded payload, merging adjacent compatible runs."""

    __slots__ = ("_words", "_fill_value", "_fill_run")

    def __init__(self):
        self._words: list[int] = []
        self._fill_value = -1
        self._fill_run = 0

    def _flush_fill(self) -> None:
        run = self._fill_run
        fill_word = _FILL_FLAG | (
            _FILL_VALUE_FLAG if self._fill_value == _LITERAL_MASK else 0
        )
        while run > 0:
            chunk = min(run, _MAX_RUN)
            self._words.append(fill_word | chunk)
            run -= chunk
        self._fill_run = 0
        self._fill_value = -1

    def emit(self, value: int, groups: int = 1) -> None:
        """Append ``groups`` groups of 31-bit ``value``."""
        if value == 0 or value == _LITERAL_MASK:
            if self._fill_value != value and self._fill_run:
                self._flush_fill()
            self._fill_value = value
            self._fill_run += groups
            return
        if self._fill_run:
            self._flush_fill()
        self._words.extend([value] * groups)

    def payload(self, orig_len: int) -> bytes:
        if self._fill_run:
            self._flush_fill()
        body = np.asarray(self._words, dtype=np.uint32).tobytes()
        return _HEADER.pack(orig_len) + body


def _binary_op(a: bytes, b: bytes, op) -> bytes:
    reader_a = _RunReader(a)
    reader_b = _RunReader(b)
    if reader_a.orig_len != reader_b.orig_len:
        raise CorruptFileError(
            f"compressed operands differ in length: "
            f"{reader_a.orig_len} vs {reader_b.orig_len} bytes"
        )
    writer = _RunWriter()
    while not reader_a.exhausted and not reader_b.exhausted:
        if reader_a.is_fill and reader_b.is_fill:
            groups = min(reader_a.remaining, reader_b.remaining)
            writer.emit(op(reader_a.value, reader_b.value) & _LITERAL_MASK, groups)
        else:
            groups = 1
            writer.emit(op(reader_a.value, reader_b.value) & _LITERAL_MASK)
        reader_a.consume(groups)
        reader_b.consume(groups)
    if not reader_a.exhausted or not reader_b.exhausted:
        raise CorruptFileError("compressed operands differ in group count")
    return writer.payload(reader_a.orig_len)


def wah_and(a: bytes, b: bytes) -> bytes:
    """AND two encoded payloads without decompressing."""
    return _binary_op(a, b, lambda x, y: x & y)


def wah_or(a: bytes, b: bytes) -> bytes:
    """OR two encoded payloads without decompressing."""
    return _binary_op(a, b, lambda x, y: x | y)


def wah_xor(a: bytes, b: bytes) -> bytes:
    """XOR two encoded payloads without decompressing."""
    return _binary_op(a, b, lambda x, y: x ^ y)


def wah_not(blob: bytes, nbits: int | None = None) -> bytes:
    """Complement an encoded payload without decompressing.

    ``nbits`` (the true bit length) keeps bits beyond it at zero; without
    it, complementing is exact to byte granularity (bits past the final
    byte stay zero either way).
    """
    reader = _RunReader(blob)
    writer = _RunWriter()
    total_groups = 0
    while not reader.exhausted:
        if reader.is_fill:
            groups = reader.remaining
        else:
            groups = 1
        writer.emit((~reader.value) & _LITERAL_MASK, groups)
        total_groups += groups
        reader.consume(groups)
    complemented = writer.payload(reader.orig_len)
    # Mask padding back to zero: AND with the all-ones bitmap of the
    # true length (cheap: it is one or two runs).
    valid_bits = nbits if nbits is not None else reader.orig_len * 8
    mask = _ones_payload(reader.orig_len, valid_bits, total_groups)
    return wah_and(complemented, mask)


def _ones_payload(orig_len: int, valid_bits: int, total_groups: int) -> bytes:
    """An encoded payload with the first ``valid_bits`` bits set."""
    writer = _RunWriter()
    full, tail = divmod(valid_bits, _GROUP_BITS)
    if full:
        writer.emit(_LITERAL_MASK, min(full, total_groups))
    emitted = min(full, total_groups)
    if tail and emitted < total_groups:
        writer.emit((1 << tail) - 1)
        emitted += 1
    if emitted < total_groups:
        writer.emit(0, total_groups - emitted)
    return writer.payload(orig_len)


def wah_popcount(blob: bytes) -> int:
    """Set-bit count of an encoded payload, computed run-by-run."""
    reader = _RunReader(blob)
    total = 0
    while not reader.exhausted:
        if reader.is_fill:
            if reader.value:
                total += _GROUP_BITS * reader.remaining
            reader.consume(reader.remaining)
        else:
            total += int(reader.value).bit_count()
            reader.consume(1)
    return total
