"""A from-scratch Word-Aligned Hybrid (WAH) run-length bitmap codec.

The paper compresses bitmaps with zlib (deflate).  WAH is the canonical
*bitmap-specific* compression scheme from the follow-on literature (Wu,
Otoo & Shoshani); we implement it here as an ablation point so the Section 9
experiments can compare a general-purpose codec against a bitmap-aware one.

Format
------
The encoded stream is a sequence of little-endian ``uint32`` words following
an 8-byte little-endian header that records the original payload length in
bytes:

- *literal word*: most-significant bit 0; the low 31 bits are a verbatim
  group of 31 bits from the input (input bit ``k`` of the group is payload
  bit ``k``).
- *fill word*: most-significant bit 1; bit 30 is the fill value; the low
  30 bits count how many consecutive 31-bit groups consist entirely of the
  fill value.

The input bitstream is read little-endian within each byte and padded with
zero bits up to a multiple of 31.

A zero-length fill word (``0x80000000`` / ``0xC0000000``) contributes no
groups; the encoder never emits one, but every consumer here — the decoder,
the streaming :class:`_RunReader`, and the vectorized run-merge — accepts
and skips it, so all access paths agree on which payloads are valid.  A
body whose groups fall short of, or overrun, the 31-bit-padded declared
length is rejected with :class:`~repro.errors.CorruptFileError` in both
directions.

Compressed-domain algebra
-------------------------
AND/OR/XOR/NOT and popcount run directly on the compressed form, run by
run, without materializing the bitmap — the defining advantage of
word-aligned codecs over deflate.  The binary and k-way operations are
vectorized: each payload is parsed once into a run list ``(values,
lengths)``, the run boundaries of all operands are merged in one sorted
pass (the array form of Kaser & Lemire's heap-of-run-readers — the sorted
union of boundary positions is exactly the order in which a heap of
readers would surface them), the operator is applied to aligned run
values with one numpy expression, and the result run list is re-encoded
without ever expanding to individual bits.  Cost is proportional to the
total number of *runs* across the operands, not the number of rows.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptFileError

_GROUP_BITS = 31
_LITERAL_MASK = (1 << _GROUP_BITS) - 1
_FILL_FLAG = 1 << 31
_FILL_VALUE_FLAG = 1 << 30
_MAX_RUN = (1 << 30) - 1
_HEADER = struct.Struct("<Q")

_POWERS = (np.uint32(1) << np.arange(_GROUP_BITS, dtype=np.uint32)).astype(np.uint32)


def _bits_from_bytes(data: bytes) -> np.ndarray:
    """Unpack ``data`` into a little-endian-bit array of 0/1 ``uint8``."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")


def _groups_from_bits(bits: np.ndarray) -> np.ndarray:
    """Chunk a 0/1 bit array into ``uint32`` groups of 31 bits."""
    ngroups = (len(bits) + _GROUP_BITS - 1) // _GROUP_BITS
    padded = np.zeros(ngroups * _GROUP_BITS, dtype=np.uint32)
    padded[: len(bits)] = bits
    return (padded.reshape(ngroups, _GROUP_BITS) * _POWERS).sum(
        axis=1, dtype=np.uint64
    ).astype(np.uint32)


def _expected_groups(orig_len: int) -> int:
    """Number of 31-bit groups a payload of ``orig_len`` bytes decodes to."""
    return (orig_len * 8 + _GROUP_BITS - 1) // _GROUP_BITS


def wah_encode(data: bytes) -> bytes:
    """Compress ``data`` into the WAH format described in the module docs.

    Vectorized: groups are classified once, run boundaries found with one
    diff, and literal stretches are emitted as array slices, so encoding
    cost scales with the number of *runs* plus O(n) numpy passes rather
    than a Python-level loop over every word.
    """
    bits = _bits_from_bytes(data)
    groups = _groups_from_bits(bits)
    n = len(groups)
    if n == 0:
        return _HEADER.pack(len(data))

    # 0 = literal, 1 = zero fill, 2 = one fill.
    classes = np.zeros(n, dtype=np.uint8)
    classes[groups == 0] = 1
    classes[groups == _LITERAL_MASK] = 2
    boundaries = np.flatnonzero(np.diff(classes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))

    chunks: list[np.ndarray] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        cls = classes[start]
        if cls == 0:
            chunks.append(groups[start:end])
        else:
            run = end - start
            fill_word = _FILL_FLAG | (_FILL_VALUE_FLAG if cls == 2 else 0)
            full, rest = divmod(run, _MAX_RUN)
            words = np.full(full + (1 if rest else 0),
                            fill_word | _MAX_RUN, dtype=np.uint32)
            if rest:
                words[-1] = fill_word | rest
            chunks.append(words)
    body = np.concatenate(chunks).astype(np.uint32).tobytes()
    return _HEADER.pack(len(data)) + body


# ----------------------------------------------------------------------
# Run-list parsing (shared by decode and the compressed-domain ops)
# ----------------------------------------------------------------------


def _parse_runs(blob: bytes) -> tuple[int, np.ndarray, np.ndarray]:
    """Parse a payload into ``(orig_len, values, lengths)`` run arrays.

    ``values`` are 31-bit group values (fills appear once with their run
    length; literals have length 1); zero-length fill words are skipped.
    The total group count is validated against the declared byte length in
    both directions: too few groups and too many groups each raise
    :class:`CorruptFileError`.
    """
    if len(blob) < _HEADER.size:
        raise CorruptFileError("WAH payload shorter than its header")
    (orig_len,) = _HEADER.unpack_from(blob)
    body = blob[_HEADER.size :]
    if len(body) % 4:
        raise CorruptFileError("WAH body is not word-aligned")
    words = np.frombuffer(body, dtype=np.uint32)

    is_fill = (words & np.uint32(_FILL_FLAG)) != 0
    lengths = np.where(is_fill, words & np.uint32(_MAX_RUN), 1).astype(np.int64)
    fill_values = np.where(
        (words & np.uint32(_FILL_VALUE_FLAG)) != 0,
        np.uint32(_LITERAL_MASK),
        np.uint32(0),
    )
    values = np.where(is_fill, fill_values, words & np.uint32(_LITERAL_MASK))
    nonzero = lengths > 0
    if not nonzero.all():
        values, lengths = values[nonzero], lengths[nonzero]

    total = int(lengths.sum())
    expected = _expected_groups(orig_len)
    if total < expected:
        raise CorruptFileError("WAH payload decodes to fewer bits than declared")
    if total > expected:
        raise CorruptFileError(
            "WAH payload decodes to more groups than the padded declared "
            "length allows"
        )
    return orig_len, values, lengths


def wah_decode(blob: bytes) -> bytes:
    """Inverse of :func:`wah_encode`."""
    orig_len, values, lengths = _parse_runs(blob)
    groups = (
        np.repeat(values, lengths) if len(values) else np.zeros(0, np.uint32)
    )
    bits = (
        (groups[:, None] >> np.arange(_GROUP_BITS, dtype=np.uint32)) & np.uint32(1)
    ).astype(np.uint8)
    flat = bits.reshape(-1)[: orig_len * 8]
    return np.packbits(flat, bitorder="little").tobytes()


def wah_word_count(blob: bytes) -> int:
    """Number of 32-bit words in an encoded payload (excluding the header)."""
    return (len(blob) - _HEADER.size) // 4


# ----------------------------------------------------------------------
# Compressed-domain logical operations
# ----------------------------------------------------------------------


class _RunReader:
    """Streams an encoded payload as (is_fill, value, groups) runs.

    Zero-length fill words are skipped during advancement, matching the
    decoder: a payload :func:`wah_decode` accepts streams identically here.
    """

    __slots__ = ("_words", "_pos", "is_fill", "value", "remaining", "orig_len")

    def __init__(self, blob: bytes):
        if len(blob) < _HEADER.size:
            raise CorruptFileError("WAH payload shorter than its header")
        (self.orig_len,) = _HEADER.unpack_from(blob)
        body = blob[_HEADER.size :]
        if len(body) % 4:
            raise CorruptFileError("WAH body is not word-aligned")
        self._words = np.frombuffer(body, dtype=np.uint32).tolist()
        self._pos = 0
        self.is_fill = False
        self.value = 0
        self.remaining = 0
        self._advance()

    def _advance(self) -> None:
        while self._pos < len(self._words):
            word = self._words[self._pos]
            self._pos += 1
            if word & _FILL_FLAG:
                run = word & _MAX_RUN
                if run == 0:
                    continue  # zero-length fill: no groups, keep scanning
                self.is_fill = True
                self.value = _LITERAL_MASK if word & _FILL_VALUE_FLAG else 0
                self.remaining = run
                return
            self.is_fill = False
            self.value = word & _LITERAL_MASK
            self.remaining = 1
            return
        self.remaining = 0

    def consume(self, groups: int) -> None:
        """Advance past ``groups`` groups of the current run."""
        self.remaining -= groups
        if self.remaining == 0:
            self._advance()

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0


class _RunWriter:
    """Builds an encoded payload, merging adjacent compatible runs."""

    __slots__ = ("_words", "_fill_value", "_fill_run")

    def __init__(self):
        self._words: list[int] = []
        self._fill_value = -1
        self._fill_run = 0

    def _flush_fill(self) -> None:
        run = self._fill_run
        fill_word = _FILL_FLAG | (
            _FILL_VALUE_FLAG if self._fill_value == _LITERAL_MASK else 0
        )
        while run > 0:
            chunk = min(run, _MAX_RUN)
            self._words.append(fill_word | chunk)
            run -= chunk
        self._fill_run = 0
        self._fill_value = -1

    def emit(self, value: int, groups: int = 1) -> None:
        """Append ``groups`` groups of 31-bit ``value``."""
        if value == 0 or value == _LITERAL_MASK:
            if self._fill_value != value and self._fill_run:
                self._flush_fill()
            self._fill_value = value
            self._fill_run += groups
            return
        if self._fill_run:
            self._flush_fill()
        self._words.extend([value] * groups)

    def payload(self, orig_len: int) -> bytes:
        if self._fill_run:
            self._flush_fill()
        body = np.asarray(self._words, dtype=np.uint32).tobytes()
        return _HEADER.pack(orig_len) + body


def _encode_runs(values: np.ndarray, lengths: np.ndarray, orig_len: int) -> bytes:
    """Re-encode an aligned run list into a payload, fully vectorized.

    ``values``/``lengths`` come out of the run-merge: any run of length
    greater than 1 is a fill (its value is 0 or all-ones), so literal words
    can be copied straight from ``values`` while fill stretches collapse to
    single words.
    """
    n = len(values)
    if n == 0:
        return _HEADER.pack(orig_len)

    # 0 = literal, 1 = zero fill, 2 = one fill (same classes as the encoder).
    classes = np.zeros(n, dtype=np.uint8)
    classes[values == 0] = 1
    classes[values == _LITERAL_MASK] = 2
    change = np.flatnonzero(np.diff(classes)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    stretch_cls = classes[starts]
    stretch_sizes = ends - starts
    fill_totals = np.add.reduceat(lengths, starts)

    is_fill_stretch = stretch_cls != 0
    fill_words_needed = np.where(
        is_fill_stretch, (fill_totals + _MAX_RUN - 1) // _MAX_RUN, 0
    )
    out_counts = np.where(is_fill_stretch, fill_words_needed, stretch_sizes)
    offsets = np.concatenate(([0], np.cumsum(out_counts)))
    out = np.empty(offsets[-1], dtype=np.uint32)

    fill_stretches = np.flatnonzero(is_fill_stretch)
    simple = fill_stretches[fill_words_needed[fill_stretches] == 1]
    if len(simple):
        fill_word = np.where(
            stretch_cls[simple] == 2,
            np.uint32(_FILL_FLAG | _FILL_VALUE_FLAG),
            np.uint32(_FILL_FLAG),
        )
        out[offsets[simple]] = fill_word | fill_totals[simple].astype(np.uint32)
    for s in fill_stretches[fill_words_needed[fill_stretches] > 1].tolist():
        # Runs longer than 2^30 - 1 groups (> 33 Gbit) need chunking.
        fill_word = _FILL_FLAG | (_FILL_VALUE_FLAG if stretch_cls[s] == 2 else 0)
        run = int(fill_totals[s])
        pos = int(offsets[s])
        while run > 0:
            chunk = min(run, _MAX_RUN)
            out[pos] = fill_word | chunk
            pos += 1
            run -= chunk

    literal_runs = classes == 0
    if literal_runs.any():
        run_index = np.arange(n)
        stretch_of = np.searchsorted(starts, run_index, side="right") - 1
        dest = offsets[stretch_of] + (run_index - starts[stretch_of])
        out[dest[literal_runs]] = values[literal_runs]

    return _HEADER.pack(orig_len) + out.tobytes()


def _merge_runs(
    parsed: list[tuple[int, np.ndarray, np.ndarray]], op
) -> bytes:
    """Apply ``op`` across k parsed run lists via one sorted boundary merge.

    The merged, deduplicated boundary array is the order a heap of run
    readers would pop run endings in; every merged segment is covered by
    exactly one run of each operand, located with one ``searchsorted`` per
    operand, so the operator applies to aligned ``uint32`` run values in a
    single vectorized expression.
    """
    orig_len = parsed[0][0]
    ends = [np.cumsum(lengths) for _, _, lengths in parsed]
    for other_len, _, _ in parsed[1:]:
        if other_len != orig_len:
            raise CorruptFileError(
                f"compressed operands differ in length: "
                f"{orig_len} vs {other_len} bytes"
            )
    # _parse_runs already pinned every operand to the same padded group
    # count, so the final boundaries coincide by construction.
    if len(parsed) == 1:
        merged = ends[0]
    else:
        merged = np.concatenate(ends)
        merged.sort()
        if len(merged):
            keep = np.empty(len(merged), dtype=bool)
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            merged = merged[keep]
    if len(merged) == 0:
        return _HEADER.pack(orig_len)
    acc = parsed[0][1][np.searchsorted(ends[0], merged, side="left")]
    for (_, values, _), end in zip(parsed[1:], ends[1:]):
        acc = op(acc, values[np.searchsorted(end, merged, side="left")])
    lengths = np.diff(merged, prepend=0)
    return _encode_runs(acc & np.uint32(_LITERAL_MASK), lengths, orig_len)


def _binary_op(a: bytes, b: bytes, op) -> bytes:
    return _merge_runs([_parse_runs(a), _parse_runs(b)], op)


def wah_and(a: bytes, b: bytes) -> bytes:
    """AND two encoded payloads without decompressing."""
    return _binary_op(a, b, np.bitwise_and)


def wah_or(a: bytes, b: bytes) -> bytes:
    """OR two encoded payloads without decompressing."""
    return _binary_op(a, b, np.bitwise_or)


def wah_and_popcount(a: bytes, b: bytes) -> int:
    """Popcount of ``a AND b`` without materializing the result payload.

    The aggregate-pushdown kernel: same sorted boundary merge as
    :func:`wah_and`, but the aligned run values are popcounted and
    dotted with the segment lengths directly — no result runs are
    re-encoded, so counting an intersection costs a parse and one
    vectorized pass regardless of how incompressible the result is.
    """
    len_a, values_a, lengths_a = _parse_runs(a)
    len_b, values_b, lengths_b = _parse_runs(b)
    if len_a != len_b:
        raise CorruptFileError(
            f"compressed operands differ in length: {len_a} vs {len_b} bytes"
        )
    ends_a, ends_b = np.cumsum(lengths_a), np.cumsum(lengths_b)
    merged = np.concatenate((ends_a, ends_b))
    merged.sort()
    if len(merged):
        keep = np.empty(len(merged), dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        merged = merged[keep]
    if len(merged) == 0:
        return 0
    aligned = values_a[np.searchsorted(ends_a, merged, side="left")] & values_b[
        np.searchsorted(ends_b, merged, side="left")
    ]
    lengths = np.diff(merged, prepend=0)
    return int(np.bitwise_count(aligned).astype(np.int64) @ lengths)


def wah_xor(a: bytes, b: bytes) -> bytes:
    """XOR two encoded payloads without decompressing."""
    return _binary_op(a, b, np.bitwise_xor)


def wah_and_many(payloads: list[bytes]) -> bytes:
    """AND k encoded payloads in one multi-way run merge.

    Equivalent to folding :func:`wah_and` pairwise but parses each operand
    once and walks the merged run boundaries once, so cost is proportional
    to the total run count across all operands instead of re-materializing
    k - 1 intermediate payloads.
    """
    if not payloads:
        raise ValueError("wah_and_many needs at least one payload")
    return _merge_runs([_parse_runs(p) for p in payloads], np.bitwise_and)


def wah_or_many(payloads: list[bytes]) -> bytes:
    """OR k encoded payloads in one multi-way run merge (see wah_and_many)."""
    if not payloads:
        raise ValueError("wah_or_many needs at least one payload")
    return _merge_runs([_parse_runs(p) for p in payloads], np.bitwise_or)


def wah_threshold_many(payloads: list[bytes], k: int) -> bytes:
    """k-of-N threshold over encoded payloads, in the compressed domain.

    Returns the payload whose bit ``i`` is set iff at least ``k`` of the
    operands have bit ``i`` set — ``k == 1`` is the N-way OR, ``k == N``
    the N-way AND, and intermediate ``k`` the symmetric threshold that
    neither fold can express.  The run boundaries of all operands are
    merged in one sorted pass (exactly like :func:`wah_and_many`); within
    each merged segment the per-bit-position counts across operands are
    accumulated with one vectorized shift-and-mask per operand, then
    compared against ``k`` — no bitmap is ever expanded to row
    granularity, so cost stays proportional to total run count.

    ``k <= 0`` yields the all-ones payload over the declared byte length
    (every row trivially matches at least zero operands) and ``k > N``
    the all-zero payload.
    """
    if not payloads:
        raise ValueError("wah_threshold_many needs at least one payload")
    parsed = [_parse_runs(p) for p in payloads]
    orig_len = parsed[0][0]
    for other_len, _, _ in parsed[1:]:
        if other_len != orig_len:
            raise CorruptFileError(
                f"compressed operands differ in length: "
                f"{orig_len} vs {other_len} bytes"
            )
    if k <= 0:
        # Trivially true for every bit position, padding included — the
        # caller masks padding via its own nbits; match wah_ones semantics
        # over the byte length.
        return wah_ones(orig_len * 8)
    if k > len(payloads):
        return wah_zeros(orig_len * 8)
    ends = [np.cumsum(lengths) for _, _, lengths in parsed]
    if len(parsed) == 1:
        merged = ends[0]
    else:
        merged = np.concatenate(ends)
        merged.sort()
        if len(merged):
            keep = np.empty(len(merged), dtype=bool)
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            merged = merged[keep]
    if len(merged) == 0:
        return _HEADER.pack(orig_len)
    # counts[s, b] = how many operands have bit b set in merged segment s.
    shifts = np.arange(_GROUP_BITS, dtype=np.uint32)
    counts = np.zeros((len(merged), _GROUP_BITS), dtype=np.int32)
    for (_, values, _), end in zip(parsed, ends):
        aligned = values[np.searchsorted(end, merged, side="left")]
        counts += ((aligned[:, None] >> shifts) & np.uint32(1)).astype(np.int32)
    result = ((counts >= k) * _POWERS).sum(axis=1, dtype=np.uint64).astype(
        np.uint32
    )
    lengths = np.diff(merged, prepend=0)
    return _encode_runs(result, lengths, orig_len)


def wah_not(blob: bytes, nbits: int | None = None) -> bytes:
    """Complement an encoded payload without decompressing.

    ``nbits`` (the true bit length) keeps bits beyond it at zero; without
    it, complementing is exact to byte granularity (bits past the final
    byte stay zero either way).
    """
    orig_len, values, lengths = _parse_runs(blob)
    inverted = (values ^ np.uint32(_LITERAL_MASK), lengths)
    # Mask padding back to zero by merging with the all-ones run list of
    # the true length (cheap: it is at most three runs).
    valid_bits = nbits if nbits is not None else orig_len * 8
    total_groups = _expected_groups(orig_len)
    mask_values, mask_lengths = _ones_runs(valid_bits, total_groups)
    return _merge_runs(
        [(orig_len, *inverted), (orig_len, mask_values, mask_lengths)],
        np.bitwise_and,
    )


def _ones_runs(valid_bits: int, total_groups: int) -> tuple[np.ndarray, np.ndarray]:
    """Run list with the first ``valid_bits`` bits set over ``total_groups``."""
    full, tail = divmod(valid_bits, _GROUP_BITS)
    full = min(full, total_groups)
    values, lengths = [], []
    if full:
        values.append(_LITERAL_MASK)
        lengths.append(full)
    emitted = full
    if tail and emitted < total_groups:
        values.append((1 << tail) - 1)
        lengths.append(1)
        emitted += 1
    if emitted < total_groups:
        values.append(0)
        lengths.append(total_groups - emitted)
    return np.asarray(values, dtype=np.uint32), np.asarray(lengths, dtype=np.int64)


def wah_zeros(nbits: int) -> bytes:
    """The encoded all-zero bitmap of ``nbits`` bits."""
    orig_len = (nbits + 7) // 8
    writer = _RunWriter()
    total_groups = _expected_groups(orig_len)
    if total_groups:
        writer.emit(0, total_groups)
    return writer.payload(orig_len)


def wah_ones(nbits: int) -> bytes:
    """The encoded bitmap with the first ``nbits`` bits set."""
    orig_len = (nbits + 7) // 8
    writer = _RunWriter()
    values, lengths = _ones_runs(nbits, _expected_groups(orig_len))
    for value, length in zip(values.tolist(), lengths.tolist()):
        writer.emit(value, length)
    return writer.payload(orig_len)


def wah_popcount(blob: bytes) -> int:
    """Set-bit count of an encoded payload, computed run-by-run.

    One vectorized pass over the parsed runs: each run contributes its
    group value's popcount times its length, so cost is proportional to
    the number of runs (not bits), and literal-heavy payloads popcount
    at numpy speed instead of a word-at-a-time Python loop.
    """
    _, values, lengths = _parse_runs(blob)
    if len(values) == 0:
        return 0
    return int(np.bitwise_count(values).astype(np.int64) @ lengths)
