"""Structured per-query tracing and EXPLAIN reports.

The paper's whole evaluation rests on two observable quantities — bitmap
*scans* (I/O) and bitmap *operations* (CPU) — but aggregate counters only
say *how much* a query cost, not *where*.  This module adds the missing
provenance: a :class:`QueryTrace` is a flat list of timed :class:`Span`
records emitted by every layer a query crosses (engine plan selection,
cache/buffer hits, physical bitmap fetches, each AND/OR/XOR/NOT, codec
decode work), and an :class:`ExplainReport` places the paper's *predicted*
cost (:func:`repro.core.costmodel.scans_for_predicate`) side by side with
the *actual* :class:`~repro.stats.ExecutionStats` counters, flagging any
divergence.

Tracing is threaded through the existing ``ExecutionStats`` object that
every layer already receives: ``stats.trace`` is ``None`` on the untraced
hot path (a single attribute read gates all instrumentation, so serving
overhead stays within noise) and a :class:`QueryTrace` when the caller
asked for one (``QueryEngine.query(..., trace=True)``,
``QueryOptions(trace=True)``, or :func:`explain`).

Span kinds, by layer:

========  ==============================================================
kind      emitted by
========  ==============================================================
plan      engine mode/access-path selection, optimizer plan choice
phase     executor phases (translate, evaluate, materialize, verify)
fetch     physical bitmap reads (in-memory index, BS/CS/IS files)
cache     shared engine-cache hits
buffer    buffer-pool hits
op        logical bitmap operations (and/or/xor/not, k-way merges)
decode    codec decompression on the read path
io        modeled disk waits on engine cache misses
shard     per-shard evaluation on the process backend (worker-timed)
fault     resilience events: dispatch retries, backend degradations,
          deadline expiry (``dispatch.retry``, ``deadline.exceeded``)
========  ==============================================================

A trace is owned by one query on one thread; it is not thread-safe and is
never shared across queries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import InvalidPredicateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.executor import QueryResult
    from repro.relation.relation import Relation


@dataclass
class Span:
    """One timed, attributed event inside a query trace.

    ``start`` and ``duration`` are seconds relative to the trace origin;
    instantaneous events have ``duration == 0``.  ``depth`` is the nesting
    level at emission time, used by :meth:`QueryTrace.format` to indent.
    """

    name: str
    kind: str
    start: float
    duration: float
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class QueryTrace:
    """An append-only record of spans produced by one query evaluation."""

    def __init__(self, label: str = "query"):
        self.label = label
        self.spans: list[Span] = []
        self._origin = time.perf_counter()
        self._depth = 0
        self._finished: float | None = None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = "phase", **attrs) -> Iterator[Span]:
        """Time a block; the span is recorded when the block exits."""
        started = time.perf_counter()
        record = Span(name, kind, started - self._origin, 0.0, self._depth, attrs)
        self._depth += 1
        try:
            yield record
        finally:
            self._depth -= 1
            record.duration = time.perf_counter() - started
            self.spans.append(record)

    def event(self, name: str, kind: str = "event", **attrs) -> Span:
        """Record an instantaneous event at the current nesting depth."""
        record = Span(
            name, kind, time.perf_counter() - self._origin, 0.0, self._depth, attrs
        )
        self.spans.append(record)
        return record

    def add_span(
        self, name: str, kind: str = "phase", *, seconds: float = 0.0, **attrs
    ) -> Span:
        """Record a span whose duration was measured elsewhere.

        The process backend uses this to surface per-shard evaluation
        times clocked inside worker processes: the work did not happen on
        this trace's thread, so :meth:`span` cannot time it, but it still
        belongs in the query's timeline.  The span is stamped at the
        current trace offset with the externally-measured ``seconds``.
        """
        record = Span(
            name,
            kind,
            time.perf_counter() - self._origin,
            seconds,
            self._depth,
            attrs,
        )
        self.spans.append(record)
        return record

    def finish(self) -> None:
        """Pin the trace's total duration (idempotent; optional)."""
        if self._finished is None:
            self._finished = time.perf_counter() - self._origin

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Trace duration: time from origin to :meth:`finish` (or now)."""
        if self._finished is not None:
            return self._finished
        return time.perf_counter() - self._origin

    def spans_of(self, kind: str) -> list[Span]:
        """Spans of one kind, in emission order."""
        return [s for s in self.spans if s.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for s in self.spans if s.kind == kind)

    def seconds_of(self, kind: str) -> float:
        return sum(s.duration for s in self.spans if s.kind == kind)

    def summary(self) -> dict[str, dict]:
        """Per-kind rollup: span count and summed duration."""
        out: dict[str, dict] = {}
        for s in self.spans:
            entry = out.setdefault(s.kind, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += s.duration
        return out

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "total_seconds": self.total_seconds,
            "summary": self.summary(),
            "spans": [s.as_dict() for s in sorted(self.spans, key=lambda s: s.start)],
        }

    def format(self) -> str:
        """The trace as an indented, human-readable text tree."""
        lines = [f"trace: {self.label}  ({1e3 * self.total_seconds:.3f} ms)"]
        for s in sorted(self.spans, key=lambda s: (s.start, s.depth)):
            attrs = " ".join(f"{k}={v}" for k, v in s.attrs.items())
            pad = "  " * (s.depth + 1)
            lines.append(
                f"{pad}{s.name} [{s.kind}] {1e3 * s.duration:.3f} ms"
                + (f"  {attrs}" if attrs else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryTrace(label={self.label!r}, spans={len(self.spans)}, "
            f"seconds={self.total_seconds:.6f})"
        )


# ----------------------------------------------------------------------
# Predicted cost (the paper's model) for one query
# ----------------------------------------------------------------------


def predicted_leaf_costs(
    relation: "Relation",
    query,
    sources: dict,
    algorithm: str = "auto",
) -> list[dict]:
    """Per-leaf predicted bitmap scans for a predicate or expression tree.

    ``sources`` maps attribute names to bitmap-source-like objects exposing
    ``base``, ``cardinality``, and ``encoding`` (a
    :class:`~repro.core.index.BitmapIndex`, a storage scheme, or the
    engine's cached view).  Each leaf entry carries the translated
    code-domain predicate so the prediction mirrors exactly what the
    evaluator will run.  Leaves without an arithmetic cost mirror (the
    interval encoding) report ``scans=None``.
    """
    from repro.query.expression import Between, Comparison, In
    from repro.query.predicate import AttributePredicate

    leaves: list[dict] = []

    def leaf(attribute: str, op: str, value) -> None:
        column = relation.column(attribute)
        source = sources.get(attribute)
        if source is None:
            raise InvalidPredicateError(
                f"no bitmap source for attribute {attribute!r}"
            )
        code_op, code = column.code_bounds(op, value)
        entry = {
            "predicate": f"{attribute} {op} {value}",
            "attribute": attribute,
            "code_op": code_op,
            "code": int(code),
            "base": str(source.base),
            "encoding": source.encoding.value,
            "scans": None,
        }
        try:
            from repro.core.costmodel import scans_for_predicate

            entry["scans"] = scans_for_predicate(
                source.base,
                source.cardinality,
                code_op,
                code,
                source.encoding,
                algorithm=algorithm,
            )
        except InvalidPredicateError:
            pass  # no arithmetic mirror (interval encoding)
        leaves.append(entry)

    def walk(node) -> None:
        if isinstance(node, AttributePredicate) or isinstance(node, Comparison):
            leaf(node.attribute, node.op, node.value)
        elif isinstance(node, In):
            for value in node.values:
                leaf(node.attribute, "=", value)
        elif isinstance(node, Between):
            leaf(node.attribute, ">=", node.low)
            leaf(node.attribute, "<=", node.high)
        elif hasattr(node, "left") and hasattr(node, "right"):  # And / Or / Xor
            walk(node.left)
            walk(node.right)
        elif hasattr(node, "inner"):  # Not
            walk(node.inner)
        elif hasattr(node, "operands"):  # Threshold
            for operand in node.operands:
                walk(operand)
        else:
            raise InvalidPredicateError(
                f"cannot predict cost for query node {node!r}"
            )

    walk(query)
    return leaves


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------


@dataclass
class ExplainReport:
    """Predicted vs. actual cost of one query, plus its trace.

    ``predicted_scans`` is the paper's cost-model scan count summed over
    the query's leaves (``None`` when any leaf lacks an arithmetic
    mirror).  ``actual`` is the executed query's
    :meth:`~repro.stats.ExecutionStats.as_dict`.  On an uncached run
    ``actual["scans"]`` equals ``predicted_scans``; on a warm cache the
    invariant that holds instead is ``scans + buffer_hits ==
    predicted_scans`` (a hit replaces a physical scan one-for-one), which
    is what :attr:`divergences` checks.
    """

    query: str
    relation: str
    mode: str  # "predicate" | "expression"
    access_path: str
    compressed: bool
    rows: int
    predicted_scans: int | None
    predicted_leaves: list[dict]
    actual: dict
    divergences: list[str]
    trace: QueryTrace | None = None
    io_model: dict | None = None
    storage_io: dict | None = None
    plan: str | None = None

    @property
    def effective_fetches(self) -> int:
        """Physical scans plus cache/buffer hits — comparable to prediction."""
        return int(self.actual.get("scans", 0)) + int(
            self.actual.get("buffer_hits", 0)
        )

    @property
    def matches_prediction(self) -> bool:
        """True when the cost model accounts for every observed fetch."""
        return not self.divergences

    def as_dict(self) -> dict:
        out = {
            "query": self.query,
            "relation": self.relation,
            "mode": self.mode,
            "access_path": self.access_path,
            "compressed": self.compressed,
            "rows": self.rows,
            "predicted_scans": self.predicted_scans,
            "predicted_leaves": self.predicted_leaves,
            "actual": dict(self.actual),
            "effective_fetches": self.effective_fetches,
            "divergences": list(self.divergences),
            "io_model": self.io_model,
            "storage_io": self.storage_io,
            "plan": self.plan,
        }
        if self.trace is not None:
            out["trace"] = self.trace.as_dict()
        return out

    def format(self) -> str:
        """The report as a readable text block (the EXPLAIN output)."""
        lines = [f"EXPLAIN {self.query}  ON {self.relation}"]
        lines.append(
            f"  mode={self.mode}  access_path={self.access_path}  "
            f"compressed={'yes' if self.compressed else 'no'}"
            + (f"  plan={self.plan}" if self.plan else "")
        )
        predicted = (
            str(self.predicted_scans) if self.predicted_scans is not None else "n/a"
        )
        lines.append(f"  predicted (cost model): {predicted} bitmap scans")
        for leaf in self.predicted_leaves:
            scans = leaf["scans"] if leaf["scans"] is not None else "n/a"
            lines.append(
                f"    {leaf['predicate']}  ->  A {leaf['code_op']} "
                f"{leaf['code']}  [base {leaf['base']}, {leaf['encoding']}]"
                f": {scans} scans"
            )
        a = self.actual
        lines.append(
            f"  actual: {a.get('scans', 0)} scans, "
            f"{a.get('buffer_hits', 0)} cache/buffer hits, "
            f"{a.get('ops', 0)} bitmap ops "
            f"({a.get('ands', 0)} AND, {a.get('ors', 0)} OR, "
            f"{a.get('xors', 0)} XOR, {a.get('nots', 0)} NOT), "
            f"{a.get('bytes_read', 0)} bytes read"
        )
        if a.get("decompressed_bytes"):
            lines.append(f"  decode: {a['decompressed_bytes']} bytes inflated")
        if self.io_model is not None:
            lines.append(
                f"  modeled I/O: {self.io_model.get('io_seconds', 0.0):.6f} s "
                f"({self.io_model.get('description', '')})"
            )
        if self.storage_io is not None:
            s = self.storage_io
            lines.append(
                f"  storage I/O ({s.get('backend', '?')}, cumulative): "
                f"{s.get('payload_bytes_read', s.get('bytes_read', 0))} "
                f"payload bytes read, "
                f"{s.get('bitmaps_materialized', 0)} bitmaps materialized, "
                f"{s.get('dict_bytes', 0)} dictionary bytes, "
                f"{s.get('pages_touched', 0)} pages touched"
            )
        lines.append(f"  rows: {self.rows}")
        if self.divergences:
            for message in self.divergences:
                lines.append(f"  DIVERGENCE: {message}")
        else:
            lines.append(
                "  verdict: cost model matches observation "
                f"(scans + hits = {self.effective_fetches})"
            )
        if self.trace is not None:
            lines.append(self.trace.format())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def build_explain_report(
    relation: "Relation",
    query,
    sources: dict,
    result: "QueryResult",
    *,
    mode: str,
    compressed: bool = False,
    algorithm: str = "auto",
    io_model: dict | None = None,
    storage_io: dict | None = None,
    plan: str | None = None,
) -> ExplainReport:
    """Assemble an :class:`ExplainReport` from an executed, traced query."""
    leaves = predicted_leaf_costs(relation, query, sources, algorithm=algorithm)
    if any(leaf["scans"] is None for leaf in leaves):
        predicted: int | None = None
    else:
        predicted = sum(leaf["scans"] for leaf in leaves)
    actual = result.stats.as_dict()
    divergences: list[str] = []
    effective = actual["scans"] + actual["buffer_hits"]
    if predicted is None:
        divergences.append(
            "no arithmetic cost mirror for at least one leaf "
            "(interval encoding); prediction unavailable"
        )
    elif effective != predicted:
        divergences.append(
            f"cost model predicted {predicted} bitmap scans but the run "
            f"observed {actual['scans']} scans + {actual['buffer_hits']} "
            f"cache/buffer hits = {effective}"
        )
    return ExplainReport(
        query=str(query),
        relation=relation.name,
        mode=mode,
        access_path=result.access_path.value,
        compressed=compressed,
        rows=result.count,
        predicted_scans=predicted,
        predicted_leaves=leaves,
        actual=actual,
        divergences=divergences,
        trace=result.trace,
        io_model=io_model,
        storage_io=storage_io,
        plan=plan,
    )


def explain(
    relation: "Relation",
    query,
    indexes: dict,
    *,
    algorithm: str = "auto",
    verify: bool = False,
) -> ExplainReport:
    """Run ``query`` through ``indexes`` with tracing on and explain it.

    The engine-free counterpart of :meth:`QueryEngine.explain
    <repro.engine.engine.QueryEngine.explain>`: ``query`` is an
    :class:`~repro.query.predicate.AttributePredicate`, an
    :class:`~repro.query.expression.Expression`, or a textual expression;
    ``indexes`` maps attribute names to bitmap sources.
    """
    from repro.query.executor import AccessPath, QueryResult, execute
    from repro.query.options import QueryOptions, normalize_query
    from repro.query.predicate import AttributePredicate
    from repro.stats import ExecutionStats

    q = normalize_query(query)
    options = QueryOptions(verify=verify, algorithm=algorithm, trace=True)
    compressed = any(
        getattr(src, "compressed", False) for src in indexes.values()
    )
    if isinstance(q, AttributePredicate):
        result = execute(
            relation,
            q,
            AccessPath.BITMAP,
            index=indexes[q.attribute],
            options=options,
        )
        mode = "predicate"
    else:
        trace = QueryTrace(label=str(q))
        stats = ExecutionStats()
        stats.trace = trace
        with trace.span("evaluate", kind="phase", mode="expression"):
            bitmap = q.bitmap(relation, indexes, stats)
        with trace.span("materialize", kind="phase"):
            rids = bitmap.indices()
        if verify:
            import numpy as np

            from repro.query.executor import VerificationError

            with trace.span("verify", kind="phase"):
                truth = np.nonzero(q.mask(relation))[0]
            if not np.array_equal(rids, truth):
                raise VerificationError(
                    f"expression '{q}' returned {len(rids)} RIDs; "
                    f"the scan found {len(truth)}"
                )
        trace.finish()
        result = QueryResult(
            rids=rids, access_path=AccessPath.BITMAP, stats=stats, trace=trace
        )
        mode = "expression"
    return build_explain_report(
        relation,
        q,
        indexes,
        result,
        mode=mode,
        compressed=compressed,
        algorithm=algorithm,
    )
