"""The paper's space/time cost model (Section 4, Theorem 5.1, Eq. 5).

Two metrics (paper Section 4):

- **Space** — number of stored bitmaps.
- **Time** — expected number of bitmap scans to evaluate one query drawn
  uniformly from ``Q = {A op v : op in {<, <=, =, !=, >=, >}, 0 <= v < C}``.

For each encoding the module provides:

- a *closed-form* time (the paper's Theorem 5.1 expressions, which assume
  the digits of the predicate constant are uniform and independent —
  exact when the base's capacity equals ``C``), and
- an *exact* time (:func:`expected_scans`) obtained by enumerating the
  whole query space arithmetically (no bitmaps are touched), vectorized
  over the ``6C`` queries.  The exact computation also covers the baseline
  ``RangeEval`` algorithm and non-tight bases.

The scan-count logic here deliberately mirrors
:mod:`repro.core.evaluation`; the test suite asserts that, for every
operator and constant, the arithmetic counts equal the instrumented counts
of a real evaluation.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme, stored_bitmap_count
from repro.errors import BufferConfigError, InvalidPredicateError

#: Fraction of the query space that uses a range operator (4 of 6).
_RANGE_WEIGHT = Fraction(4, 6)
_EQUALITY_WEIGHT = Fraction(2, 6)


# ----------------------------------------------------------------------
# Space (Theorem 5.1)
# ----------------------------------------------------------------------


def space(base: Base, encoding: EncodingScheme = EncodingScheme.RANGE) -> int:
    """Stored bitmaps of an index with this base and encoding.

    Range encoding: ``sum(b_i - 1)``.  Equality encoding: ``sum(s_i)`` with
    ``s_i = b_i`` when ``b_i > 2`` and ``1`` otherwise (complement trick).
    """
    return sum(stored_bitmap_count(b, encoding) for b in base)


def space_range(base: Base) -> int:
    """``Space`` for a range-encoded index (Theorem 5.1)."""
    return space(base, EncodingScheme.RANGE)


def space_equality(base: Base) -> int:
    """``Space`` for an equality-encoded index (Theorem 5.1)."""
    return space(base, EncodingScheme.EQUALITY)


# ----------------------------------------------------------------------
# Closed-form time (Theorem 5.1)
# ----------------------------------------------------------------------


def time_range(base: Base) -> float:
    """Expected scans for a range-encoded index under ``RangeEval-Opt``.

    ``Time = 2 (n - sum 1/b_i) + (2/3) (1/b_1 - 1)`` — the paper's Eq. (4),
    re-derived: range operators (weight 4/6) cost ``1 - 1/b_1`` scans on
    component 1 and ``2 - 2/b_i`` on the others; equality operators
    (weight 2/6) cost ``2 - 2/b_i`` on every component.
    """
    n = base.n
    inv_sum = sum(Fraction(1, b) for b in base)
    b1 = base.component(1)
    result = 2 * (n - inv_sum) + Fraction(2, 3) * (Fraction(1, b1) - 1)
    return float(result)


def time_equality(base: Base) -> float:
    """Expected scans for an equality-encoded index (Theorem 5.1 analogue).

    Uses the evaluator of :func:`repro.core.evaluation.equality_eval`:
    equality operators cost one scan per component; range operators cost,
    per component, the cheaper of the direct and complemented bitmap-OR
    (with the ``=`` bitmap reused from a complement scan).  The expectation
    is taken over uniform digits, mirroring Eq. (4)'s assumption.
    """
    range_cost = Fraction(0)
    for i in range(1, base.n + 1):
        b = base.component(i)
        total = sum(
            _equality_range_scans(d, b, is_component_one=(i == 1))
            for d in range(b)
        )
        range_cost += Fraction(total, b)
    equality_cost = Fraction(base.n)
    return float(_RANGE_WEIGHT * range_cost + _EQUALITY_WEIGHT * equality_cost)


def time(base: Base, encoding: EncodingScheme = EncodingScheme.RANGE) -> float:
    """Closed-form expected scans for the given encoding.

    Interval encoding (the 1999 extension) has no published closed form;
    its time is computed by exact simulation over the query space with the
    base's full capacity as the cardinality.
    """
    if encoding is EncodingScheme.RANGE:
        return time_range(base)
    if encoding is EncodingScheme.INTERVAL:
        return expected_scans_simulated(base, base.capacity, encoding)
    return time_equality(base)


def _equality_range_scans(d: int, b: int, is_component_one: bool) -> int:
    """Scans one equality-encoded component costs toward ``A <= v``.

    ``d`` is the component's digit of the (already ``<=``-normalized)
    constant.  Component 1 needs ``digit <= d``; other components need both
    ``digit < d`` and ``digit = d``.
    """
    if is_component_one:
        if d == b - 1:
            return 0
        if b == 2:
            return 1
        return min(d + 1, b - 1 - d)
    if b == 2 or d == 0:
        return 1
    return min(d + 1, b - d)


# ----------------------------------------------------------------------
# Buffered time (Eq. 5, Section 10)
# ----------------------------------------------------------------------


def time_range_buffered(base: Base, buffered: tuple[int, ...]) -> float:
    """Expected scans with ``f_i`` bitmaps of component ``i`` buffered.

    ``buffered`` is least-significant-first: ``buffered[0]`` is ``f_1``.
    The paper's Eq. (5):
    ``Time = 2 (n - sum (1 + f_i)/b_i) + (2/3) ((1 + f_1)/b_1 - 1)``,
    assuming each reference to a component-``i`` bitmap hits the buffer
    with probability ``f_i / (b_i - 1)``.
    """
    if len(buffered) != base.n:
        raise BufferConfigError(
            f"buffer assignment has {len(buffered)} entries for an "
            f"{base.n}-component index"
        )
    total = Fraction(0)
    for i in range(1, base.n + 1):
        b = base.component(i)
        f = buffered[i - 1]
        if not 0 <= f <= b - 1:
            raise BufferConfigError(
                f"f_{i} = {f} outside [0, {b - 1}] for base number {b}"
            )
        total += Fraction(1 + f, b)
    b1 = base.component(1)
    f1 = buffered[0]
    result = 2 * (base.n - total) + Fraction(2, 3) * (Fraction(1 + f1, b1) - 1)
    return float(result)


# ----------------------------------------------------------------------
# Exact expected scans by query-space enumeration
# ----------------------------------------------------------------------


def _digit_matrix(base: Base, cardinality: int) -> list[np.ndarray]:
    """Digit arrays of every value in ``[0, cardinality)``."""
    return base.digit_arrays(np.arange(cardinality, dtype=np.int64))


def _le_scans_range_opt(base: Base, digits: list[np.ndarray]) -> np.ndarray:
    """Per-constant scans of RangeEval-Opt's ``A <= v`` loop."""
    scans = np.zeros(len(digits[0]), dtype=np.int64)
    for i in range(1, base.n + 1):
        d = digits[i - 1]
        b = base.component(i)
        if i == 1:
            scans += (d < b - 1).astype(np.int64)
        else:
            scans += (d != b - 1).astype(np.int64)
            scans += (d != 0).astype(np.int64)
    return scans


def _eq_scans_range(base: Base, digits: list[np.ndarray]) -> np.ndarray:
    """Per-constant scans of the range-encoded ``A = v`` evaluation.

    Identical for RangeEval and RangeEval-Opt, and — component-wise — also
    equal to RangeEval's per-component scan count for *range* operators
    (1 scan for boundary digits, 2 otherwise), which is why RangeEval's
    expected scans do not depend on the operator.
    """
    scans = np.zeros(len(digits[0]), dtype=np.int64)
    for i in range(1, base.n + 1):
        d = digits[i - 1]
        b = base.component(i)
        boundary = (d == 0) | (d == b - 1)
        scans += np.where(boundary, 1, 2)
    return scans


def _le_scans_equality(base: Base, digits: list[np.ndarray]) -> np.ndarray:
    """Per-constant scans of the equality-encoded ``A <= v`` evaluation."""
    scans = np.zeros(len(digits[0]), dtype=np.int64)
    for i in range(1, base.n + 1):
        d = digits[i - 1]
        b = base.component(i)
        if i == 1:
            if b == 2:
                cost = np.where(d == b - 1, 0, 1)
            else:
                cost = np.where(d == b - 1, 0, np.minimum(d + 1, b - 1 - d))
        else:
            if b == 2:
                cost = np.ones_like(d)
            else:
                cost = np.where(d == 0, 1, np.minimum(d + 1, b - d))
        scans += cost
    return scans


def expected_scans(
    base: Base,
    cardinality: int,
    encoding: EncodingScheme = EncodingScheme.RANGE,
    algorithm: str = "auto",
) -> float:
    """Exact expected scans over the uniform query space ``Q``.

    Enumerates all ``6 * cardinality`` queries arithmetically — no bitmaps
    are built.  ``algorithm`` is ``'range_eval'``, ``'range_eval_opt'``,
    ``'equality_eval'``, or ``'auto'`` (the encoding's recommended
    algorithm).
    """
    if algorithm == "auto":
        if encoding is EncodingScheme.RANGE:
            algorithm = "range_eval_opt"
        elif encoding is EncodingScheme.INTERVAL:
            algorithm = "interval_eval"
        else:
            algorithm = "equality_eval"
    if algorithm == "interval_eval":
        if encoding is not EncodingScheme.INTERVAL:
            raise InvalidPredicateError("interval_eval needs interval encoding")
        # No arithmetic mirror for the interval extension; simulate.
        return expected_scans_simulated(base, cardinality, encoding, algorithm)
    digits = _digit_matrix(base, cardinality)
    c = cardinality

    if algorithm == "range_eval":
        if encoding is not EncodingScheme.RANGE:
            raise InvalidPredicateError("range_eval needs range encoding")
        # Same per-query cost for all six operators.
        return float(_eq_scans_range(base, digits).mean())

    if algorithm == "range_eval_opt":
        if encoding is not EncodingScheme.RANGE:
            raise InvalidPredicateError("range_eval_opt needs range encoding")
        le = _le_scans_range_opt(base, digits)
        eq = _eq_scans_range(base, digits)
    elif algorithm == "equality_eval":
        if encoding is not EncodingScheme.EQUALITY:
            raise InvalidPredicateError("equality_eval needs equality encoding")
        le = _le_scans_equality(base, digits)
        eq = np.full(c, base.n, dtype=np.int64)
    else:
        raise InvalidPredicateError(f"unknown algorithm {algorithm!r}")

    # A <= v (and its complement A > v) scan LE(v); LE(C-1) is trivial.
    le_cost = le.copy()
    le_cost[c - 1] = 0
    # A < v and A >= v scan LE(v-1); LE(-1) is trivial.
    shifted = np.zeros(c, dtype=np.int64)
    shifted[1:] = le_cost[: c - 1]
    total = 2 * le_cost.sum() + 2 * shifted.sum() + 2 * eq.sum()
    return float(total) / (6 * c)


def expected_scans_weighted(
    base: Base,
    cardinality: int,
    weights: np.ndarray,
    encoding: EncodingScheme = EncodingScheme.RANGE,
    algorithm: str = "auto",
) -> float:
    """Expected scans when predicate *constants* are drawn non-uniformly.

    ``weights[v]`` is the (unnormalized) probability of constant ``v``;
    operators stay uniform, matching the paper's query model except for
    the constant distribution.  Used by the ``ablation_query_skew``
    experiment to probe how robust the Section 6–7 characterizations are
    to skewed workloads.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != cardinality:
        raise InvalidPredicateError(
            f"need one weight per value: got {len(weights)} for C={cardinality}"
        )
    if weights.min() < 0 or weights.sum() <= 0:
        raise InvalidPredicateError("weights must be non-negative, not all zero")
    if algorithm == "auto":
        if encoding is EncodingScheme.RANGE:
            algorithm = "range_eval_opt"
        elif encoding is EncodingScheme.EQUALITY:
            algorithm = "equality_eval"
        else:
            raise InvalidPredicateError(
                "weighted scans support the paper's two encodings"
            )
    digits = _digit_matrix(base, cardinality)
    c = cardinality

    if algorithm == "range_eval":
        per_value = _eq_scans_range(base, digits).astype(np.float64)
        return float((per_value * weights).sum() / weights.sum())
    if algorithm == "range_eval_opt":
        le = _le_scans_range_opt(base, digits)
        eq = _eq_scans_range(base, digits)
    elif algorithm == "equality_eval":
        le = _le_scans_equality(base, digits)
        eq = np.full(c, base.n, dtype=np.int64)
    else:
        raise InvalidPredicateError(f"unknown algorithm {algorithm!r}")

    le_cost = le.astype(np.float64)
    le_cost[c - 1] = 0.0
    shifted = np.zeros(c)
    shifted[1:] = le_cost[: c - 1]
    per_value = (2 * le_cost + 2 * shifted + 2 * eq) / 6.0
    return float((per_value * weights).sum() / weights.sum())


def expected_scans_simulated(
    base: Base,
    cardinality: int,
    encoding: EncodingScheme,
    algorithm: str = "auto",
) -> float:
    """Exact expected scans by running the real evaluator on a 1-row index.

    The evaluation algorithms' control flow — and therefore their scan
    count — depends only on the predicate's digits, never on bitmap
    contents, so a single-row index gives exact per-query costs at
    negligible expense.  This covers encodings without an arithmetic
    mirror (interval encoding) and doubles as an independent check of
    :func:`expected_scans` in the test suite.
    """
    # Imported here: costmodel is a dependency of evaluation's callers,
    # and this helper is the one place the direction reverses.
    from repro.core.evaluation import OPERATORS, Predicate, evaluate
    from repro.core.index import BitmapIndex
    from repro.stats import ExecutionStats

    index = BitmapIndex(
        np.zeros(1, dtype=np.int64), cardinality, base, encoding,
        keep_values=False,
    )
    total = 0
    count = 0
    for op in OPERATORS:
        for v in range(cardinality):
            stats = ExecutionStats()
            evaluate(index, Predicate(op, v), algorithm=algorithm, stats=stats)
            total += stats.scans
            count += 1
    return total / count


def scans_for_predicate(
    base: Base,
    cardinality: int,
    op: str,
    value: int,
    encoding: EncodingScheme = EncodingScheme.RANGE,
    algorithm: str = "auto",
) -> int:
    """Arithmetic scan count for a single predicate (mirrors the evaluators).

    Covers the paper's two encodings; interval encoding has no arithmetic
    mirror (use :func:`expected_scans_simulated` for aggregates).
    """
    if encoding is EncodingScheme.INTERVAL:
        raise InvalidPredicateError(
            "interval encoding has no per-predicate arithmetic mirror; "
            "use expected_scans_simulated"
        )
    if algorithm == "auto":
        algorithm = (
            "range_eval_opt"
            if encoding is EncodingScheme.RANGE
            else "equality_eval"
        )
    c = cardinality
    if value < 0 or value >= c:
        return 0

    if algorithm == "range_eval":
        digits = base.digits(value)
        return sum(
            1 if d in (0, base.component(i + 1) - 1) else 2
            for i, d in enumerate(digits)
        )

    if op in ("=", "!="):
        digits = base.digits(value)
        if algorithm == "equality_eval":
            return base.n
        return sum(
            1 if (base.component(i + 1) == 2 or d in (0, base.component(i + 1) - 1))
            else 2
            for i, d in enumerate(digits)
        )

    # Range operators reduce to LE(w).
    w = value - 1 if op in ("<", ">=") else value
    if w < 0 or w >= c - 1:
        return 0
    digits = base.digits(w)
    total = 0
    for i, d in enumerate(digits):
        b = base.component(i + 1)
        if algorithm == "range_eval_opt":
            if i == 0:
                total += 1 if d < b - 1 else 0
            else:
                total += (1 if d != b - 1 else 0) + (1 if d != 0 else 0)
        else:  # equality_eval
            total += _equality_range_scans(d, b, is_component_one=(i == 0))
    return total
