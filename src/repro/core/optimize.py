"""Optimal bitmap-index design (paper Sections 6–8).

Identifies the four interesting points of the space-time tradeoff graph
(the paper's Figure 2):

- (A) the **space-optimal** index — :func:`space_optimal_base`;
- (D) the **time-optimal** index — :func:`time_optimal_base`;
- (C) the **knee** — :func:`knee_base` (Theorem 7.1) and the
  definition-based :func:`find_knee`;
- (B) the **time-optimal index under a space constraint** —
  :func:`time_optimal_under_space` (Algorithm ``TimeOptAlg``) and
  :func:`time_optimal_under_space_heuristic` (Algorithm ``TimeOptHeur`` =
  ``FindSmallestN`` + ``RefineIndex``).

All results here are for *range-encoded* indexes, which Section 5 shows to
dominate equality encoding; space/time are the Theorem 5.1 metrics from
:mod:`repro.core.costmodel`.

Base-sequence convention: a multiset of base numbers is arranged with its
*largest* number on component 1 (the least significant digit).  Under
Eq. (4) this arrangement is the most time-efficient for a given multiset,
since ``Time`` decreases in ``b_1`` with the multiset fixed.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core import costmodel
from repro.core.decomposition import Base, integer_nth_root_ceil, product
from repro.errors import InvalidBaseError, OptimizationError


@dataclass(frozen=True)
class DesignPoint:
    """One index design with its cost-model coordinates."""

    base: Base
    space: int
    time: float

    @classmethod
    def of(cls, base: Base) -> "DesignPoint":
        return cls(base, costmodel.space_range(base), costmodel.time_range(base))


def _arranged(multiset: tuple[int, ...]) -> Base:
    """Arrange a multiset of base numbers with the largest on component 1."""
    return Base(tuple(sorted(multiset)))


def max_components(cardinality: int) -> int:
    """Largest useful component count: ``ceil(log2 C)`` (all bases = 2)."""
    if cardinality < 2:
        raise InvalidBaseError("cardinality must be at least 2")
    return (cardinality - 1).bit_length() if cardinality > 2 else 1


# ----------------------------------------------------------------------
# Theorem 6.1 — space-optimal and time-optimal indexes
# ----------------------------------------------------------------------


def space_optimal_base(cardinality: int, n: int) -> Base:
    """The n-component space-optimal base (Theorem 6.1(1)).

    With ``b = ceil(C^(1/n))`` and ``r`` the smallest positive integer such
    that ``b^r (b-1)^(n-r) >= C``, the base is ``n - r`` copies of
    ``b - 1`` and ``r`` copies of ``b`` (the larger numbers on the less
    significant components), storing ``n (b - 2) + r`` bitmaps.
    """
    _check_n(cardinality, n)
    b = integer_nth_root_ceil(cardinality, n)
    r = next(
        r
        for r in range(1, n + 1)
        if b**r * (b - 1) ** (n - r) >= cardinality
    )
    if b - 1 < 2 and n - r > 0:
        raise InvalidBaseError(
            f"{n} components cannot cover cardinality {cardinality} with "
            f"well-defined bases"
        )
    return Base((b - 1,) * (n - r) + (b,) * r)


def space_optimal_bitmaps(cardinality: int, n: int) -> int:
    """Stored bitmaps of the n-component space-optimal index: ``n(b-2)+r``."""
    return costmodel.space_range(space_optimal_base(cardinality, n))


def time_optimal_base(cardinality: int, n: int) -> Base:
    """The n-component time-optimal base (Theorem 6.1(3)).

    ``<2, …, 2, ceil(C / 2^(n-1))>`` — ``n - 1`` binary components and one
    large base on component 1.
    """
    _check_n(cardinality, n)
    big = -(-cardinality // 2 ** (n - 1))  # ceil division
    if big < 2:
        raise InvalidBaseError(
            f"{n} components exceed the useful maximum for C={cardinality}"
        )
    return Base((2,) * (n - 1) + (big,))


def global_space_optimal_base(cardinality: int) -> Base:
    """The overall space-optimal index: base 2, ``ceil(log2 C)`` components."""
    return space_optimal_base(cardinality, max_components(cardinality))


def global_time_optimal_base(cardinality: int) -> Base:
    """The overall time-optimal index: the single-component base ``<C>``."""
    return time_optimal_base(cardinality, 1)


def _check_n(cardinality: int, n: int) -> None:
    if cardinality < 2:
        raise InvalidBaseError("cardinality must be at least 2")
    if not 1 <= n <= max_components(cardinality):
        raise InvalidBaseError(
            f"component count {n} outside 1..{max_components(cardinality)} "
            f"for cardinality {cardinality}"
        )


# ----------------------------------------------------------------------
# Theorem 7.1 — the knee
# ----------------------------------------------------------------------


def knee_base(cardinality: int) -> Base:
    """The paper's knee characterization (Theorem 7.1).

    The most time-efficient 2-component space-optimal index:
    ``<b2 - d, b1 + d>`` with ``b1 = ceil(sqrt(C))``, ``b2 = ceil(C/b1)``,
    and ``d = max(floor((b2 - b1 + sqrt((b2 + b1)^2 - 4C)) / 2), 0)``,
    clamped so both base numbers stay well-defined.
    """
    if cardinality < 2:
        raise InvalidBaseError("cardinality must be at least 2")
    if cardinality == 2:
        return Base((2,))
    b1 = integer_nth_root_ceil(cardinality, 2)
    b2 = -(-cardinality // b1)
    disc = (b2 + b1) ** 2 - 4 * cardinality
    delta = max(int((b2 - b1 + math.isqrt(disc)) // 2), 0) if disc >= 0 else 0
    delta = min(delta, b2 - 2)
    # Guard against integer-sqrt boundary effects: the adjusted pair must
    # still cover C; back off until it does.
    while delta > 0 and (b2 - delta) * (b1 + delta) < cardinality:
        delta -= 1
    return Base((b2 - delta, b1 + delta))


def find_knee(points: list[DesignPoint]) -> DesignPoint:
    """The knee by the paper's Section 7 gradient definition.

    ``points`` are the optimal (Pareto) indexes sorted by increasing
    space.  With normalizing factor ``F = Space(I_p) / Time(I_1)``, the
    knee is the interior point with ``LG > 1 and RG < 1`` maximizing
    ``LG / RG``, where LG/RG are the normalized gradients of the adjacent
    segments.  Falls back to the best LG/RG ratio when no point satisfies
    both threshold conditions (possible on very small graphs).
    """
    if not points:
        raise OptimizationError("cannot find the knee of an empty graph")
    if len(points) < 3:
        return points[0]
    pts = sorted(points, key=lambda p: (p.space, p.time))
    factor = pts[-1].space / pts[0].time
    best: DesignPoint | None = None
    best_ratio = -math.inf
    fallback: DesignPoint | None = None
    fallback_ratio = -math.inf
    for j in range(1, len(pts) - 1):
        left, mid, right = pts[j - 1], pts[j], pts[j + 1]
        if right.space == mid.space or mid.space == left.space:
            continue
        rg = (mid.time - right.time) / (right.space - mid.space) * factor
        lg = (left.time - mid.time) / (mid.space - left.space) * factor
        if rg <= 0:
            continue
        ratio = lg / rg
        if lg > 1 and rg < 1 and ratio > best_ratio:
            best, best_ratio = mid, ratio
        if ratio > fallback_ratio:
            fallback, fallback_ratio = mid, ratio
    if best is not None:
        return best
    if fallback is not None:
        return fallback
    return pts[len(pts) // 2]


# ----------------------------------------------------------------------
# Design-space enumeration
# ----------------------------------------------------------------------


def enumerate_bases(
    cardinality: int,
    max_space: int | None = None,
    exact_n: int | None = None,
    tight_only: bool = False,
    necessary_only: bool = True,
) -> Iterator[Base]:
    """Enumerate index bases covering ``cardinality``.

    Bases are yielded as arranged :class:`Base` objects (largest number on
    component 1); each *multiset* of base numbers appears exactly once.

    Parameters
    ----------
    max_space:
        Only bases storing at most this many bitmaps (``sum(b_i - 1)``).
    exact_n:
        Only bases with exactly this many components.
    tight_only:
        Only bases where no single base number can be decreased without
        dropping coverage — the Pareto-relevant subset (decreasing a base
        number reduces both space and Eq.-(4) time).
    necessary_only:
        Only bases where every component is needed for coverage (dropping
        the smallest base number loses coverage).  Ignored when
        ``max_space`` bounds the universe and the caller wants the paper's
        unrestricted candidate count (pass ``False``).
    """
    if cardinality < 2:
        raise InvalidBaseError("cardinality must be at least 2")
    restrict = tight_only or necessary_only
    if max_space is None and not restrict:
        raise OptimizationError(
            "unbounded enumeration: give max_space or a tightness filter"
        )
    budget = max_space if max_space is not None else cardinality - 1
    top_limit = min(cardinality, budget + 1) if restrict else budget + 1

    def rec(
        prefix: tuple[int, ...], prod: int, space_used: int, limit: int
    ) -> Iterator[tuple[int, ...]]:
        covered = prod >= cardinality
        if covered and prefix and (exact_n is None or len(prefix) == exact_n):
            yield prefix
        if covered and restrict:
            # Any extension would contain an unnecessary component.
            return
        if exact_n is not None and len(prefix) >= exact_n:
            return
        remaining = budget - space_used
        if remaining <= 0:
            return
        if not covered and prod * (1 << remaining) < cardinality:
            return  # even all-binary extensions cannot reach coverage
        for b in range(2, min(limit, remaining + 1) + 1):
            yield from rec(prefix + (b,), prod * b, space_used + b - 1, b)

    for multiset in rec((), 1, 0, top_limit):
        if tight_only:
            p = product(multiset)
            bmax = multiset[0]
            if p * (bmax - 1) >= cardinality * bmax:
                continue
        yield _arranged(multiset)


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset, sorted by space (ties keep the faster index)."""
    best: dict[int, DesignPoint] = {}
    for p in points:
        cur = best.get(p.space)
        if cur is None or p.time < cur.time:
            best[p.space] = p
    front: list[DesignPoint] = []
    min_time = math.inf
    for space_value in sorted(best):
        p = best[space_value]
        if p.time < min_time:
            front.append(p)
            min_time = p.time
    return front


def design_space(
    cardinality: int, tight_only: bool = True
) -> list[DesignPoint]:
    """All (tight) designs with their cost coordinates — the Figure 9/10 cloud."""
    return [
        DesignPoint.of(base)
        for base in enumerate_bases(cardinality, tight_only=tight_only)
    ]


# ----------------------------------------------------------------------
# Section 8 — time-optimal index under a space constraint
# ----------------------------------------------------------------------


def find_smallest_n(max_bitmaps: int, cardinality: int) -> tuple[int, Base]:
    """Algorithm ``FindSmallestN``.

    Returns the smallest component count ``n`` whose space-optimal index
    fits in ``max_bitmaps``, together with an n-component seed index whose
    space is *exactly* ``max_bitmaps``: ``n - r`` components of base ``b``
    and ``r`` of base ``b + 1`` with ``b = (M + n) // n``,
    ``r = (M + n) mod n``.
    """
    _check_budget(max_bitmaps, cardinality)
    n = 0
    while True:
        n += 1
        b = (max_bitmaps + n) // n
        r = (max_bitmaps + n) % n
        if b < 2:
            raise OptimizationError(
                f"no index with at most {max_bitmaps} bitmaps covers "
                f"cardinality {cardinality}"
            )
        if (b + 1) ** r * b ** (n - r) >= cardinality:
            return n, Base((b,) * (n - r) + (b + 1,) * r)


def refine_index(base: Base, cardinality: int) -> Base:
    """Algorithm ``RefineIndex`` (Theorem 8.1).

    Improves time-efficiency without increasing space: repeatedly shifts
    mass ``delta`` from the smallest base number ``b_p`` to the next
    smallest ``b_q`` (``b_p -> b_p - delta``, ``b_q -> b_q + delta``),
    choosing the largest ``delta`` that keeps coverage, then shrinks
    component 1 to the minimum that still covers ``cardinality``.
    """
    work = sorted(base.bases)
    n = len(work)
    prod = product(work)
    fixed: list[int] = []  # bases for components n, n-1, …, 2 in turn

    for _ in range(n - 1):
        work.sort()
        bp = work.pop(0)
        if bp > 2 and work:
            bq = work[0]
            target = cardinality * bp * bq  # need (bp-d)(bq+d) * prod >= target
            delta = _largest_delta(bp, bq, prod, target)
            if delta > 0:
                prod = (prod // (bp * bq)) * (bp - delta) * (bq + delta)
                work[0] = bq + delta
                bp -= delta
        fixed.append(bp)

    rest = product(fixed)
    b1 = max(2, -(-cardinality // rest))
    return Base(tuple(fixed) + (b1,))


def _largest_delta(bp: int, bq: int, prod: int, target: int) -> int:
    """Largest ``delta`` in ``[0, bp - 2]`` with ``(bp-d)(bq+d)·prod >= target``."""
    disc = (bp + bq) ** 2 - 4 * (target // prod + (1 if target % prod else 0))
    if disc >= 0:
        delta = (bp - bq + math.isqrt(disc)) // 2
    else:
        delta = 0
    delta = max(0, min(delta, bp - 2))
    while delta > 0 and (bp - delta) * (bq + delta) * prod < target:
        delta -= 1
    while delta < bp - 2 and (bp - delta - 1) * (bq + delta + 1) * prod >= target:
        delta += 1
    return delta


def time_optimal_under_space(max_bitmaps: int, cardinality: int) -> Base:
    """Algorithm ``TimeOptAlg`` — the exact optimum under a space budget.

    Searches component counts between the smallest feasible ``n`` (from
    the space-optimal family) and the smallest ``n'`` whose time-optimal
    index fits; inside that window every candidate multiset is enumerated
    (restricted, without loss of optimality, to tight bases).
    """
    _check_budget(max_bitmaps, cardinality)
    n0 = _smallest_feasible_n(max_bitmaps, cardinality)
    if costmodel.space_range(time_optimal_base(cardinality, n0)) <= max_bitmaps:
        return time_optimal_base(cardinality, n0)
    n1 = _smallest_time_optimal_fit(max_bitmaps, cardinality, n0)
    best = time_optimal_base(cardinality, n1)
    best_time = costmodel.time_range(best)
    for k in range(n0, n1):
        for candidate in enumerate_bases(
            cardinality, max_space=max_bitmaps, exact_n=k, tight_only=True
        ):
            t = costmodel.time_range(candidate)
            if t < best_time:
                best, best_time = candidate, t
    return best


def time_optimal_under_space_heuristic(
    max_bitmaps: int, cardinality: int
) -> Base:
    """Algorithm ``TimeOptHeur`` — the near-optimal O(log C log log C) search."""
    n, seed = find_smallest_n(max_bitmaps, cardinality)
    candidate = time_optimal_base(cardinality, n)
    if costmodel.space_range(candidate) <= max_bitmaps:
        return candidate
    return refine_index(seed, cardinality)


def candidate_set_size(max_bitmaps: int, cardinality: int) -> int:
    """Size of ``TimeOptAlg``'s candidate set **I** (the paper's Figure 14).

    Counts every k-component multiset with coverage and space at most the
    budget for ``n <= k < n'``, plus the ``n'``-component time-optimal
    index; 1 when the algorithm returns at its early exit.
    """
    _check_budget(max_bitmaps, cardinality)
    n0 = _smallest_feasible_n(max_bitmaps, cardinality)
    if costmodel.space_range(time_optimal_base(cardinality, n0)) <= max_bitmaps:
        return 1
    n1 = _smallest_time_optimal_fit(max_bitmaps, cardinality, n0)
    count = 1  # the n1-component time-optimal index
    for k in range(n0, n1):
        count += sum(
            1
            for _ in enumerate_bases(
                cardinality,
                max_space=max_bitmaps,
                exact_n=k,
                tight_only=False,
                necessary_only=False,
            )
        )
    return count


def _smallest_feasible_n(max_bitmaps: int, cardinality: int) -> int:
    for n in range(1, max_components(cardinality) + 1):
        if space_optimal_bitmaps(cardinality, n) <= max_bitmaps:
            return n
    raise OptimizationError(
        f"space budget of {max_bitmaps} bitmaps is below the global "
        f"minimum for cardinality {cardinality}"
    )


def _smallest_time_optimal_fit(
    max_bitmaps: int, cardinality: int, n_start: int
) -> int:
    for n in range(n_start, max_components(cardinality) + 1):
        if costmodel.space_range(time_optimal_base(cardinality, n)) <= max_bitmaps:
            return n
    raise OptimizationError(
        f"space budget of {max_bitmaps} bitmaps is below the global "
        f"minimum for cardinality {cardinality}"
    )


def _check_budget(max_bitmaps: int, cardinality: int) -> None:
    minimum = max_components(cardinality)
    if max_bitmaps < minimum:
        raise OptimizationError(
            f"space budget {max_bitmaps} is below the minimum of {minimum} "
            f"bitmaps (the base-2 index) for cardinality {cardinality}"
        )
