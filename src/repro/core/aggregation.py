"""Bit-sliced aggregation (the Bit-Sliced index's second job).

The paper notes that the Bit-Sliced index "is also used in Sybase IQ for
evaluating range predicates and performing aggregation" (Section 2,
citing O'Neil & Quass).  This module implements that aggregation
machinery over binary bit slices: slice ``j`` is the bitmap of records
whose value has bit ``j`` set, so

``SUM(A | F) = sum_j 2^j * count(B_j AND F)``

for any foundset bitmap ``F`` — one popcount per slice instead of a
relation scan.  COUNT, AVG, MIN, and MAX follow; MIN/MAX descend the
slices from the most significant bit, narrowing the candidate set.

A :class:`BitSlicedAggregator` is standalone (built straight from a value
column) but is bit-compatible with the base-2 *equality-encoded*
:class:`~repro.core.index.BitmapIndex`: its slices are exactly that
index's stored bitmaps, which :meth:`BitSlicedAggregator.from_index`
exploits to aggregate over an existing index without re-encoding.
"""

from __future__ import annotations

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.errors import ReproError, ValueOutOfRangeError


class EmptyFoundsetError(ReproError):
    """MIN/MAX/AVG were asked for over an empty foundset."""


class BitSlicedAggregator:
    """Aggregate a non-negative integer column through its bit slices."""

    def __init__(self, slices: list[BitVector], num_rows: int):
        for bitmap in slices:
            if bitmap.nbits != num_rows:
                raise ValueOutOfRangeError("slice length does not match rows")
        self._slices = slices
        self.num_rows = num_rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: np.ndarray) -> "BitSlicedAggregator":
        """Build the slices of a non-negative integer column."""
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        if values.size and values.min() < 0:
            raise ValueOutOfRangeError("bit-sliced aggregation needs values >= 0")
        width = int(values.max()).bit_length() if values.size else 1
        width = max(width, 1)
        slices = [
            BitVector.from_bools(((values >> j) & 1).astype(bool))
            for j in range(width)
        ]
        return cls(slices, len(values))

    @classmethod
    def from_index(cls, index: BitmapIndex) -> "BitSlicedAggregator":
        """Reuse the bitmaps of a base-2 equality-encoded index as slices.

        Component ``i`` of such an index stores exactly bit ``i - 1`` of
        the value, so no re-encoding is needed.
        """
        if index.encoding is not EncodingScheme.EQUALITY:
            raise ValueOutOfRangeError(
                "slice reuse needs an equality-encoded index"
            )
        if any(b != 2 for b in index.base.bases):
            raise ValueOutOfRangeError("slice reuse needs an all-base-2 index")
        slices = [
            index.components[i].bitmap(1) for i in range(index.base.n)
        ]
        return cls(slices, index.nbits)

    @property
    def num_slices(self) -> int:
        return len(self._slices)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def _resolve(self, foundset: BitVector | None) -> BitVector | None:
        if foundset is not None and foundset.nbits != self.num_rows:
            raise ValueOutOfRangeError("foundset length does not match rows")
        return foundset

    def count(self, foundset: BitVector | None = None) -> int:
        """Number of qualifying rows."""
        foundset = self._resolve(foundset)
        return foundset.count() if foundset is not None else self.num_rows

    def sum(self, foundset: BitVector | None = None) -> int:
        """``SUM(A)`` over the foundset: one AND + popcount per slice."""
        foundset = self._resolve(foundset)
        total = 0
        for j, bitmap in enumerate(self._slices):
            sliced = bitmap if foundset is None else (bitmap & foundset)
            total += sliced.count() << j
        return total

    def average(self, foundset: BitVector | None = None) -> float:
        """``AVG(A)`` over the foundset."""
        n = self.count(foundset)
        if n == 0:
            raise EmptyFoundsetError("AVG over an empty foundset")
        return self.sum(foundset) / n

    def maximum(self, foundset: BitVector | None = None) -> int:
        """``MAX(A)``: descend slices, preferring rows with the bit set."""
        candidates = self._initial_candidates(foundset)
        value = 0
        for j in range(self.num_slices - 1, -1, -1):
            ones = candidates & self._slices[j]
            if ones.any():
                candidates = ones
                value |= 1 << j
        return value

    def minimum(self, foundset: BitVector | None = None) -> int:
        """``MIN(A)``: descend slices, preferring rows with the bit clear."""
        candidates = self._initial_candidates(foundset)
        value = 0
        for j in range(self.num_slices - 1, -1, -1):
            zeros = candidates.andnot(self._slices[j])
            if zeros.any():
                candidates = zeros
            else:
                value |= 1 << j
        return value

    def _initial_candidates(self, foundset: BitVector | None) -> BitVector:
        foundset = self._resolve(foundset)
        candidates = (
            foundset.copy() if foundset is not None else BitVector.ones(self.num_rows)
        )
        if not candidates.any():
            raise EmptyFoundsetError("MIN/MAX over an empty foundset")
        return candidates
