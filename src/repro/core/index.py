"""The bitmap index: n decomposed components, each equality- or range-encoded.

:class:`BitmapIndex` is the central object of the library.  It is built from
a column of values, a decomposition :class:`~repro.core.decomposition.Base`,
and an :class:`~repro.core.encoding.EncodingScheme`, and implements the
*bitmap source* protocol consumed by the evaluation algorithms
(:mod:`repro.core.evaluation`): ``fetch(component, slot, stats)`` returns a
stored bitmap and records one scan.

The paper assumes attribute values are consecutive integers ``0 .. C-1``;
for the general case it prescribes a lookup table mapping actual values to
ranks (Section 2).  :meth:`BitmapIndex.for_column` implements exactly that:
it factorizes an arbitrary value column and keeps the sorted-value
dictionary so predicates on original values can be translated to rank
predicates (order-preserving, so range predicates survive translation).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.decomposition import Base
from repro.core.encoding import (
    EncodingScheme,
    build_component,
    stored_bitmap_count,
)
from repro.errors import InvalidBaseError, ValueOutOfRangeError
from repro.stats import ExecutionStats


@runtime_checkable
class BitmapSource(Protocol):
    """What the evaluation algorithms need from an index-like object.

    Implemented by :class:`BitmapIndex` (in memory), the storage schemes of
    :mod:`repro.storage.schemes` (simulated disk), and the buffer pool of
    :mod:`repro.storage.buffer`.

    A source's ``bitmap_codec`` attribute names the representation it
    serves — ``"dense"`` (:class:`BitVector`), ``"wah"``
    (:class:`~repro.bitmaps.compressed.WahBitVector`), or ``"roaring"``
    (:class:`~repro.bitmaps.roaring.RoaringBitmap`) — for every bitmap it
    returns, including ``nonnull``.  The evaluation algorithms are generic
    over the three algebras and synthesize their virtual all-zero/all-one
    bitmaps in whichever representation the source declares.  The boolean
    ``compressed`` flag is kept for cost-model and reporting paths that
    only care about dense vs. compressed-domain execution.
    """

    nbits: int
    cardinality: int
    base: Base
    encoding: EncodingScheme
    nonnull: BitVector | WahBitVector | RoaringBitmap | None
    compressed: bool
    bitmap_codec: str

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector | WahBitVector | RoaringBitmap:
        """Read stored bitmap ``slot`` of ``component`` (1-based), recording a scan."""
        ...


#: Compressed in-memory representations an index can serve, by codec name.
_COMPRESSED_CLASSES: dict[str, type] = {
    "wah": WahBitVector,
    "roaring": RoaringBitmap,
}


class BitmapIndex:
    """An n-component bitmap index over an integer column in ``[0, C)``.

    Parameters
    ----------
    values:
        Integer array of attribute values (ranks), one per record.
    cardinality:
        Attribute cardinality ``C``.  Values must lie in ``[0, C)``.
    base:
        Decomposition base; must cover ``C``.  Defaults to the
        single-component base ``<C>`` (the classical Value-List /
        Bit-Sliced shape, depending on encoding).
    encoding:
        Equality or range encoding, applied to every component.
    nulls:
        Optional boolean mask marking NULL records.  NULL records are
        encoded as digit 0 everywhere but masked out of every query result
        through the ``B_nn`` bitmap, as in the paper's algorithms.
    keep_values:
        Keep the raw value column for verification via :meth:`naive_eval`
        (default on; switch off to save memory in large experiments).
    """

    def __init__(
        self,
        values: np.ndarray,
        cardinality: int,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        nulls: np.ndarray | None = None,
        keep_values: bool = True,
    ):
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        if cardinality < 2:
            raise InvalidBaseError("attribute cardinality must be at least 2")
        if base is None:
            base = Base.single(cardinality)
        if not base.covers(cardinality):
            raise InvalidBaseError(
                f"base {base} (capacity {base.capacity}) cannot represent "
                f"cardinality {cardinality}"
            )
        encode_values = values
        if nulls is not None:
            nulls = np.asarray(nulls, dtype=bool)
            if nulls.shape != values.shape:
                raise ValueOutOfRangeError("nulls mask must match values shape")
            encode_values = np.where(nulls, 0, values)
            self.nonnull: BitVector | None = BitVector.from_bools(~nulls)
        else:
            self.nonnull = None
        if encode_values.size and (
            encode_values.min() < 0 or encode_values.max() >= cardinality
        ):
            raise ValueOutOfRangeError(
                f"values outside [0, {cardinality})"
            )

        self.nbits = len(values)
        self.cardinality = cardinality
        self.base = base
        self.encoding = encoding
        digit_columns = base.digit_arrays(encode_values)
        # components[0] is component 1 (least significant), matching the
        # paper's numbering used throughout evaluation and cost model.
        self.components = [
            build_component(digit_columns[i], base.component(i + 1), encoding)
            for i in range(base.n)
        ]
        self._values = values.copy() if keep_values else None
        self._nulls = nulls.copy() if nulls is not None else None
        # Bumped by every maintenance operation; consumers holding derived
        # artifacts (shared-memory publications, serialized snapshots)
        # compare versions to detect staleness.
        self.version = 0
        # Lazily encoded compressed bitmaps for the compressed execution
        # modes, keyed by (codec, component, slot); invalidated by
        # maintenance.
        self._encoded_bitmaps: dict[
            tuple[str, int, int], WahBitVector | RoaringBitmap
        ] = {}

    # ------------------------------------------------------------------
    # Construction from arbitrary (non-consecutive) values
    # ------------------------------------------------------------------

    @classmethod
    def for_column(
        cls,
        column: np.ndarray,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        nulls: np.ndarray | None = None,
    ) -> "BitmapIndex":
        """Build an index over arbitrary orderable values.

        The distinct values are ranked (the paper's lookup-table approach);
        the sorted dictionary is kept on the returned index as
        :attr:`value_dictionary` and used by :meth:`rank_of` to translate
        predicates on original values.
        """
        column = np.asarray(column)
        if nulls is not None:
            nulls = np.asarray(nulls, dtype=bool)
            fill = column[~nulls][0] if (~nulls).any() else column[0]
            effective = np.where(nulls, fill, column)
        else:
            effective = column
        dictionary, ranks = np.unique(effective, return_inverse=True)
        if len(dictionary) < 2:
            raise InvalidBaseError(
                "column has fewer than 2 distinct values; a bitmap index "
                "needs attribute cardinality >= 2"
            )
        index = cls(
            ranks,
            cardinality=len(dictionary),
            base=base,
            encoding=encoding,
            nulls=nulls,
        )
        index.value_dictionary = dictionary
        return index

    value_dictionary: np.ndarray | None = None

    def rank_of(self, value, side: str = "left") -> int:
        """Translate an original value to a rank for predicate evaluation.

        For a value present in the dictionary this is its rank.  For an
        absent value, ``side='left'`` returns the rank of the smallest
        dictionary value ``>= value`` (suitable for ``>=``/``<``
        predicates) and ``side='right'`` returns that rank minus one is
        handled by the caller via the usual ``searchsorted`` convention.
        """
        if self.value_dictionary is None:
            return int(value)
        return int(np.searchsorted(self.value_dictionary, value, side=side))

    # ------------------------------------------------------------------
    # Bitmap source protocol
    # ------------------------------------------------------------------

    #: In-memory indexes serve dense bitmaps by default; wrap with
    #: :meth:`as_compressed` for a compressed-domain execution mode.
    compressed = False
    bitmap_codec = "dense"

    def fetch(
        self,
        component: int,
        slot: int,
        stats: ExecutionStats,
        compressed: bool = False,
        codec: str | None = None,
    ) -> BitVector | WahBitVector | RoaringBitmap:
        """Return stored bitmap ``slot`` of ``component``, recording one scan.

        With ``codec="wah"`` or ``codec="roaring"`` the bitmap is served in
        that compressed representation (encoded lazily on first access and
        memoized), and the scan is charged at the compressed payload size —
        the bytes a codec-aware storage layer would actually move.  The
        legacy ``compressed=True`` flag is shorthand for ``codec="wah"``.
        """
        if codec is None:
            codec = "wah" if compressed else "dense"
        trace = stats.trace
        if codec != "dense":
            cls = _COMPRESSED_CLASSES[codec]
            key = (codec, component, slot)
            bitmap = self._encoded_bitmaps.get(key)
            encoded = bitmap is None
            if encoded:
                if trace is not None:
                    with trace.span(
                        f"{codec}.encode",
                        kind="decode",
                        component=component,
                        slot=slot,
                    ):
                        bitmap = cls.from_bitvector(
                            self.components[component - 1].bitmap(slot)
                        )
                else:
                    bitmap = cls.from_bitvector(
                        self.components[component - 1].bitmap(slot)
                    )
                self._encoded_bitmaps[key] = bitmap
            stats.record_scan(nbytes=bitmap.nbytes)
            if trace is not None:
                trace.event(
                    "index.fetch",
                    kind="fetch",
                    component=component,
                    slot=slot,
                    nbytes=bitmap.nbytes,
                    source=f"index.{codec}",
                    encoded=encoded,
                )
            return bitmap
        comp = self.components[component - 1]
        bitmap = comp.bitmap(slot)
        stats.record_scan(nbytes=bitmap.nbytes)
        if trace is not None:
            trace.event(
                "index.fetch",
                kind="fetch",
                component=component,
                slot=slot,
                nbytes=bitmap.nbytes,
                source="index",
            )
        return bitmap

    def as_compressed(self, codec: str = "wah") -> "CompressedBitmapSource":
        """A :class:`BitmapSource` view serving compressed bitmaps.

        ``codec`` selects the representation (``"wah"`` or ``"roaring"``).
        The view shares this index's storage; encoded payloads are built
        lazily per slot and memoized on the index, so repeated queries pay
        the encode cost once.  Maintenance operations (:meth:`append`,
        :meth:`update`, :meth:`delete`) invalidate the memo.
        """
        return CompressedBitmapSource(self, codec=codec)

    def stored_slots(self, component: int) -> tuple[int, ...]:
        """Stored digit slots of a component (1-based component number)."""
        return self.components[component - 1].stored_slots()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Cardinality of the indexed relation (bits per bitmap)."""
        return self.nbits

    @property
    def num_bitmaps(self) -> int:
        """Stored bitmaps across all components — the paper's space metric."""
        return sum(c.num_stored for c in self.components)

    @property
    def size_in_bits(self) -> int:
        """Uncompressed size: ``num_bitmaps * N`` bits."""
        return self.num_bitmaps * self.nbits

    def expected_bitmaps(self) -> int:
        """Space predicted by Theorem 5.1 (should equal :attr:`num_bitmaps`)."""
        return sum(
            stored_bitmap_count(self.base.component(i + 1), self.encoding)
            for i in range(self.base.n)
        )

    def bit_matrix(self) -> np.ndarray:
        """The index as the paper's ``N x num_bitmaps`` boolean bit-matrix.

        Columns are ordered component 1 first, slots increasing — the
        layout the Index-level Storage scheme serializes row-major.
        """
        columns = []
        for comp in self.components:
            for slot in comp.stored_slots():
                columns.append(comp.bitmap(slot).to_bools())
        return np.column_stack(columns) if columns else np.zeros((self.nbits, 0), bool)

    # ------------------------------------------------------------------
    # Maintenance (extension)
    # ------------------------------------------------------------------
    #
    # The paper targets read-mostly environments precisely because bitmap
    # maintenance is expensive; these methods implement it anyway — and
    # return how many bitmaps each operation touched, which is the
    # quantity behind that motivation (see the `ablation_updates`
    # experiment).

    def append(
        self, values: np.ndarray, nulls: np.ndarray | None = None
    ) -> int:
        """Append new records; returns the number of bitmaps rewritten.

        Every stored bitmap is extended (appends touch all of them — the
        cheap dimension of bitmap maintenance, since it is a sequential
        rewrite).  Values are ranks in ``[0, C)``; growing the value
        dictionary of a :meth:`for_column` index is not supported.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        if nulls is not None:
            nulls = np.asarray(nulls, dtype=bool)
            if nulls.shape != values.shape:
                raise ValueOutOfRangeError("nulls mask must match values shape")
        encode_values = values if nulls is None else np.where(nulls, 0, values)
        if encode_values.size and (
            encode_values.min() < 0 or encode_values.max() >= self.cardinality
        ):
            raise ValueOutOfRangeError(f"values outside [0, {self.cardinality})")
        self._encoded_bitmaps.clear()
        self.version += 1

        if nulls is not None and self.nonnull is None:
            # Start tracking nulls: existing rows are all valid.
            self.track_nulls()
        digit_columns = self.base.digit_arrays(encode_values)
        for i, component in enumerate(self.components):
            component.append_rows(digit_columns[i])
        if self.nonnull is not None:
            new_valid = ~nulls if nulls is not None else np.ones(len(values), bool)
            self.nonnull = BitVector.from_bools(
                np.concatenate((self.nonnull.to_bools(), new_valid))
            )
            if self._nulls is not None:
                appended = nulls if nulls is not None else np.zeros(len(values), bool)
                self._nulls = np.concatenate((self._nulls, appended))
        if self._values is not None:
            self._values = np.concatenate((self._values, values))
        self.nbits += len(values)
        return self.num_bitmaps

    def update(self, rid: int, value: int) -> int:
        """Change one record's value; returns the number of bitmaps touched.

        This is the expensive dimension: a range-encoded component flips
        the record's bit in every bitmap between the old and new digit,
        up to ``b_i - 1`` of them.
        """
        self._check_rid(rid)
        if not 0 <= value < self.cardinality:
            raise ValueOutOfRangeError(f"value outside [0, {self.cardinality})")
        digits = self.base.digits(value)
        touched = 0
        self._encoded_bitmaps.clear()
        self.version += 1
        for i, component in enumerate(self.components):
            touched += component.set_row(rid, digits[i])
        if self.nonnull is not None and not self.nonnull.get(rid):
            self.nonnull.set(rid, True)  # updating a deleted row revives it
            touched += 1
            if self._nulls is not None:
                self._nulls[rid] = False
        if self._values is not None:
            self._values[rid] = value
        return touched

    def delete(self, rid: int) -> int:
        """Logically delete one record via the non-null (existence) bitmap.

        Returns the number of bitmaps touched (1, or 2 on the first delete
        when the existence bitmap is materialized).
        """
        self._check_rid(rid)
        touched = 0
        self._encoded_bitmaps.clear()
        self.version += 1
        if self.nonnull is None:
            self.track_nulls()
            touched += 1
        if self.nonnull.get(rid):
            self.nonnull.set(rid, False)
            touched += 1
        if self._nulls is not None:
            self._nulls[rid] = True
        return touched

    def track_nulls(self) -> bool:
        """Materialize the existence bitmap ``B_nn`` (all rows valid).

        A no-op when the index already tracks nulls.  Sharded execution
        uses this to keep null tracking uniform across shards: the
        evaluators add a ``B_nn`` mask AND only when ``nonnull`` is
        present, so one shard materializing it (e.g. on a delete) must
        drag the others along or per-shard operation counts diverge.
        Returns ``True`` when the bitmap was materialized by this call.
        """
        if self.nonnull is not None:
            return False
        self.nonnull = BitVector.ones(self.nbits)
        self._nulls = np.zeros(self.nbits, dtype=bool)
        self.version += 1
        return True

    def _check_rid(self, rid: int) -> None:
        if not 0 <= rid < self.nbits:
            raise ValueOutOfRangeError(
                f"rid {rid} out of range for {self.nbits} records"
            )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def naive_eval(self, op: str, value: int) -> BitVector:
        """Evaluate ``A op value`` directly on the raw column (ground truth)."""
        if self._values is None:
            raise RuntimeError(
                "index was built with keep_values=False; naive_eval unavailable"
            )
        v = self._values
        if op == "<":
            mask = v < value
        elif op == "<=":
            mask = v <= value
        elif op == "=":
            mask = v == value
        elif op == "!=":
            mask = v != value
        elif op == ">=":
            mask = v >= value
        elif op == ">":
            mask = v > value
        else:
            raise ValueOutOfRangeError(f"unknown operator {op!r}")
        if self._nulls is not None:
            mask = mask & ~self._nulls
        return BitVector.from_bools(mask)

    def __repr__(self) -> str:
        return (
            f"BitmapIndex(N={self.nbits}, C={self.cardinality}, "
            f"base={self.base}, encoding={self.encoding}, "
            f"bitmaps={self.num_bitmaps})"
        )


class CompressedBitmapSource:
    """A compressed :class:`BitmapSource` view over a :class:`BitmapIndex`.

    Serves every bitmap (stored slots and ``nonnull``) in the compressed
    representation named by ``codec`` —
    :class:`~repro.bitmaps.compressed.WahBitVector` or
    :class:`~repro.bitmaps.roaring.RoaringBitmap` — so the evaluation
    algorithms run entirely in the compressed domain.  Encoded payloads
    live in the wrapped index's memo and survive across queries; the view
    itself is a thin stateless adapter, cheap to construct per query.
    """

    compressed = True

    def __init__(self, index: BitmapIndex, codec: str = "wah"):
        if codec not in _COMPRESSED_CLASSES:
            known = ", ".join(sorted(_COMPRESSED_CLASSES))
            raise ValueError(
                f"unknown compressed bitmap codec {codec!r}; expected one "
                f"of: {known}"
            )
        self._index = index
        self.bitmap_codec = codec

    @property
    def nbits(self) -> int:
        return self._index.nbits

    @property
    def cardinality(self) -> int:
        return self._index.cardinality

    @property
    def base(self) -> Base:
        return self._index.base

    @property
    def encoding(self) -> EncodingScheme:
        return self._index.encoding

    @property
    def nonnull(self) -> WahBitVector | RoaringBitmap | None:
        dense = self._index.nonnull
        if dense is None:
            return None
        memo = self._index._encoded_bitmaps
        # Stored slots use 1-based component numbers, so component 0 can
        # never collide with a real slot.
        key = (self.bitmap_codec, 0, 0)
        cached = memo.get(key)
        if cached is None:
            cached = _COMPRESSED_CLASSES[self.bitmap_codec].from_bitvector(dense)
            memo[key] = cached
        return cached

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> WahBitVector | RoaringBitmap:
        return self._index.fetch(component, slot, stats, codec=self.bitmap_codec)

    def stored_slots(self, component: int) -> tuple[int, ...]:
        return self._index.stored_slots(component)

    def __repr__(self) -> str:
        return (
            f"CompressedBitmapSource({self._index!r}, "
            f"codec={self.bitmap_codec!r})"
        )
