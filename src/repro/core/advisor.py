"""A physical-design advisor packaging the paper's guidelines.

The paper closes by calling its results "a useful first set of guidelines
for physical database design using bitmap indexes".  This module turns the
Section 6–10 machinery into one entry point: give it the attribute
cardinality, optionally a disk-space budget (in bitmaps) and a buffer size,
and it returns a concrete recommended design together with the rationale
that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import costmodel
from repro.core.buffering import buffered_time, optimal_assignment
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.optimize import (
    global_space_optimal_base,
    global_time_optimal_base,
    knee_base,
    time_optimal_under_space,
    time_optimal_under_space_heuristic,
)
from repro.errors import OptimizationError

#: Below this candidate-space size the advisor runs the exact algorithm.
_EXACT_SEARCH_CARDINALITY = 256

#: The objectives the advisor knows how to optimize for.
OBJECTIVES = ("knee", "time", "space")


@dataclass(frozen=True)
class IndexDesign:
    """A recommended index design with its predicted costs."""

    base: Base
    encoding: EncodingScheme
    space_bitmaps: int
    expected_scans: float
    buffered_bitmaps: int
    rationale: str

    def __str__(self) -> str:
        return (
            f"base {self.base} ({self.encoding.value}-encoded): "
            f"{self.space_bitmaps} bitmaps, "
            f"{self.expected_scans:.3f} expected scans/query — "
            f"{self.rationale}"
        )


def recommend(
    cardinality: int,
    space_budget: int | None = None,
    buffer_bitmaps: int = 0,
    objective: str = "knee",
    exact: bool | None = None,
) -> IndexDesign:
    """Recommend a range-encoded index design.

    Parameters
    ----------
    cardinality:
        Attribute cardinality ``C``.
    space_budget:
        Maximum stored bitmaps ``M``; ``None`` means unconstrained.
    buffer_bitmaps:
        Bitmaps ``m`` that can stay memory-resident; the predicted scan
        count assumes the Theorem 10.1 optimal assignment.
    objective:
        ``'knee'`` (best space-time tradeoff, the default), ``'time'``
        (fastest queries), or ``'space'`` (smallest index).
    exact:
        Force the exact (``TimeOptAlg``) or heuristic (``TimeOptHeur``)
        space-constrained search; by default the exact search is used for
        small cardinalities only.

    Raises
    ------
    OptimizationError
        If the space budget cannot fit any well-defined index.
    """
    if objective not in OBJECTIVES:
        raise OptimizationError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )

    if objective == "space":
        base = global_space_optimal_base(cardinality)
        rationale = (
            "space-optimal index (Theorem 6.1): base-2 decomposition with "
            "the maximum number of components"
        )
    elif objective == "time":
        if space_budget is None:
            base = global_time_optimal_base(cardinality)
            rationale = (
                "time-optimal index (Theorem 6.1): single-component "
                "Bit-Sliced shape"
            )
        else:
            use_exact = (
                exact
                if exact is not None
                else cardinality <= _EXACT_SEARCH_CARDINALITY
            )
            if use_exact:
                base = time_optimal_under_space(space_budget, cardinality)
                rationale = (
                    f"time-optimal index within {space_budget} bitmaps "
                    f"(Algorithm TimeOptAlg, exact)"
                )
            else:
                base = time_optimal_under_space_heuristic(
                    space_budget, cardinality
                )
                rationale = (
                    f"time-optimal index within {space_budget} bitmaps "
                    f"(Algorithm TimeOptHeur, near-optimal)"
                )
    else:  # knee
        base = knee_base(cardinality)
        rationale = (
            "knee of the space-time tradeoff (Theorem 7.1): the most "
            "time-efficient 2-component space-optimal index"
        )
        if space_budget is not None and costmodel.space_range(base) > space_budget:
            base = time_optimal_under_space_heuristic(space_budget, cardinality)
            rationale = (
                f"knee exceeds the {space_budget}-bitmap budget; fell back "
                f"to Algorithm TimeOptHeur within the budget"
            )

    space = costmodel.space_range(base)
    if space_budget is not None and space > space_budget:
        raise OptimizationError(
            f"objective {objective!r} needs {space} bitmaps, over the "
            f"budget of {space_budget}"
        )
    if buffer_bitmaps > 0:
        scans = buffered_time(base, buffer_bitmaps)
        assignment = optimal_assignment(base, buffer_bitmaps)
        rationale += (
            f"; with {buffer_bitmaps} buffered bitmaps assigned "
            f"{assignment.counts} (Theorem 10.1)"
        )
    else:
        scans = costmodel.time_range(base)
    return IndexDesign(
        base=base,
        encoding=EncodingScheme.RANGE,
        space_bitmaps=space,
        expected_scans=scans,
        buffered_bitmaps=buffer_bitmaps,
        rationale=rationale,
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line advisor: ``python -m repro.core.advisor C [options]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.advisor",
        description="Recommend a bitmap-index design for one attribute.",
    )
    parser.add_argument("cardinality", type=int, help="attribute cardinality C")
    parser.add_argument(
        "--budget", type=int, default=None, help="max stored bitmaps M"
    )
    parser.add_argument(
        "--buffer", type=int, default=0, help="buffered bitmaps m"
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="knee",
        help="design objective (default: knee)",
    )
    parser.add_argument(
        "--exact", action="store_true",
        help="force the exact constrained search (TimeOptAlg)",
    )
    args = parser.parse_args(argv)
    try:
        design = recommend(
            args.cardinality,
            space_budget=args.budget,
            buffer_bitmaps=args.buffer,
            objective=args.objective,
            exact=True if args.exact else None,
        )
    except OptimizationError as exc:
        print(f"error: {exc}")
        return 2
    print(design)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    raise SystemExit(main())
