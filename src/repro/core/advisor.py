"""A physical-design advisor packaging the paper's guidelines.

The paper closes by calling its results "a useful first set of guidelines
for physical database design using bitmap indexes".  This module turns the
Section 6–10 machinery into one entry point: give it the attribute
cardinality, optionally a disk-space budget (in bitmaps) and a buffer size,
and it returns a concrete recommended design together with the rationale
that produced it.

:func:`recommend_codec` extends the guidelines beyond the paper to the
*representation* axis: given a bitmap's expected bit density and
clustering (mean run length of the set bits), it picks the serving codec —
``dense``, ``wah``, or ``roaring`` — either from a measured crossover map
(``benchmarks/bench_codec_crossover.py`` writes one; load it with
:func:`load_crossover_map`) or from the built-in rule distilled from that
benchmark's full-scale run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.core import costmodel
from repro.core.buffering import buffered_time, optimal_assignment
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.optimize import (
    global_space_optimal_base,
    global_time_optimal_base,
    knee_base,
    time_optimal_under_space,
    time_optimal_under_space_heuristic,
)
from repro.errors import OptimizationError

#: Below this candidate-space size the advisor runs the exact algorithm.
_EXACT_SEARCH_CARDINALITY = 256

#: The objectives the advisor knows how to optimize for.
OBJECTIVES = ("knee", "time", "space")


@dataclass(frozen=True)
class IndexDesign:
    """A recommended index design with its predicted costs."""

    base: Base
    encoding: EncodingScheme
    space_bitmaps: int
    expected_scans: float
    buffered_bitmaps: int
    rationale: str

    def __str__(self) -> str:
        return (
            f"base {self.base} ({self.encoding.value}-encoded): "
            f"{self.space_bitmaps} bitmaps, "
            f"{self.expected_scans:.3f} expected scans/query — "
            f"{self.rationale}"
        )


def recommend(
    cardinality: int,
    space_budget: int | None = None,
    buffer_bitmaps: int = 0,
    objective: str = "knee",
    exact: bool | None = None,
) -> IndexDesign:
    """Recommend a range-encoded index design.

    Parameters
    ----------
    cardinality:
        Attribute cardinality ``C``.
    space_budget:
        Maximum stored bitmaps ``M``; ``None`` means unconstrained.
    buffer_bitmaps:
        Bitmaps ``m`` that can stay memory-resident; the predicted scan
        count assumes the Theorem 10.1 optimal assignment.
    objective:
        ``'knee'`` (best space-time tradeoff, the default), ``'time'``
        (fastest queries), or ``'space'`` (smallest index).
    exact:
        Force the exact (``TimeOptAlg``) or heuristic (``TimeOptHeur``)
        space-constrained search; by default the exact search is used for
        small cardinalities only.

    Raises
    ------
    OptimizationError
        If the space budget cannot fit any well-defined index.
    """
    if objective not in OBJECTIVES:
        raise OptimizationError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )

    if objective == "space":
        base = global_space_optimal_base(cardinality)
        rationale = (
            "space-optimal index (Theorem 6.1): base-2 decomposition with "
            "the maximum number of components"
        )
    elif objective == "time":
        if space_budget is None:
            base = global_time_optimal_base(cardinality)
            rationale = (
                "time-optimal index (Theorem 6.1): single-component "
                "Bit-Sliced shape"
            )
        else:
            use_exact = (
                exact
                if exact is not None
                else cardinality <= _EXACT_SEARCH_CARDINALITY
            )
            if use_exact:
                base = time_optimal_under_space(space_budget, cardinality)
                rationale = (
                    f"time-optimal index within {space_budget} bitmaps "
                    f"(Algorithm TimeOptAlg, exact)"
                )
            else:
                base = time_optimal_under_space_heuristic(
                    space_budget, cardinality
                )
                rationale = (
                    f"time-optimal index within {space_budget} bitmaps "
                    f"(Algorithm TimeOptHeur, near-optimal)"
                )
    else:  # knee
        base = knee_base(cardinality)
        rationale = (
            "knee of the space-time tradeoff (Theorem 7.1): the most "
            "time-efficient 2-component space-optimal index"
        )
        if space_budget is not None and costmodel.space_range(base) > space_budget:
            base = time_optimal_under_space_heuristic(space_budget, cardinality)
            rationale = (
                f"knee exceeds the {space_budget}-bitmap budget; fell back "
                f"to Algorithm TimeOptHeur within the budget"
            )

    space = costmodel.space_range(base)
    if space_budget is not None and space > space_budget:
        raise OptimizationError(
            f"objective {objective!r} needs {space} bitmaps, over the "
            f"budget of {space_budget}"
        )
    if buffer_bitmaps > 0:
        scans = buffered_time(base, buffer_bitmaps)
        assignment = optimal_assignment(base, buffer_bitmaps)
        rationale += (
            f"; with {buffer_bitmaps} buffered bitmaps assigned "
            f"{assignment.counts} (Theorem 10.1)"
        )
    else:
        scans = costmodel.time_range(base)
    return IndexDesign(
        base=base,
        encoding=EncodingScheme.RANGE,
        space_bitmaps=space,
        expected_scans=scans,
        buffered_bitmaps=buffer_bitmaps,
        rationale=rationale,
    )


#: Codecs :func:`recommend_codec` can return.
CODEC_CHOICES = ("dense", "wah", "roaring")

#: Above this bit density, compression buys less than the 2x floor the
#: crossover benchmark demands before leaving dense (its uniform 0.1 and
#: 0.5 cells both sit under a 1.0 compression ratio).
_DENSE_DENSITY = 0.05

#: Set-bit runs at least this long put WAH in its run-coded regime, where
#: payloads are smallest and op cost is proportional to runs.
_WAH_RUN = 256


@dataclass(frozen=True)
class CodecChoice:
    """A recommended bitmap representation with its rationale."""

    codec: str
    rationale: str
    source: str  # 'builtin' rule or 'crossover_map'

    def __str__(self) -> str:
        return f"{self.codec} ({self.source}): {self.rationale}"


def load_crossover_map(path: str) -> list[dict]:
    """Load the winning-cell map written by ``bench_codec_crossover.py``.

    Returns the list of cell dicts (each with ``density``,
    ``effective_run``, and ``winner`` among other measurements), validated
    so :func:`recommend_codec` can trust it.
    """
    with open(path) as handle:
        payload = json.load(handle)
    cells = payload.get("crossover_map")
    if not isinstance(cells, list) or not cells:
        raise OptimizationError(
            f"{path!r} has no crossover_map; expected the output of "
            f"benchmarks/bench_codec_crossover.py"
        )
    for cell in cells:
        if not isinstance(cell, dict) or cell.get("winner") not in CODEC_CHOICES:
            raise OptimizationError(f"malformed crossover cell {cell!r} in {path!r}")
        for key in ("density", "effective_run"):
            value = cell.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                raise OptimizationError(
                    f"crossover cell in {path!r} has bad {key}={value!r}"
                )
    return cells


def _effective_run(density: float, clustering: float | None) -> float:
    """One numeric clustering axis covering the uniform case too.

    Uniformly scattered bits still form runs of mean ``1/(1-d)``, so a
    bitmap with no clustering structure maps onto the same axis as an
    explicitly clustered one.
    """
    if clustering is not None:
        return clustering
    return 1.0 / max(1e-9, 1.0 - density)


def recommend_codec(
    density: float,
    clustering: float | None = None,
    crossover_map: list[dict] | None = None,
) -> CodecChoice:
    """Pick the serving codec for a bitmap population.

    Parameters
    ----------
    density:
        Expected fraction of set bits per bitmap, in ``(0, 1]``.  For a
        C-cardinality equality-encoded index this is roughly ``1/C``;
        range-encoded bitmaps average ``1/2``.
    clustering:
        Mean run length (bits) of the set bits — large for sorted or
        chunk-loaded columns, ``None``/small for hash-distributed ones.
    crossover_map:
        Measured cells from :func:`load_crossover_map`; when given, the
        nearest cell (log-scale distance over density and run length)
        decides.  Without it a built-in rule distilled from the
        benchmark's full-scale run applies.
    """
    if not 0.0 < density <= 1.0:
        raise OptimizationError(f"density must be in (0, 1], got {density}")
    if clustering is not None and clustering < 1.0:
        raise OptimizationError(f"clustering must be >= 1 bit, got {clustering}")
    run = _effective_run(density, clustering)

    if crossover_map is not None:
        target = (math.log10(density), math.log10(run))
        best = min(
            crossover_map,
            key=lambda cell: (
                (math.log10(cell["density"]) - target[0]) ** 2
                + (math.log10(cell["effective_run"]) - target[1]) ** 2
            ),
        )
        return CodecChoice(
            codec=best["winner"],
            rationale=(
                f"nearest measured cell (density {best['density']}, run "
                f"{best['effective_run']}) was won by {best['winner']}"
            ),
            source="crossover_map",
        )

    if run >= _WAH_RUN:
        return CodecChoice(
            codec="wah",
            rationale=(
                f"runs average {run:.0f} bits: word-aligned run-length "
                f"coding gives the smallest payloads and run-proportional ops"
            ),
            source="builtin",
        )
    if density >= _DENSE_DENSITY:
        return CodecChoice(
            codec="dense",
            rationale=(
                f"density {density:g} with short runs compresses under "
                f"2x; dense word-parallel ops are fastest"
            ),
            source="builtin",
        )
    return CodecChoice(
        codec="roaring",
        rationale=(
            f"uniform scatter at density {density:g}: array/bitmap "
            f"containers beat WAH's word-at-a-time loop"
        ),
        source="builtin",
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line advisor: ``python -m repro.core.advisor C [options]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.advisor",
        description="Recommend a bitmap-index design for one attribute.",
    )
    parser.add_argument("cardinality", type=int, help="attribute cardinality C")
    parser.add_argument(
        "--budget", type=int, default=None, help="max stored bitmaps M"
    )
    parser.add_argument(
        "--buffer", type=int, default=0, help="buffered bitmaps m"
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="knee",
        help="design objective (default: knee)",
    )
    parser.add_argument(
        "--exact", action="store_true",
        help="force the exact constrained search (TimeOptAlg)",
    )
    args = parser.parse_args(argv)
    try:
        design = recommend(
            args.cardinality,
            space_budget=args.budget,
            buffer_bitmaps=args.buffer,
            objective=args.objective,
            exact=True if args.exact else None,
        )
    except OptimizationError as exc:
        print(f"error: {exc}")
        return 2
    print(design)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    raise SystemExit(main())
