"""Attribute value decomposition — dimension 1 of the paper's design space.

An attribute value ``v`` (an integer in ``[0, C)``) is decomposed into a
sequence of ``n`` digits ``<v_n, …, v_1>`` according to a mixed-radix base
``<b_n, …, b_1>``::

    v = v_n * (b_{n-1} * … * b_1) + … + v_2 * b_1 + v_1,    0 <= v_i < b_i

Component 1 is the *least significant* digit, matching the paper's
numbering.  A base is *well-defined* when every ``b_i >= 2``; it *covers*
cardinality ``C`` when the product of its base numbers is at least ``C``.

The paper's notation writes bases most-significant first
(``<b_n, …, b_1>``); :class:`Base` adopts the same convention for its
constructor and ``repr`` while exposing 1-based, least-significant-first
component access via :meth:`Base.component`.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import InvalidBaseError, ValueOutOfRangeError


class Base:
    """A mixed-radix decomposition base ``<b_n, …, b_1>``.

    Instances are immutable and hashable, so they can be used as dictionary
    keys by the optimization algorithms.

    Parameters
    ----------
    bases:
        Base numbers, most significant first (the paper's notation).
        ``Base((3, 3))`` is the paper's base-``<3, 3>``.
    """

    __slots__ = ("_bases", "_weights")

    def __init__(self, bases: Sequence[int]):
        bases = tuple(int(b) for b in bases)
        if not bases:
            raise InvalidBaseError("a base needs at least one component")
        for b in bases:
            if b < 2:
                raise InvalidBaseError(
                    f"base {bases} is not well-defined: every base number "
                    f"must be >= 2, found {b}"
                )
        self._bases = bases
        # _weights[i] = product of bases strictly less significant than
        # component (i+1), least-significant-first; weight of component 1 is 1.
        weights = []
        acc = 1
        for b in reversed(bases):
            weights.append(acc)
            acc *= b
        self._weights = tuple(weights)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def single(cls, cardinality: int) -> "Base":
        """The 1-component base ``<C>`` (the Value-List / time-optimal shape)."""
        if cardinality < 2:
            raise InvalidBaseError("cardinality must be at least 2")
        return cls((cardinality,))

    @classmethod
    def uniform(cls, b: int, cardinality: int) -> "Base":
        """The smallest uniform base-``b`` index covering ``cardinality``.

        Uses ``n = ceil(log_b C)`` components, as in the paper's Figure 5.
        """
        if b < 2:
            raise InvalidBaseError(f"uniform base number must be >= 2, got {b}")
        if cardinality < 2:
            raise InvalidBaseError("cardinality must be at least 2")
        n = 1
        capacity = b
        while capacity < cardinality:
            n += 1
            capacity *= b
        return cls((b,) * n)

    @classmethod
    def binary(cls, cardinality: int) -> "Base":
        """The base-2 index (the paper's space-optimal shape)."""
        return cls.uniform(2, cardinality)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of components."""
        return len(self._bases)

    @property
    def bases(self) -> tuple[int, ...]:
        """Base numbers, most significant first (paper notation)."""
        return self._bases

    @property
    def capacity(self) -> int:
        """Product of the base numbers — the largest representable count."""
        return self._weights[-1] * self._bases[0]

    def component(self, i: int) -> int:
        """Base number ``b_i`` of component ``i`` (1 = least significant)."""
        if not 1 <= i <= self.n:
            raise IndexError(f"component {i} out of range 1..{self.n}")
        return self._bases[self.n - i]

    def covers(self, cardinality: int) -> bool:
        """``True`` if this base can represent all values in ``[0, cardinality)``."""
        return self.capacity >= cardinality

    def is_uniform(self) -> bool:
        """``True`` if every component has the same base number."""
        return len(set(self._bases)) == 1

    # ------------------------------------------------------------------
    # Decompose / compose
    # ------------------------------------------------------------------

    def digits(self, value: int) -> tuple[int, ...]:
        """Digits ``(v_1, …, v_n)`` of ``value``, least significant first."""
        if not 0 <= value < self.capacity:
            raise ValueOutOfRangeError(
                f"value {value} outside [0, {self.capacity}) for base {self}"
            )
        out = []
        rest = value
        for b in reversed(self._bases):
            out.append(rest % b)
            rest //= b
        return tuple(out)

    def compose(self, digits: Sequence[int]) -> int:
        """Inverse of :meth:`digits`."""
        if len(digits) != self.n:
            raise ValueOutOfRangeError(
                f"expected {self.n} digits for base {self}, got {len(digits)}"
            )
        value = 0
        for i, d in enumerate(digits):  # i = 0 -> component 1
            b = self.component(i + 1)
            if not 0 <= d < b:
                raise ValueOutOfRangeError(
                    f"digit {d} out of range [0, {b}) in component {i + 1}"
                )
            value += d * self._weights[i]
        return value

    def digit_arrays(self, values: np.ndarray) -> list[np.ndarray]:
        """Vectorized :meth:`digits` for a whole column.

        Returns a list of ``n`` integer arrays; entry ``i`` (0-based) holds
        digit ``v_{i+1}`` (component ``i + 1``) for every input value.
        """
        values = np.asarray(values)
        if values.size and (values.min() < 0 or values.max() >= self.capacity):
            raise ValueOutOfRangeError(
                f"values outside [0, {self.capacity}) for base {self}"
            )
        out = []
        rest = values.astype(np.int64, copy=True)
        for i in range(1, self.n + 1):
            b = self.component(i)
            out.append(rest % b)
            rest //= b
        return out

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(self._bases)

    def __len__(self) -> int:
        return len(self._bases)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Base):
            return self._bases == other._bases
        if isinstance(other, tuple):
            return self._bases == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bases)

    def __repr__(self) -> str:
        inner = ", ".join(str(b) for b in self._bases)
        return f"Base(<{inner}>)"


def integer_nth_root_ceil(value: int, n: int) -> int:
    """Smallest integer ``b`` with ``b ** n >= value`` (exact arithmetic).

    Theorem 6.1 needs ``⌈C^(1/n)⌉``; computing it in floats mis-rounds for
    large ``C``, so we correct a float estimate with integer checks.
    """
    if value <= 1:
        return 1
    if n == 1:
        return value
    b = max(1, int(round(value ** (1.0 / n))))
    while b**n >= value:
        b -= 1
    while b**n < value:
        b += 1
    return b


def product(values: Sequence[int]) -> int:
    """Integer product of a sequence (empty product is 1)."""
    return math.prod(values)
