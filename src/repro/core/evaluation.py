"""Selection-query evaluation algorithms over bitmap indexes.

Three algorithms from the paper (Section 3 and Figure 6):

- :func:`range_eval` — Algorithm ``RangeEval`` (O'Neil & Quass' Algorithm
  4.3), the prior state of the art for range-encoded indexes.  It
  incrementally maintains ``B_EQ`` plus ``B_LT``/``B_GT`` over the
  components, which costs roughly twice the bitmap operations and one more
  bitmap scan than necessary for range predicates.
- :func:`range_eval_opt` — Algorithm ``RangeEval-Opt``, the paper's
  improvement.  It rewrites every range predicate in terms of ``<=`` alone
  using the identities ``A < v ≡ A <= v-1``, ``A > v ≡ NOT(A <= v)``,
  ``A >= v ≡ NOT(A <= v-1)`` and computes a single running bitmap.
- :func:`equality_eval` — the evaluator for *equality-encoded* indexes
  (sketched in the paper's Section 5; the full version lived in the
  companion technical report).  Reconstructed here with the complement
  optimization: a per-component ``digit < v_i`` bitmap is built from
  whichever side of the component needs fewer bitmap reads, and the
  ``digit = v_i`` bitmap is reused from the complement scan when possible.

Every algorithm takes any object implementing the
:class:`~repro.core.index.BitmapSource` protocol and an
:class:`~repro.stats.ExecutionStats` to which it charges bitmap scans
(via ``source.fetch``) and logical operations.

The algorithms are generic over the bitmap algebra: a source declares the
representation it serves via its ``bitmap_codec`` attribute (``"dense"``,
``"wah"``, or ``"roaring"``; the legacy ``compressed`` boolean implies
``"wah"``) and the same code paths run entirely in that domain, producing
bit-identical results with identical operation counts (the virtual
all-zero/all-one bitmaps are synthesized in the source's representation
via :func:`_zeros`/:func:`_ones`).

Conventions shared with the paper's cost model:

- Reads of the non-null bitmap ``B_nn`` are not charged as scans.
- Virtual bitmaps (the all-ones top bitmap of a range-encoded component,
  an all-zero ``B_LT`` accumulator before its first update) cost no scan;
  operations against them are charged as performed.
- Predicate constants outside ``[0, C)`` are legal and short-circuit to
  the trivial all/none result without touching the index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapSource
from repro.errors import InvalidPredicateError
from repro.stats import ExecutionStats

#: Any bitmap representation; the algorithms below accept and return
#: whichever one the source serves.
Bitmap = BitVector | WahBitVector | RoaringBitmap

#: Codec name -> the bitmap class that representation uses.
BITMAP_CLASSES: dict[str, type] = {
    "dense": BitVector,
    "wah": WahBitVector,
    "roaring": RoaringBitmap,
}


def source_codec(source: BitmapSource) -> str:
    """The codec name a source serves (``dense``/``wah``/``roaring``).

    Sources predating per-codec selection only expose the boolean
    ``compressed`` flag, which historically meant WAH.
    """
    codec = getattr(source, "bitmap_codec", None)
    if codec is not None:
        return codec
    return "wah" if getattr(source, "compressed", False) else "dense"

#: The six comparison operators of the paper's query class.
OPERATORS = ("<", "<=", "=", "!=", ">=", ">")
RANGE_OPERATORS = ("<", "<=", ">=", ">")
EQUALITY_OPERATORS = ("=", "!=")


@dataclass(frozen=True)
class Predicate:
    """A selection predicate ``A op value``.

    ``op`` is one of ``<  <=  =  !=  >=  >`` and ``value`` an integer.
    """

    op: str
    value: int

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise InvalidPredicateError(
                f"unknown operator {self.op!r}; expected one of {OPERATORS}"
            )

    @property
    def is_range(self) -> bool:
        """``True`` for the four range operators, ``False`` for ``=``/``!=``."""
        return self.op in RANGE_OPERATORS

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate (ground truth)."""
        v = np.asarray(values)
        if self.op == "<":
            return v < self.value
        if self.op == "<=":
            return v <= self.value
        if self.op == "=":
            return v == self.value
        if self.op == "!=":
            return v != self.value
        if self.op == ">=":
            return v >= self.value
        return v > self.value

    def __str__(self) -> str:
        return f"A {self.op} {self.value}"


# ----------------------------------------------------------------------
# Counted logical operations
# ----------------------------------------------------------------------


def _and(a: Bitmap, b: Bitmap, stats: ExecutionStats) -> Bitmap:
    stats.ands += 1
    if stats.trace is not None:
        with stats.trace.span("and", kind="op", nbits=a.nbits):
            return a & b
    return a & b


def _or(a: Bitmap, b: Bitmap, stats: ExecutionStats) -> Bitmap:
    stats.ors += 1
    if stats.trace is not None:
        with stats.trace.span("or", kind="op", nbits=a.nbits):
            return a | b
    return a | b


def _xor(a: Bitmap, b: Bitmap, stats: ExecutionStats) -> Bitmap:
    stats.xors += 1
    if stats.trace is not None:
        with stats.trace.span("xor", kind="op", nbits=a.nbits):
            return a ^ b
    return a ^ b


def _not(a: Bitmap, stats: ExecutionStats) -> Bitmap:
    stats.nots += 1
    if stats.trace is not None:
        with stats.trace.span("not", kind="op", nbits=a.nbits):
            return ~a
    return ~a


def _or_all(vectors: list, stats: ExecutionStats) -> Bitmap:
    """OR a non-empty list of bitmaps, charging ``len - 1`` operations.

    Compressed operands go through their codec's k-way kernel
    (:meth:`WahBitVector.or_many` run merge,
    :meth:`~repro.bitmaps.roaring.RoaringBitmap.or_many` container merge —
    one pass over the operands instead of ``k - 1`` intermediate
    payloads); dense operands fold pairwise.  Either way the charged
    operation count is identical, so all executions report the same
    :class:`ExecutionStats`.
    """
    if len(vectors) == 1:
        return vectors[0]
    stats.ors += len(vectors) - 1

    def merge() -> Bitmap:
        cls = type(vectors[0])
        if cls is not BitVector and all(type(v) is cls for v in vectors):
            return cls.or_many(vectors)
        acc = vectors[0]
        for v in vectors[1:]:
            acc = acc | v
        return acc

    if stats.trace is not None:
        with stats.trace.span(
            "or_many", kind="op", nbits=vectors[0].nbits, count=len(vectors) - 1
        ):
            return merge()
    return merge()


def threshold_all(vectors: list, k: int, stats: ExecutionStats) -> Bitmap:
    """k-of-N threshold over a non-empty list of bitmaps.

    Bit ``i`` of the result is set iff at least ``k`` operands set it.
    Each codec runs its native k-way kernel
    (:meth:`WahBitVector.threshold_many` run-aligned counting,
    :meth:`~repro.bitmaps.roaring.RoaringBitmap.threshold_many`
    container-wise counters, :meth:`BitVector.threshold_many` word
    counting); mixed-representation operands fall back to counting over
    booleans.  The charged operation count — ``len(vectors) - 1`` ORs,
    the same as :func:`_or_all` — is identical across codecs and
    independent of the data, so every execution reports the same
    :class:`ExecutionStats`.

    ``k <= 0`` (trivially all rows) and ``k > N`` (unsatisfiable) clamp
    to the constant bitmap without charging any operation, mirroring
    :func:`_clamp_trivial`.
    """
    cls = type(vectors[0])
    if k <= 0:
        return cls.ones(vectors[0].nbits)
    if k > len(vectors):
        return cls.zeros(vectors[0].nbits)
    if len(vectors) == 1:
        return vectors[0]
    stats.ors += len(vectors) - 1

    def merge() -> Bitmap:
        if all(type(v) is cls for v in vectors):
            return cls.threshold_many(vectors, k)
        counts = np.zeros(vectors[0].nbits, dtype=np.int32)
        for v in vectors:
            counts += v.to_bools()
        return cls.from_bitvector(BitVector.from_bools(counts >= k)) if (
            cls is not BitVector
        ) else BitVector.from_bools(counts >= k)

    if stats.trace is not None:
        with stats.trace.span(
            "threshold",
            kind="op",
            nbits=vectors[0].nbits,
            k=k,
            count=len(vectors) - 1,
        ):
            return merge()
    return merge()


def _zeros(source: BitmapSource) -> Bitmap:
    """A virtual all-zero bitmap in the source's representation."""
    return BITMAP_CLASSES[source_codec(source)].zeros(source.nbits)


def _ones(source: BitmapSource) -> Bitmap:
    """A virtual all-one bitmap in the source's representation."""
    return BITMAP_CLASSES[source_codec(source)].ones(source.nbits)


def _all_rows(source: BitmapSource, stats: ExecutionStats) -> Bitmap:
    """The `everything` result: all rows, masked by ``B_nn`` when present."""
    if source.nonnull is not None:
        return source.nonnull.copy()
    return _ones(source)


def _mask_nn(
    result: Bitmap, source: BitmapSource, stats: ExecutionStats
) -> Bitmap:
    """AND the result with ``B_nn`` when the index tracks nulls."""
    if source.nonnull is not None:
        return _and(result, source.nonnull, stats)
    return result


def _clamp_trivial(
    source: BitmapSource, predicate: Predicate, stats: ExecutionStats
) -> Bitmap | None:
    """Short-circuit predicates whose constant lies outside ``[0, C)``."""
    c = source.cardinality
    v, op = predicate.value, predicate.op
    if v < 0:
        if op in ("<", "<=", "="):
            return _zeros(source)
        return _all_rows(source, stats)
    if v >= c:
        if op in ("<", "<=", "!="):
            return _all_rows(source, stats)
        return _zeros(source)
    return None


# ----------------------------------------------------------------------
# Algorithm RangeEval-Opt (the paper's contribution)
# ----------------------------------------------------------------------


def range_eval_opt(
    source: BitmapSource,
    predicate: Predicate,
    stats: ExecutionStats | None = None,
) -> Bitmap:
    """Evaluate a predicate on a *range-encoded* index with RangeEval-Opt.

    Returns the result bitmap; scans/ops are recorded on ``stats``.
    """
    stats = stats if stats is not None else ExecutionStats()
    _require_encoding(source, EncodingScheme.RANGE)
    trivial = _clamp_trivial(source, predicate, stats)
    if trivial is not None:
        return trivial

    op, v = predicate.op, predicate.value
    complement = op in (">", ">=", "!=")
    if op in ("<", ">="):
        v -= 1

    if predicate.is_range:
        if v < 0:
            result = _zeros(source)
            if complement:
                result = _all_rows(source, stats)
            return result
        if v >= source.cardinality - 1:
            # A <= v is everything (within the domain).
            if complement:
                return _zeros(source)
            return _all_rows(source, stats)
        result = _le_bitmap_opt(source, v, stats)
    else:
        result = _eq_bitmap_range_encoded(source, v, stats)

    if complement:
        result = _not(result, stats)
    return _mask_nn(result, source, stats)


def _le_bitmap_opt(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    """``A <= v`` via RangeEval-Opt's single-accumulator loop (0 <= v < C-1)."""
    base = source.base
    digits = base.digits(v)
    b1 = base.component(1)
    if digits[0] < b1 - 1:
        acc = source.fetch(1, digits[0], stats)
    else:
        acc = _ones(source)  # virtual B_1^{b_1 - 1}
    for i in range(2, base.n + 1):
        vi = digits[i - 1]
        bi = base.component(i)
        if vi != bi - 1:
            acc = _and(acc, source.fetch(i, vi, stats), stats)
        if vi != 0:
            acc = _or(acc, source.fetch(i, vi - 1, stats), stats)
    return acc


def _eq_bitmap_range_encoded(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    """``A = v`` on a range-encoded index (shared by both algorithms)."""
    base = source.base
    digits = base.digits(v)
    acc: Bitmap | None = None
    for i in range(1, base.n + 1):
        vi = digits[i - 1]
        bi = base.component(i)
        if vi == 0:
            term = source.fetch(i, 0, stats)
        elif vi == bi - 1:
            term = _not(source.fetch(i, bi - 2, stats), stats)
        else:
            term = _xor(
                source.fetch(i, vi, stats),
                source.fetch(i, vi - 1, stats),
                stats,
            )
        acc = term if acc is None else _and(acc, term, stats)
    assert acc is not None
    return acc


# ----------------------------------------------------------------------
# Algorithm RangeEval (O'Neil & Quass 4.3) — the baseline
# ----------------------------------------------------------------------


def range_eval(
    source: BitmapSource,
    predicate: Predicate,
    stats: ExecutionStats | None = None,
) -> Bitmap:
    """Evaluate a predicate on a *range-encoded* index with RangeEval.

    Maintains ``B_EQ`` plus ``B_LT`` or ``B_GT`` across components.  Only
    the accumulators the requested operator needs are computed (the paper:
    "steps that involved B_GT, B_GE, or B_NE are not required" for ``<=``).
    A bitmap fetched twice within one component (``B^{v_i-1}`` feeds both
    the LT and EQ updates) is read once and reused, which yields the
    paper's worst case of 2n scans per range predicate.
    """
    stats = stats if stats is not None else ExecutionStats()
    _require_encoding(source, EncodingScheme.RANGE)
    trivial = _clamp_trivial(source, predicate, stats)
    if trivial is not None:
        return trivial

    op, v = predicate.op, predicate.value
    need_lt = op in ("<", "<=")
    need_gt = op in (">", ">=")
    base = source.base
    digits = base.digits(v)

    cache: dict[tuple[int, int], Bitmap] = {}

    def fetch(i: int, slot: int) -> Bitmap:
        key = (i, slot)
        if key not in cache:
            cache[key] = source.fetch(i, slot, stats)
        return cache[key]

    b_eq = _all_rows(source, stats)
    b_lt = _zeros(source)
    b_gt = _zeros(source)

    for i in range(base.n, 0, -1):
        vi = digits[i - 1]
        bi = base.component(i)
        cache.clear()
        if vi > 0:
            if need_lt:
                b_lt = _or(b_lt, _and(b_eq, fetch(i, vi - 1), stats), stats)
            if vi < bi - 1:
                if need_gt:
                    b_gt = _or(
                        b_gt, _and(b_eq, _not(fetch(i, vi), stats), stats), stats
                    )
                b_eq = _and(
                    b_eq, _xor(fetch(i, vi), fetch(i, vi - 1), stats), stats
                )
            else:
                b_eq = _and(b_eq, _not(fetch(i, bi - 2), stats), stats)
        else:
            if need_gt:
                b_gt = _or(
                    b_gt, _and(b_eq, _not(fetch(i, 0), stats), stats), stats
                )
            b_eq = _and(b_eq, fetch(i, 0), stats)

    if op == "<":
        return b_lt
    if op == "<=":
        return _or(b_lt, b_eq, stats)
    if op == ">":
        return b_gt
    if op == ">=":
        return _or(b_gt, b_eq, stats)
    if op == "=":
        return b_eq
    # op == "!=": B_NE = NOT B_EQ AND B_nn
    return _mask_nn(_not(b_eq, stats), source, stats)


# ----------------------------------------------------------------------
# Equality-encoded evaluation
# ----------------------------------------------------------------------


def equality_eval(
    source: BitmapSource,
    predicate: Predicate,
    stats: ExecutionStats | None = None,
) -> Bitmap:
    """Evaluate a predicate on an *equality-encoded* index.

    Equality predicates cost one scan per component.  Range predicates are
    reduced to ``A <= v`` form and evaluated with the Horner-style
    combination ``LE_i = LT_i OR (EQ_i AND LE_{i-1})``; each component's
    ``LT``/``LE`` bitmap is assembled from whichever side of the component
    needs fewer bitmap reads (the complement optimization the paper's
    "between two and half the number of bitmaps in that component" cost
    statement presumes).
    """
    stats = stats if stats is not None else ExecutionStats()
    _require_encoding(source, EncodingScheme.EQUALITY)
    trivial = _clamp_trivial(source, predicate, stats)
    if trivial is not None:
        return trivial

    op, v = predicate.op, predicate.value
    complement = op in (">", ">=", "!=")
    if op in ("<", ">="):
        v -= 1

    if predicate.is_range:
        if v < 0:
            return (
                _all_rows(source, stats) if complement else _zeros(source)
            )
        if v >= source.cardinality - 1:
            return (
                _zeros(source) if complement else _all_rows(source, stats)
            )
        result = _le_bitmap_equality(source, v, stats)
    else:
        result = _eq_bitmap_equality(source, v, stats)

    if complement:
        result = _not(result, stats)
    return _mask_nn(result, source, stats)


def _fetch_eq(
    source: BitmapSource, i: int, j: int, stats: ExecutionStats
) -> Bitmap:
    """``digit_i == j`` on an equality-encoded component (complement trick)."""
    bi = source.base.component(i)
    if bi == 2 and j == 0:
        return _not(source.fetch(i, 1, stats), stats)
    return source.fetch(i, j, stats)


def _eq_bitmap_equality(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    base = source.base
    digits = base.digits(v)
    acc: Bitmap | None = None
    for i in range(1, base.n + 1):
        term = _fetch_eq(source, i, digits[i - 1], stats)
        acc = term if acc is None else _and(acc, term, stats)
    assert acc is not None
    return acc


def _or_slots(
    source: BitmapSource,
    i: int,
    slots: range,
    stats: ExecutionStats,
) -> Bitmap:
    """OR together the stored bitmaps of ``slots`` (must be non-empty).

    On a compressed source the whole set is aggregated in one k-way run
    merge (:func:`_or_all`); the charged operation count matches the
    pairwise dense fold.
    """
    assert len(slots) > 0
    return _or_all([source.fetch(i, j, stats) for j in slots], stats)


def _le_bitmap_equality(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    """``A <= v`` on an equality-encoded index (0 <= v < C-1)."""
    base = source.base
    digits = base.digits(v)

    # Component 1: LE_1 = (digit_1 <= v_1).
    b1 = base.component(1)
    v1 = digits[0]
    if v1 == b1 - 1:
        acc = _ones(source)
    elif b1 == 2:
        # v1 == 0: digit <= 0 is digit == 0 = NOT stored-slot-1.
        acc = _fetch_eq(source, 1, 0, stats)
    elif v1 + 1 <= b1 - 1 - v1:
        acc = _or_slots(source, 1, range(0, v1 + 1), stats)
    else:
        acc = _not(_or_slots(source, 1, range(v1 + 1, b1), stats), stats)

    # Components 2..n: LE_i = LT_i OR (EQ_i AND LE_{i-1}).
    for i in range(2, base.n + 1):
        vi = digits[i - 1]
        bi = base.component(i)
        if bi == 2:
            stored = source.fetch(i, 1, stats)
            if vi == 0:
                eq = _not(stored, stats)
                acc = _and(eq, acc, stats)
            else:
                lt = _not(stored, stats)
                acc = _or(lt, _and(stored, acc, stats), stats)
            continue
        if vi == 0:
            eq = source.fetch(i, 0, stats)
            acc = _and(eq, acc, stats)
        elif vi + 1 <= bi - vi:
            # Direct side: LT from slots [0, vi), EQ scanned separately.
            lt = _or_slots(source, i, range(0, vi), stats)
            eq = source.fetch(i, vi, stats)
            acc = _or(lt, _and(eq, acc, stats), stats)
        else:
            # Complement side: GE from slots [vi, bi); the slot-vi scan is
            # reused as EQ, saving one read.
            eq = source.fetch(i, vi, stats)
            ge = _or_all(
                [eq] + [source.fetch(i, j, stats) for j in range(vi + 1, bi)],
                stats,
            )
            lt = _not(ge, stats)
            acc = _or(lt, _and(eq, acc, stats), stats)
    return acc


# ----------------------------------------------------------------------
# Interval-encoded evaluation (extension: Chan & Ioannidis, SIGMOD 1999)
# ----------------------------------------------------------------------


def interval_eval(
    source: BitmapSource,
    predicate: Predicate,
    stats: ExecutionStats | None = None,
) -> Bitmap:
    """Evaluate a predicate on an *interval-encoded* index.

    With window length ``m = ceil(b_i / 2)``, every per-digit predicate is
    a combination of at most two interval bitmaps:

    - ``digit <= v``: ``I^0 AND NOT I^(v+1)`` below the window, ``I^0`` at
      ``v = m - 1``, and ``I^0 OR I^(v-m+1)`` above it;
    - ``digit = v``: the set difference of two adjacent windows (or the
      window intersection ``I^0 AND I^(m-1)`` exactly at ``v = m - 1``).

    Range predicates combine components with the same Horner recurrence as
    the equality evaluator; bitmaps a component needs for both its ``<``
    and ``=`` parts are fetched once.
    """
    stats = stats if stats is not None else ExecutionStats()
    _require_encoding(source, EncodingScheme.INTERVAL)
    trivial = _clamp_trivial(source, predicate, stats)
    if trivial is not None:
        return trivial

    op, v = predicate.op, predicate.value
    complement = op in (">", ">=", "!=")
    if op in ("<", ">="):
        v -= 1

    if predicate.is_range:
        if v < 0:
            return (
                _all_rows(source, stats) if complement else _zeros(source)
            )
        if v >= source.cardinality - 1:
            return (
                _zeros(source) if complement else _all_rows(source, stats)
            )
        result = _le_bitmap_interval(source, v, stats)
    else:
        result = _eq_bitmap_interval(source, v, stats)

    if complement:
        result = _not(result, stats)
    return _mask_nn(result, source, stats)


class _ComponentFetcher:
    """Per-component fetch cache so shared interval bitmaps scan once."""

    def __init__(self, source: BitmapSource, component: int, stats: ExecutionStats):
        self._source = source
        self._component = component
        self._stats = stats
        self._cache: dict[int, Bitmap] = {}

    def __call__(self, slot: int) -> Bitmap:
        if slot not in self._cache:
            self._cache[slot] = self._source.fetch(
                self._component, slot, self._stats
            )
        return self._cache[slot]


def _interval_le(
    b: int, v: int, fetch: _ComponentFetcher, stats: ExecutionStats
) -> Bitmap | None:
    """``digit <= v`` on one interval-encoded component (None = all rows)."""
    m = (b + 1) // 2
    if v >= b - 1:
        return None
    if v <= m - 2:
        return _and(fetch(0), _not(fetch(v + 1), stats), stats)
    if v == m - 1:
        return fetch(0)
    return _or(fetch(0), fetch(v - m + 1), stats)


def _interval_eq(
    b: int, v: int, fetch: _ComponentFetcher, stats: ExecutionStats
) -> Bitmap:
    """``digit = v`` on one interval-encoded component."""
    m = (b + 1) // 2
    if m == 1:  # b == 2: I^0 marks digit 0
        return fetch(0) if v == 0 else _not(fetch(0), stats)
    if v <= m - 2:
        return _and(fetch(v), _not(fetch(v + 1), stats), stats)
    if v == m - 1:
        return _and(fetch(0), fetch(m - 1), stats)
    if v <= 2 * m - 2:
        return _and(fetch(v - m + 1), _not(fetch(v - m), stats), stats)
    # v == 2m - 1 == b - 1 (even b): the complement of digit <= b - 2.
    below = _interval_le(b, b - 2, fetch, stats)
    assert below is not None
    return _not(below, stats)


def _eq_bitmap_interval(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    base = source.base
    digits = base.digits(v)
    acc: Bitmap | None = None
    for i in range(1, base.n + 1):
        fetch = _ComponentFetcher(source, i, stats)
        term = _interval_eq(base.component(i), digits[i - 1], fetch, stats)
        acc = term if acc is None else _and(acc, term, stats)
    assert acc is not None
    return acc


def _le_bitmap_interval(
    source: BitmapSource, v: int, stats: ExecutionStats
) -> Bitmap:
    """``A <= v`` on an interval-encoded index (0 <= v < C-1)."""
    base = source.base
    digits = base.digits(v)

    fetch = _ComponentFetcher(source, 1, stats)
    le = _interval_le(base.component(1), digits[0], fetch, stats)
    acc = le if le is not None else _ones(source)

    for i in range(2, base.n + 1):
        vi = digits[i - 1]
        bi = base.component(i)
        fetch = _ComponentFetcher(source, i, stats)
        eq = _interval_eq(bi, vi, fetch, stats)
        if vi == 0:
            acc = _and(eq, acc, stats)
        else:
            lt = _interval_le(bi, vi - 1, fetch, stats)
            assert lt is not None  # vi - 1 < b - 1
            acc = _or(lt, _and(eq, acc, stats), stats)
    return acc


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------

_ALGORITHMS = {
    "range_eval": range_eval,
    "range_eval_opt": range_eval_opt,
    "equality_eval": equality_eval,
    "interval_eval": interval_eval,
}


def evaluate(
    source: BitmapSource,
    predicate: Predicate,
    algorithm: str = "auto",
    stats: ExecutionStats | None = None,
) -> Bitmap:
    """Evaluate ``predicate`` over ``source`` with the named algorithm.

    ``algorithm='auto'`` picks the paper's recommendation: RangeEval-Opt
    for range-encoded indexes, the equality evaluator otherwise.

    This is the evaluator seam of cooperative cancellation: when the
    stats object carries a :class:`~repro.faults.Deadline`, it is checked
    once per evaluation (i.e. per expression leaf), so a query that has
    outlived its budget aborts with
    :class:`~repro.errors.QueryTimeoutError` before fetching more bitmaps.
    """
    if stats is not None and stats.deadline is not None:
        stats.deadline.check("evaluate")
    if algorithm == "auto":
        if source.encoding is EncodingScheme.RANGE:
            algorithm = "range_eval_opt"
        elif source.encoding is EncodingScheme.INTERVAL:
            algorithm = "interval_eval"
        else:
            algorithm = "equality_eval"
    try:
        func = _ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise InvalidPredicateError(
            f"unknown algorithm {algorithm!r}; expected one of: {known}, auto"
        ) from None
    if stats is not None and stats.trace is not None:
        with stats.trace.span(
            algorithm,
            kind="phase",
            op=predicate.op,
            value=predicate.value,
            encoding=source.encoding.value,
            codec=source_codec(source),
        ):
            return func(source, predicate, stats)
    return func(source, predicate, stats)


def _require_encoding(source: BitmapSource, expected: EncodingScheme) -> None:
    if source.encoding is not expected:
        raise InvalidPredicateError(
            f"algorithm requires a {expected.value}-encoded index, got "
            f"{source.encoding.value}"
        )


def group_counts(
    source: BitmapSource,
    bitmap: Bitmap,
    stats: ExecutionStats,
    algorithm: str = "auto",
) -> np.ndarray:
    """Intersection cardinality of ``bitmap`` with each value of ``source``.

    The GROUP BY half of aggregate pushdown: ``counts[v]`` is the number
    of rows where ``bitmap`` is set and the indexed attribute equals
    ``v``, computed entirely from popcounts — no RID list, no group eq
    bitmap survives the call.

    On a single-component *range-encoded* source the stored bitmaps are
    cumulative (``R_v = A <= v``), so the per-value counts come from
    ``C - 1`` fused intersect-popcounts and a running difference::

        count(A = v AND B) = count(R_v AND B) - count(R_{v-1} AND B)

    — no equality bitmap is ever XOR-materialized, which matters because
    ``R_v XOR R_{v-1}`` is exactly the expensive step of
    :func:`_eq_bitmap_range_encoded`.  Every other shape (equality or
    interval encoding, multi-component bases, non-default algorithms)
    falls back to per-value equality evaluation plus a fused
    ``and_count``.  Both paths mask NULL rows of the grouping attribute
    into no group.
    """
    cardinality = source.cardinality
    counts = np.zeros(cardinality, dtype=np.int64)
    if (
        source.encoding is EncodingScheme.RANGE
        and source.base.n == 1
        and algorithm in ("auto", "range_eval_opt")
    ):
        masked = bitmap
        if source.nonnull is not None:
            masked = _and(bitmap, source.nonnull, stats)
        previous = 0
        for code in range(cardinality - 1):
            stats.ands += 1
            cumulative = int(masked.and_count(source.fetch(1, code, stats)))
            counts[code] = cumulative - previous
            previous = cumulative
        counts[cardinality - 1] = int(masked.count()) - previous
        return counts
    for code in range(cardinality):
        member = evaluate(source, Predicate("=", code), algorithm=algorithm, stats=stats)
        stats.ands += 1
        counts[code] = int(bitmap.and_count(member))
    return counts
