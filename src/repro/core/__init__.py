"""The paper's primary contribution: the bitmap-index design space.

Modules
-------
- :mod:`repro.core.decomposition` — attribute-value decomposition
  (mixed-radix bases ``<b_n, …, b_1>``), dimension 1 of the design space.
- :mod:`repro.core.encoding` — equality/range bitmap encoding of each
  component, dimension 2 of the design space.
- :mod:`repro.core.index` — the :class:`~repro.core.index.BitmapIndex`
  combining both dimensions.
- :mod:`repro.core.evaluation` — the selection-query evaluation algorithms
  (``RangeEval``, ``RangeEval-Opt``, and the equality-encoded evaluator).
- :mod:`repro.core.costmodel` — the analytical space/time cost model
  (Theorem 5.1, Eq. 5) plus exact expected-cost enumeration.
- :mod:`repro.core.optimize` — space-/time-optimal indexes, the knee, and
  the space-constrained optimization algorithms (Sections 6–8).
- :mod:`repro.core.buffering` — bitmap buffering (Section 10).
- :mod:`repro.core.advisor` — a physical-design advisor wrapping the above.
"""

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.core.evaluation import (
    Predicate,
    equality_eval,
    evaluate,
    range_eval,
    range_eval_opt,
)

__all__ = [
    "Base",
    "BitmapIndex",
    "EncodingScheme",
    "Predicate",
    "equality_eval",
    "evaluate",
    "range_eval",
    "range_eval_opt",
]
