"""Bitmap buffering (paper Section 10).

With ``m`` bitmaps of main memory available, an index's expected scan count
drops according to Eq. (5); *where* to spend the ``m`` buffer slots matters.
Theorem 10.1 gives the optimal policy as a component priority; because the
marginal benefit of buffering one more bitmap of component ``i`` is a
constant (``2 / b_i`` expected scans saved for ``i >= 2`` and
``4 / (3 b_1)`` for component 1), the priority rule is exactly a greedy
allocation by marginal benefit, which is how :func:`optimal_assignment`
implements it.

Theorem 10.2 then identifies the time-optimal *index* given ``m`` buffered
bitmaps: the ``m``-component base ``<2, …, 2, ceil(C / 2^(m-1))>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.optimize import max_components, time_optimal_base
from repro.errors import BufferConfigError, InvalidBaseError


@dataclass(frozen=True)
class BufferAssignment:
    """How many bitmaps of each component are buffered.

    ``counts`` is least-significant-first: ``counts[0]`` is ``f_1``.  A
    well-defined assignment has ``0 <= f_i <= b_i - 1`` (a range-encoded
    component stores ``b_i - 1`` bitmaps).
    """

    base: Base
    counts: tuple[int, ...]

    def __post_init__(self):
        if len(self.counts) != self.base.n:
            raise BufferConfigError(
                f"{len(self.counts)} counts for a {self.base.n}-component index"
            )
        for i, f in enumerate(self.counts, start=1):
            b = self.base.component(i)
            if not 0 <= f <= b - 1:
                raise BufferConfigError(
                    f"f_{i} = {f} outside [0, {b - 1}] for base number {b}"
                )

    @property
    def total(self) -> int:
        """Total buffered bitmaps ``m``."""
        return sum(self.counts)

    def expected_scans(self) -> float:
        """Eq. (5): expected scans under this assignment."""
        return costmodel.time_range_buffered(self.base, self.counts)


def marginal_benefit(base: Base, component: int) -> Fraction:
    """Expected scans saved per additional buffered bitmap of a component.

    Differentiating Eq. (5) in ``f_i``: ``2 / b_i`` for ``i >= 2`` and
    ``2 / b_1 - (2/3) / b_1 = 4 / (3 b_1)`` for component 1.  Theorem
    10.1's priority classes follow: a component ``i >= 2`` outranks
    component 1 exactly when ``b_i <= (3/2) b_1``.
    """
    b = base.component(component)
    if component == 1:
        return Fraction(4, 3 * b)
    return Fraction(2, b)


def optimal_assignment(base: Base, m: int) -> BufferAssignment:
    """The optimal ``m``-bitmap buffer assignment (Theorem 10.1).

    Greedy by marginal benefit; each component accepts at most its
    ``b_i - 1`` stored bitmaps.  When ``m`` meets or exceeds the index's
    total bitmap count, everything is buffered.
    """
    if m < 0:
        raise BufferConfigError(f"buffer size must be non-negative, got {m}")
    order = sorted(
        range(1, base.n + 1),
        key=lambda i: (-marginal_benefit(base, i), base.component(i), i),
    )
    counts = [0] * base.n
    remaining = m
    for i in order:
        if remaining == 0:
            break
        capacity = base.component(i) - 1
        take = min(capacity, remaining)
        counts[i - 1] = take
        remaining -= take
    return BufferAssignment(base, tuple(counts))


def buffered_time(base: Base, m: int) -> float:
    """Expected scans of an index given ``m`` optimally buffered bitmaps."""
    return optimal_assignment(base, m).expected_scans()


def time_optimal_base_buffered(cardinality: int, m: int) -> Base:
    """The time-optimal index with ``m`` buffered bitmaps (Theorem 10.2).

    For ``m >= 1`` this is the ``m``-component base
    ``<2, …, 2, ceil(C / 2^(m-1))>``; for ``m = 0`` it degenerates to the
    unbuffered time-optimal single-component index.  ``m`` beyond the
    useful maximum (everything buffered) caps at the base-2 index.
    """
    if m < 0:
        raise BufferConfigError(f"buffer size must be non-negative, got {m}")
    if cardinality < 2:
        raise InvalidBaseError("cardinality must be at least 2")
    n = max(1, min(m, max_components(cardinality)))
    return time_optimal_base(cardinality, n)
