"""Multi-attribute physical design under a shared disk budget.

The paper's motivation for the whole space-time study is that warehouses
index *many* attributes ("maintaining multiple indexes for an attribute
further increases the disk space requirement … understanding the
space-time tradeoff of the various bitmap indexes is therefore essential
for a good physical database design").  This module closes that loop: given
the cardinalities of several attributes, per-attribute query frequencies,
and one disk budget in bitmaps, it splits the budget to minimize the
frequency-weighted expected scans per query.

The per-attribute cost curve ``t_A(M) = Time(TimeOptHeur(M, C_A))`` is
non-increasing but has plateaus (an extra bitmap only helps when it
enables a better base), so the allocator works on each curve's lower
convex hull and greedily hands whole hull segments to the attribute with
the steepest weighted improvement per bitmap — the classic
marginal-allocation scheme, exact for convex curves.  The test suite
validates the result against exhaustive splits on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.optimize import (
    max_components,
    time_optimal_under_space_heuristic,
)
from repro.errors import OptimizationError


@dataclass(frozen=True)
class AttributeSpec:
    """One indexed attribute: name, cardinality, query share."""

    name: str
    cardinality: int
    weight: float = 1.0

    def __post_init__(self):
        if self.cardinality < 2:
            raise OptimizationError(
                f"attribute {self.name!r}: cardinality must be >= 2"
            )
        if self.weight <= 0:
            raise OptimizationError(
                f"attribute {self.name!r}: weight must be positive"
            )


@dataclass(frozen=True)
class TableDesign:
    """A budget split with the chosen per-attribute indexes."""

    indexes: dict[str, Base]
    budgets: dict[str, int]
    expected_scans: float
    total_bitmaps: int

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}: {base} ({self.budgets[name]} bitmaps)"
            for name, base in sorted(self.indexes.items())
        )
        return (
            f"TableDesign({parts}; total {self.total_bitmaps} bitmaps, "
            f"{self.expected_scans:.3f} weighted scans/query)"
        )


def _cost_curve(spec: AttributeSpec, max_budget: int) -> list[float]:
    """``curve[m]`` = expected scans with a budget of ``m`` bitmaps.

    Entries below the attribute's feasibility floor are ``inf``.
    """
    floor = max_components(spec.cardinality)
    curve = [float("inf")] * (max_budget + 1)
    ceiling = min(max_budget, spec.cardinality - 1)
    previous = float("inf")
    for m in range(floor, ceiling + 1):
        base = time_optimal_under_space_heuristic(m, spec.cardinality)
        value = costmodel.time_range(base)
        previous = min(previous, value)  # enforce monotonicity
        curve[m] = previous
    for m in range(ceiling + 1, max_budget + 1):
        curve[m] = curve[ceiling] if ceiling >= floor else float("inf")
    return curve


def _lower_hull(curve: list[float], floor: int) -> list[int]:
    """Indices of the lower convex hull of a non-increasing cost curve.

    Returned positions are the budgets worth stopping at: between two
    hull vertices the curve never dips below the connecting chord.
    """
    points = [
        (m, curve[m]) for m in range(floor, len(curve))
        if curve[m] != float("inf")
    ]
    hull: list[tuple[int, float]] = []
    for m, value in points:
        while len(hull) >= 2:
            (m1, v1), (m2, v2) = hull[-2], hull[-1]
            # Keep the chain convex: drop the middle point when the new
            # segment is at least as steep as the previous one.
            if (v2 - v1) * (m - m2) >= (value - v2) * (m2 - m1):
                hull.pop()
            else:
                break
        hull.append((m, value))
    return [m for m, _ in hull]


def allocate_budget(
    attributes: list[AttributeSpec], total_bitmaps: int
) -> TableDesign:
    """Split ``total_bitmaps`` across attributes, minimizing weighted scans.

    Every attribute first receives its feasibility floor (the base-2
    index); remaining bitmaps go greedily to the attribute whose next
    bitmap buys the largest weighted scan reduction (ties favour the
    heavier-weighted attribute).

    Raises
    ------
    OptimizationError
        If the budget cannot cover every attribute's floor.
    """
    if not attributes:
        raise OptimizationError("need at least one attribute")
    names = [spec.name for spec in attributes]
    if len(set(names)) != len(names):
        raise OptimizationError("duplicate attribute names")

    floors = {
        spec.name: max_components(spec.cardinality) for spec in attributes
    }
    minimum = sum(floors.values())
    if total_bitmaps < minimum:
        raise OptimizationError(
            f"budget of {total_bitmaps} bitmaps is below the {minimum} "
            f"needed for base-2 indexes on every attribute"
        )

    curves = {
        spec.name: _cost_curve(spec, total_bitmaps) for spec in attributes
    }
    weights = {spec.name: spec.weight for spec in attributes}
    hulls = {
        name: _lower_hull(curve, floors[name]) for name, curve in curves.items()
    }
    allocation = dict(floors)
    remaining = total_bitmaps - minimum

    def best_move(name: str) -> tuple[float, int] | None:
        """Best (weighted rate, jump) from the current allocation."""
        curve = curves[name]
        at = allocation[name]
        hull = hulls[name]
        nxt = next((v for v in hull if v > at), None)
        if nxt is None:
            return None
        if nxt - at <= remaining:
            jump = nxt - at
        else:
            # The segment does not fit: take the best reachable point.
            reach = range(at + 1, min(at + remaining, len(curve) - 1) + 1)
            jump = min(reach, key=lambda m: (curve[m], m), default=None)
            if jump is None:
                return None
            jump -= at
        gain = curve[at] - curve[at + jump]
        if gain <= 0:
            return None
        return weights[name] * gain / jump, jump

    while remaining > 0:
        candidates = [
            (move[0], name, move[1])
            for name in allocation
            if (move := best_move(name)) is not None
        ]
        if not candidates:
            break
        _, name, jump = max(candidates)
        allocation[name] += jump
        remaining -= jump

    indexes = {
        spec.name: time_optimal_under_space_heuristic(
            allocation[spec.name], spec.cardinality
        )
        for spec in attributes
    }
    total_weight = sum(weights.values())
    scans = sum(
        weights[spec.name] * costmodel.time_range(indexes[spec.name])
        for spec in attributes
    ) / total_weight
    return TableDesign(
        indexes=indexes,
        budgets=allocation,
        expected_scans=scans,
        total_bitmaps=sum(
            costmodel.space_range(indexes[name]) for name in allocation
        ),
    )
