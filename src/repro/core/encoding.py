"""Bitmap encoding schemes — dimension 2 of the paper's design space.

Each index component holds the bitmaps for one digit of the decomposed
attribute value.  Two encodings are considered (paper Section 2):

- **Equality encoding** (:class:`EqualityEncodedComponent`): bitmap ``B^j``
  marks the rows whose digit equals ``j``.  A component of base ``b`` has
  ``b`` bitmaps, but for ``b == 2`` only the ``j = 1`` bitmap is stored
  because the other is its complement (Theorem 5.1's ``s_i = 1`` case).
- **Range encoding** (:class:`RangeEncodedComponent`): bitmap ``B^j`` marks
  the rows whose digit is *at most* ``j``.  The top bitmap ``B^(b-1)`` is
  all ones and is never stored, so a component stores ``b - 1`` bitmaps.

Both classes index their *stored* bitmaps by digit slot ``j`` and expose the
same interface, so the in-memory index, the storage schemes, and the buffer
pool can all serve the evaluation algorithms interchangeably.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.errors import ValueOutOfRangeError


class EncodingScheme(enum.Enum):
    """The bitmap encoding schemes.

    ``EQUALITY`` and ``RANGE`` are the two schemes the paper studies.
    ``INTERVAL`` is the authors' follow-up scheme (Chan & Ioannidis,
    SIGMOD 1999), included as an extension: it stores roughly half the
    bitmaps of range encoding while still answering any predicate with at
    most two bitmap scans per component.
    """

    EQUALITY = "equality"
    RANGE = "range"
    INTERVAL = "interval"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class _Component:
    """Common plumbing for the component encodings."""

    encoding: EncodingScheme

    def __init__(self, base: int, nbits: int, bitmaps: dict[int, BitVector]):
        self.base = base
        self.nbits = nbits
        self._bitmaps = bitmaps

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def membership(self, digit: int, slot: int) -> bool:
        """Whether a row with this digit belongs in stored bitmap ``slot``."""
        raise NotImplementedError

    def set_row(self, rid: int, digit: int) -> int:
        """Re-encode one row's digit in place; returns bitmaps modified."""
        if not 0 <= digit < self.base:
            raise ValueOutOfRangeError(
                f"digit {digit} out of range [0, {self.base})"
            )
        touched = 0
        for slot, bitmap in self._bitmaps.items():
            want = self.membership(digit, slot)
            if bitmap.get(rid) != want:
                bitmap.set(rid, want)
                touched += 1
        return touched

    def append_rows(self, digits: np.ndarray) -> None:
        """Extend every stored bitmap with newly appended rows' digits."""
        digits = np.asarray(digits)
        _check_digits(digits, self.base)
        for slot, bitmap in list(self._bitmaps.items()):
            new_bits = self._slot_bools(digits, slot)
            combined = np.concatenate((bitmap.to_bools(), new_bits))
            self._bitmaps[slot] = BitVector.from_bools(combined)
        self.nbits += len(digits)

    def _slot_bools(self, digits: np.ndarray, slot: int) -> np.ndarray:
        """Vectorized :meth:`membership` for a digit column."""
        raise NotImplementedError

    @property
    def num_stored(self) -> int:
        """Number of physically stored bitmaps (the space contribution)."""
        return len(self._bitmaps)

    def stored_slots(self) -> tuple[int, ...]:
        """Digit slots ``j`` that have a physical bitmap, in increasing order."""
        return tuple(sorted(self._bitmaps))

    def bitmap(self, slot: int) -> BitVector:
        """The stored bitmap for digit slot ``slot``.

        Raises ``KeyError`` for virtual (non-stored) slots; callers that
        need the virtual bitmaps (the all-ones top range bitmap, the
        complemented base-2 equality bitmap) synthesize them — see
        :mod:`repro.core.evaluation`.
        """
        return self._bitmaps[slot]

    def __contains__(self, slot: int) -> bool:
        return slot in self._bitmaps


class EqualityEncodedComponent(_Component):
    """One equality-encoded component (bitmap ``B^j`` = rows with digit ``j``)."""

    encoding = EncodingScheme.EQUALITY

    @classmethod
    def build(cls, digits: np.ndarray, base: int) -> "EqualityEncodedComponent":
        """Encode a digit column of values in ``[0, base)``."""
        digits = np.asarray(digits)
        _check_digits(digits, base)
        nbits = len(digits)
        bitmaps: dict[int, BitVector] = {}
        if base == 2:
            # Complement trick: store only B^1; B^0 = NOT B^1.
            bitmaps[1] = BitVector.from_bools(digits == 1)
        else:
            for j in range(base):
                bitmaps[j] = BitVector.from_bools(digits == j)
        return cls(base, nbits, bitmaps)

    def membership(self, digit: int, slot: int) -> bool:
        return digit == slot

    def _slot_bools(self, digits: np.ndarray, slot: int) -> np.ndarray:
        return digits == slot


class RangeEncodedComponent(_Component):
    """One range-encoded component (bitmap ``B^j`` = rows with digit ``<= j``)."""

    encoding = EncodingScheme.RANGE

    @classmethod
    def build(cls, digits: np.ndarray, base: int) -> "RangeEncodedComponent":
        """Encode a digit column of values in ``[0, base)``.

        Slots ``0 .. base - 2`` are stored; slot ``base - 1`` would be all
        ones and is virtual.
        """
        digits = np.asarray(digits)
        _check_digits(digits, base)
        nbits = len(digits)
        bitmaps = {
            j: BitVector.from_bools(digits <= j) for j in range(base - 1)
        }
        return cls(base, nbits, bitmaps)

    def membership(self, digit: int, slot: int) -> bool:
        return digit <= slot

    def _slot_bools(self, digits: np.ndarray, slot: int) -> np.ndarray:
        return digits <= slot


class IntervalEncodedComponent(_Component):
    """One interval-encoded component (extension; Chan & Ioannidis 1999).

    With ``m = ceil(b / 2)``, bitmap ``I^j`` (``j = 0 .. m-1``) marks the
    rows whose digit lies in the length-``m`` window ``[j, j + m - 1]``.
    Any single-digit predicate is answerable from at most two of these
    bitmaps, with roughly half the storage of range encoding.
    """

    encoding = EncodingScheme.INTERVAL

    @classmethod
    def build(cls, digits: np.ndarray, base: int) -> "IntervalEncodedComponent":
        """Encode a digit column of values in ``[0, base)``."""
        digits = np.asarray(digits)
        _check_digits(digits, base)
        nbits = len(digits)
        m = interval_window(base)
        bitmaps = {
            j: BitVector.from_bools((digits >= j) & (digits <= j + m - 1))
            for j in range(m)
        }
        return cls(base, nbits, bitmaps)

    def membership(self, digit: int, slot: int) -> bool:
        m = interval_window(self.base)
        return slot <= digit <= slot + m - 1

    def _slot_bools(self, digits: np.ndarray, slot: int) -> np.ndarray:
        m = interval_window(self.base)
        return (digits >= slot) & (digits <= slot + m - 1)


def interval_window(base: int) -> int:
    """The interval-encoding window length ``m = ceil(base / 2)``."""
    return (base + 1) // 2


def build_component(
    digits: np.ndarray, base: int, encoding: EncodingScheme
) -> _Component:
    """Build a component of the requested encoding from a digit column."""
    if encoding is EncodingScheme.EQUALITY:
        return EqualityEncodedComponent.build(digits, base)
    if encoding is EncodingScheme.RANGE:
        return RangeEncodedComponent.build(digits, base)
    if encoding is EncodingScheme.INTERVAL:
        return IntervalEncodedComponent.build(digits, base)
    raise ValueError(f"unknown encoding {encoding!r}")


def stored_bitmap_count(base: int, encoding: EncodingScheme) -> int:
    """Stored bitmaps of one component (Theorem 5.1's per-component space)."""
    if encoding is EncodingScheme.EQUALITY:
        return base if base > 2 else 1
    if encoding is EncodingScheme.RANGE:
        return base - 1
    if encoding is EncodingScheme.INTERVAL:
        return interval_window(base)
    raise ValueError(f"unknown encoding {encoding!r}")


def _check_digits(digits: np.ndarray, base: int) -> None:
    if base < 2:
        raise ValueOutOfRangeError(f"component base must be >= 2, got {base}")
    if digits.size and (digits.min() < 0 or digits.max() >= base):
        raise ValueOutOfRangeError(f"digit values outside [0, {base})")
