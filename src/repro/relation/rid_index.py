"""The conventional RID-list index — the paper's introduction baseline.

For each attribute value the index stores the sorted list of matching
record identifiers.  The paper's Section 1 cost analysis compares this
against bitmap indexes under the assumption of 4-byte RIDs: scanning a
predicate's result through RID lists reads ``4 * n`` bytes (``n`` = result
cardinality) versus ``N / 8`` bytes per bitmap, giving the ``N <= 32 n``
crossover the ``crossover`` experiment reproduces.

Implementation: a CSR-style layout — one array of RIDs grouped by value
plus per-value offsets — built with a single argsort.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValueOutOfRangeError

#: The paper's assumed RID width.
RID_BYTES = 4


class RIDListIndex:
    """Value → sorted RID list index over one column."""

    def __init__(self, values: np.ndarray):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        order = np.argsort(values, kind="stable")
        self._rids = order.astype(np.int64)
        sorted_values = values[order]
        self.distinct, starts = np.unique(sorted_values, return_index=True)
        self._offsets = np.append(starts, len(values))
        self.num_rows = len(values)

    @property
    def cardinality(self) -> int:
        return len(self.distinct)

    def rids_for_value(self, value) -> np.ndarray:
        """Sorted RIDs of rows equal to ``value`` (empty if absent)."""
        pos = int(np.searchsorted(self.distinct, value))
        if pos >= len(self.distinct) or self.distinct[pos] != value:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._rids[self._offsets[pos] : self._offsets[pos + 1]])

    def lookup(self, op: str, value) -> np.ndarray:
        """Sorted RIDs of rows satisfying ``A op value``."""
        lo, hi = self._value_range(op, value)
        if op == "!=":
            eq = self.rids_for_value(value)
            mask = np.ones(self.num_rows, dtype=bool)
            mask[eq] = False
            return np.nonzero(mask)[0]
        return np.sort(self._rids[self._offsets[lo] : self._offsets[hi]])

    def bytes_for(self, op: str, value) -> int:
        """Bytes read from the index to evaluate ``A op value``.

        The merge-based plans of the introduction read each qualifying RID
        once (4 bytes per RID, the paper's assumption).
        """
        if op == "!=":
            matched = self.num_rows - len(self.rids_for_value(value))
        else:
            lo, hi = self._value_range(op, value)
            matched = int(self._offsets[hi] - self._offsets[lo])
        return RID_BYTES * matched

    def _value_range(self, op: str, value) -> tuple[int, int]:
        """Distinct-value span ``[lo, hi)`` matching the predicate."""
        left = int(np.searchsorted(self.distinct, value, side="left"))
        right = int(np.searchsorted(self.distinct, value, side="right"))
        if op == "=":
            return left, right
        if op == "<":
            return 0, left
        if op == "<=":
            return 0, right
        if op == ">=":
            return left, len(self.distinct)
        if op == ">":
            return right, len(self.distinct)
        if op == "!=":
            return 0, len(self.distinct)
        raise ValueOutOfRangeError(f"unknown operator {op!r}")

    @property
    def size_bytes(self) -> int:
        """Index size under the paper's 4-bytes-per-RID assumption."""
        return RID_BYTES * self.num_rows
