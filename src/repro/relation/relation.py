"""Relations: named collections of equal-length columns.

The relation is deliberately minimal — enough to ground the paper's plan
cost analysis (full scans read ``N * row_bytes`` bytes) and to serve as
the source of truth for verifying every index-based access path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValueOutOfRangeError
from repro.relation.column import Column


class Relation:
    """A named relation of columns in RID order."""

    def __init__(self, name: str, columns: list[Column]):
        if not columns:
            raise ValueOutOfRangeError("a relation needs at least one column")
        rows = columns[0].num_rows
        for col in columns:
            if col.num_rows != rows:
                raise ValueOutOfRangeError(
                    f"column {col.name!r} has {col.num_rows} rows; "
                    f"expected {rows}"
                )
        self.name = name
        self.columns = {col.name: col for col in columns}
        if len(self.columns) != len(columns):
            raise ValueOutOfRangeError("duplicate column names")
        self._rows = rows

    @classmethod
    def from_dict(cls, name: str, data: dict[str, np.ndarray]) -> "Relation":
        """Build a relation from ``{column_name: values}``."""
        return cls(name, [Column(cname, values) for cname, values in data.items()])

    @property
    def num_rows(self) -> int:
        """Relation cardinality (the paper's ``N``)."""
        return self._rows

    @property
    def row_bytes(self) -> int:
        """Logical bytes per tuple (sum of column value widths)."""
        return sum(col.value_size_bytes for col in self.columns.values())

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            known = ", ".join(sorted(self.columns))
            raise KeyError(
                f"relation {self.name!r} has no column {name!r}; "
                f"columns: {known}"
            ) from None

    def scan(self, attribute: str, op: str, value) -> np.ndarray:
        """Full-scan evaluation of ``attribute op value``: matching RIDs."""
        col = self.column(attribute)
        v = col.values
        if op == "<":
            mask = v < value
        elif op == "<=":
            mask = v <= value
        elif op == "=":
            mask = v == value
        elif op == "!=":
            mask = v != value
        elif op == ">=":
            mask = v >= value
        elif op == ">":
            mask = v > value
        else:
            raise ValueOutOfRangeError(f"unknown operator {op!r}")
        return np.nonzero(mask)[0]

    def __repr__(self) -> str:
        cols = ", ".join(sorted(self.columns))
        return f"Relation({self.name!r}, rows={self.num_rows}, columns=[{cols}])"
