"""Typed columns with optional value dictionaries.

A :class:`Column` holds one attribute of a relation in RID order.  Values
of any orderable dtype are supported; internally the column keeps integer
*codes* plus a sorted dictionary of distinct values, which is exactly the
rank mapping the paper prescribes for indexing non-consecutive attribute
domains ("by mapping each actual attribute value to its rank via a lookup
table", Section 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValueOutOfRangeError


class Column:
    """One attribute of a relation, stored column-wise.

    Parameters
    ----------
    name:
        Attribute name.
    values:
        The attribute values in RID order (any orderable numpy dtype).
    value_size_bytes:
        Logical width of one value on disk, used by the plan-cost model
        (defaults to the dtype's item size).
    """

    def __init__(
        self,
        name: str,
        values: np.ndarray,
        value_size_bytes: int | None = None,
    ):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueOutOfRangeError("column values must be 1-D")
        self.name = name
        self.values = values
        self.dictionary, self.codes = np.unique(values, return_inverse=True)
        self.value_size_bytes = (
            value_size_bytes if value_size_bytes is not None else values.dtype.itemsize
        )

    @property
    def num_rows(self) -> int:
        return len(self.values)

    @property
    def cardinality(self) -> int:
        """Number of distinct actual values (the paper's ``C``)."""
        return len(self.dictionary)

    def code_of(self, value) -> int | None:
        """Rank of ``value`` in the dictionary, or ``None`` if absent."""
        pos = int(np.searchsorted(self.dictionary, value))
        if pos < len(self.dictionary) and self.dictionary[pos] == value:
            return pos
        return None

    def code_bounds(self, op: str, value) -> tuple[str, int]:
        """Translate ``A op value`` on actual values to a code predicate.

        Returns an equivalent ``(op, code)`` pair on the rank domain; the
        translation is exact for any value because the dictionary is
        sorted (e.g. ``A < v`` becomes ``code < searchsorted(v)``).
        """
        left = int(np.searchsorted(self.dictionary, value, side="left"))
        if op in ("=", "!="):
            code = self.code_of(value)
            if code is None:
                # No row matches; map to an out-of-range code, which the
                # evaluators short-circuit.
                return op, self.cardinality
            return op, code
        if op in ("<", ">="):
            # values < v  <=>  codes < left
            return op, left
        if op in ("<=", ">"):
            right = int(np.searchsorted(self.dictionary, value, side="right"))
            # values <= v  <=>  codes < right  <=>  codes <= right - 1
            return ("<=", right - 1) if op == "<=" else (">", right - 1)
        raise ValueOutOfRangeError(f"unknown operator {op!r}")

    def __repr__(self) -> str:
        return (
            f"Column({self.name!r}, rows={self.num_rows}, "
            f"cardinality={self.cardinality}, dtype={self.values.dtype})"
        )
