"""The projection index (O'Neil & Quass; paper Section 9.1 footnote).

A projection index on attribute ``A`` is simply the projection of ``A``
with duplicates preserved, stored in RID order.  The paper notes that an
Index-level-Storage bitmap index whose components all have base 2 *is* a
projection index (each row stores the binary representation of its
value); :meth:`ProjectionIndex.matches_is_layout` verifies that identity
and the test suite asserts it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValueOutOfRangeError


class ProjectionIndex:
    """RID-ordered copy of one column, with byte-accurate sizing."""

    def __init__(self, values: np.ndarray, cardinality: int | None = None):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        self.values = values.copy()
        if cardinality is None:
            cardinality = int(values.max()) + 1 if len(values) else 1
        self.cardinality = max(int(cardinality), 1)

    @property
    def num_rows(self) -> int:
        return len(self.values)

    @property
    def bits_per_value(self) -> int:
        """Bits to store one value: ``ceil(log2 C)`` (1 minimum)."""
        return max(1, math.ceil(math.log2(self.cardinality))) if self.cardinality > 1 else 1

    @property
    def size_bytes(self) -> int:
        """Packed size of the index."""
        return (self.num_rows * self.bits_per_value + 7) // 8

    def lookup(self, op: str, value) -> np.ndarray:
        """Scan the projection for matching RIDs."""
        v = self.values
        ops = {
            "<": v < value,
            "<=": v <= value,
            "=": v == value,
            "!=": v != value,
            ">=": v >= value,
            ">": v > value,
        }
        try:
            mask = ops[op]
        except KeyError:
            raise ValueOutOfRangeError(f"unknown operator {op!r}") from None
        return np.nonzero(mask)[0]

    def binary_rows(self) -> np.ndarray:
        """Row-wise binary encoding — the IS layout of a base-2 index.

        Column ``j`` holds bit ``j`` (least significant first) of each
        value, which equals the Index-level Storage column order of a
        range-encoded base-2 index only up to per-bit complement; the
        equality-encoded base-2 IS index stores the bits directly.
        """
        width = self.bits_per_value
        return ((self.values[:, None] >> np.arange(width)) & 1).astype(bool)
