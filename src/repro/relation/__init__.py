"""A miniature column-store substrate.

Provides the relational objects the paper's introduction and Section 9
reason about: typed columns with dictionaries, relations, the conventional
RID-list index (the baseline of the paper's plan-cost analysis), and the
projection index (footnote 5 of Section 9.1).
"""

from repro.relation.column import Column
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex
from repro.relation.projection import ProjectionIndex

__all__ = ["Column", "ProjectionIndex", "RIDListIndex", "Relation"]
