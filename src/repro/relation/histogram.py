"""Equi-depth histograms for selectivity estimation.

The plan optimizer's default estimator assumes rows spread uniformly over
the distinct values — exact for the paper's uniform workloads, badly off
for skewed columns.  An equi-depth histogram (equal row counts per
bucket) is the classical fix; the optimizer uses one when the catalog
carries it.

Buckets are ``[lo, hi]`` value ranges holding ``depth`` rows each (the
last may be short).  Range estimates interpolate linearly inside the
boundary buckets; equality estimates spread a bucket's rows over its
distinct values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValueOutOfRangeError


class EquiDepthHistogram:
    """An equi-depth histogram over one column."""

    def __init__(self, values: np.ndarray, buckets: int = 16):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueOutOfRangeError("values must be a 1-D array")
        if len(values) == 0:
            raise ValueOutOfRangeError("cannot build a histogram of nothing")
        if buckets < 1:
            raise ValueOutOfRangeError(f"need at least 1 bucket, got {buckets}")
        ordered = np.sort(values)
        self.num_rows = len(ordered)
        self.num_buckets = min(buckets, self.num_rows)
        # Boundary i covers ordered rows [i*depth, (i+1)*depth).
        cuts = np.linspace(0, self.num_rows, self.num_buckets + 1).astype(int)
        self._lows = ordered[cuts[:-1]]
        self._highs = ordered[np.maximum(cuts[1:] - 1, 0)]
        self._counts = np.diff(cuts)
        # Distinct values per bucket, for equality estimates.
        self._distinct = np.array([
            len(np.unique(ordered[cuts[i]:cuts[i + 1]]))
            for i in range(self.num_buckets)
        ])

    # ------------------------------------------------------------------

    def estimate_le(self, value) -> float:
        """Estimated fraction of rows with ``column <= value``."""
        rows = 0.0
        for lo, hi, count in zip(self._lows, self._highs, self._counts):
            if value >= hi:
                rows += count
            elif value < lo:
                break
            else:
                span = float(hi) - float(lo)
                fraction = (float(value) - float(lo) + 1.0) / (span + 1.0)
                rows += count * min(max(fraction, 0.0), 1.0)
                break
        return rows / self.num_rows

    def estimate_eq(self, value) -> float:
        """Estimated fraction of rows with ``column = value``."""
        for lo, hi, count, distinct in zip(
            self._lows, self._highs, self._counts, self._distinct
        ):
            if lo <= value <= hi:
                return (count / max(distinct, 1)) / self.num_rows
        return 0.0

    def estimate(self, op: str, value) -> float:
        """Estimated selectivity of ``column op value``."""
        if op == "<=":
            return self.estimate_le(value)
        if op == "<":
            return max(self.estimate_le(value) - self.estimate_eq(value), 0.0)
        if op == "=":
            return self.estimate_eq(value)
        if op == "!=":
            return 1.0 - self.estimate_eq(value)
        if op == ">":
            return 1.0 - self.estimate_le(value)
        if op == ">=":
            return min(
                1.0 - self.estimate_le(value) + self.estimate_eq(value), 1.0
            )
        raise ValueOutOfRangeError(f"unknown operator {op!r}")

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram(buckets={self.num_buckets}, "
            f"rows={self.num_rows}, range=[{self._lows[0]}, {self._highs[-1]}])"
        )
