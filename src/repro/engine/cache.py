"""A shared, lock-protected LRU cache of decoded bitmaps.

:class:`SharedBitmapCache` generalizes the per-index LRU policy of
:class:`repro.storage.buffer.BufferPool` to the engine setting: one cache
serves every index the :class:`~repro.engine.engine.QueryEngine` holds, so
hot bitmaps compete for the same ``capacity`` slots regardless of which
relation or attribute they belong to.  Keys are opaque hashable tuples
(the engine uses ``(relation, attribute, component, slot)``).

Capacity is two-dimensional: an entry-count limit (``capacity``) and an
optional **byte budget** (``byte_budget``).  The byte budget exists for
the compressed execution mode — a cached
:class:`~repro.bitmaps.compressed.WahBitVector` is often 10–1000x smaller
than the dense bitmap of the same column, so an entry-count LRU wildly
misstates the memory a mixed cache actually holds.  Entries are sized
uniformly via their ``nbytes`` attribute (both bitmap representations
expose it) and evicted in LRU order until both limits are satisfied.

Concurrency contract
--------------------
All bookkeeping (the LRU order, the byte accounting, the
hit/miss/eviction counters) mutates under one internal lock, so any
number of worker threads may ``get`` and ``put`` concurrently.  Loading a
missed bitmap is deliberately *not* done under the lock — two threads
racing on the same cold key may both load it, which is harmless (the
second ``put`` wins) and keeps slow fetches from serializing the whole
engine.  The invariant tests rely on is::

    hits + misses == number of get() calls

A ``capacity`` of 0 disables caching entirely: every ``get`` is a miss and
``put`` is a no-op, matching the zero-capacity semantics of
:class:`~repro.storage.buffer.BufferPool`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable

from repro.errors import BufferConfigError


class SharedBitmapCache:
    """A thread-safe LRU bitmap cache keyed by arbitrary hashable keys.

    Parameters
    ----------
    capacity:
        Maximum number of cached bitmaps.  ``0`` disables caching (every
        lookup misses, nothing is ever stored); ``None`` leaves the entry
        count unlimited (use with a ``byte_budget``).
    byte_budget:
        Optional maximum total ``nbytes`` across cached entries.  Evicts
        LRU-first until the budget holds.  An entry larger than the whole
        budget is not cached at all.
    """

    def __init__(self, capacity: int | None, byte_budget: int | None = None):
        if capacity is not None and capacity < 0:
            raise BufferConfigError(f"cache capacity must be >= 0, got {capacity}")
        if byte_budget is not None and byte_budget <= 0:
            raise BufferConfigError(
                f"byte_budget must be > 0 (or None for unlimited), got {byte_budget}"
            )
        if capacity is None and byte_budget is None:
            raise BufferConfigError(
                "an unbounded cache needs a capacity or a byte_budget"
            )
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.bytes_cached = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Per-group hit/miss counters, keyed by the first element of a
        # tuple key (the engine keys by (relation, attribute, ...), so
        # groups are relations).  Non-tuple keys land under their repr.
        self._groups: dict[str, list[int]] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def _group_of(key: Hashable) -> str:
        if isinstance(key, tuple) and key:
            return str(key[0])
        return str(key)

    def get(self, key: Hashable):
        """Return the cached bitmap for ``key``, or ``None`` on a miss."""
        group = self._group_of(key)
        with self._lock:
            counters = self._groups.get(group)
            if counters is None:
                counters = self._groups[group] = [0, 0]
            bitmap = self._entries.get(key)
            if bitmap is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                counters[0] += 1
                return bitmap
            self.misses += 1
            counters[1] += 1
            return None

    def put(self, key: Hashable, bitmap) -> None:
        """Insert (or refresh) a bitmap, evicting LRU entries while either
        the entry-count or byte limit is exceeded."""
        if self.capacity == 0:
            return
        size = bitmap.nbytes
        if self.byte_budget is not None and size > self.byte_budget:
            return  # would evict the whole cache and still not fit
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self.bytes_cached -= old.nbytes
            self._entries[key] = bitmap
            self._entries.move_to_end(key)
            self.bytes_cached += size
            while self._entries and self._over_limit():
                _, evicted = self._entries.popitem(last=False)
                self.bytes_cached -= evicted.nbytes
                self.evictions += 1

    def _over_limit(self) -> bool:
        if self.capacity is not None and len(self._entries) > self.capacity:
            return True
        return self.byte_budget is not None and self.bytes_cached > self.byte_budget

    def drop_group(self, group: str) -> int:
        """Evict every entry of one group (relation); returns how many.

        The engine's invalidation path: after a registered relation's
        data changes, its cached bitmaps are stale and must go, while
        entries of other relations stay resident.  Dropped entries count
        as evictions; the group's hit/miss history is preserved.
        """
        with self._lock:
            doomed = [
                key for key in self._entries if self._group_of(key) == group
            ]
            for key in doomed:
                self.bytes_cached -= self._entries.pop(key).nbytes
                self.evictions += 1
            return len(doomed)

    def clear(self) -> None:
        """Drop every cached bitmap and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.bytes_cached = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._groups.clear()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def fetches(self) -> int:
        """Total lookups routed through the cache (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A point-in-time, self-consistent view of the cache counters."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "byte_budget": self.byte_budget,
                "size": len(self._entries),
                "bytes_cached": self.bytes_cached,
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "hit_rate": hits / total if total else 0.0,
                "groups": {
                    name: {
                        "hits": h,
                        "misses": m,
                        "hit_rate": h / (h + m) if h + m else 0.0,
                    }
                    for name, (h, m) in sorted(self._groups.items())
                },
            }

    def __repr__(self) -> str:
        return (
            f"SharedBitmapCache(capacity={self.capacity}, "
            f"byte_budget={self.byte_budget}, size={len(self)}, "
            f"bytes={self.bytes_cached}, hits={self.hits}, "
            f"misses={self.misses})"
        )
