"""A shared, lock-protected LRU cache of decoded bitmaps.

:class:`SharedBitmapCache` generalizes the per-index LRU policy of
:class:`repro.storage.buffer.BufferPool` to the engine setting: one cache
serves every index the :class:`~repro.engine.engine.QueryEngine` holds, so
hot bitmaps compete for the same ``capacity`` slots regardless of which
relation or attribute they belong to.  Keys are opaque hashable tuples
(the engine uses ``(relation, attribute, component, slot)``).

Concurrency contract
--------------------
All bookkeeping (the LRU order, the hit/miss/eviction counters) mutates
under one internal lock, so any number of worker threads may ``get`` and
``put`` concurrently.  Loading a missed bitmap is deliberately *not* done
under the lock — two threads racing on the same cold key may both load it,
which is harmless (the second ``put`` wins) and keeps slow fetches from
serializing the whole engine.  The invariant tests rely on is::

    hits + misses == number of get() calls

A ``capacity`` of 0 disables caching entirely: every ``get`` is a miss and
``put`` is a no-op, matching the zero-capacity semantics of
:class:`~repro.storage.buffer.BufferPool`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable

from repro.bitmaps.bitvector import BitVector
from repro.errors import BufferConfigError


class SharedBitmapCache:
    """A thread-safe LRU bitmap cache keyed by arbitrary hashable keys.

    Parameters
    ----------
    capacity:
        Maximum number of cached bitmaps.  ``0`` disables caching (every
        lookup misses, nothing is ever stored).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise BufferConfigError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, BitVector] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> BitVector | None:
        """Return the cached bitmap for ``key``, or ``None`` on a miss."""
        with self._lock:
            bitmap = self._entries.get(key)
            if bitmap is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return bitmap
            self.misses += 1
            return None

    def put(self, key: Hashable, bitmap: BitVector) -> None:
        """Insert (or refresh) a bitmap, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = bitmap
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached bitmap and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def fetches(self) -> int:
        """Total lookups routed through the cache (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A point-in-time, self-consistent view of the cache counters."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "hit_rate": hits / total if total else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"SharedBitmapCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
