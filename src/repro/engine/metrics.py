"""Engine-level metrics: per-query stats merged under a lock.

Worker threads finish queries in arbitrary order; each reports its
latency and :class:`~repro.stats.ExecutionStats` to one
:class:`EngineMetrics`, which merges them under a lock so the aggregate is
always self-consistent.  ``snapshot()`` computes the serving-side numbers
an operator watches: query count, p50/p95/p99 latency, and the summed
bitmap-level counters (scans, ops, bytes read, buffer hits).
"""

from __future__ import annotations

import threading

from repro.stats import ExecutionStats


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class EngineMetrics:
    """Lock-protected aggregation of per-query latencies and stats."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._stats = ExecutionStats()
        self.queries = 0
        self.failures = 0

    def record(self, latency_seconds: float, stats: ExecutionStats) -> None:
        """Fold one completed query into the aggregate."""
        with self._lock:
            self.queries += 1
            self._latencies.append(latency_seconds)
            self._stats.merge(stats)

    def record_failure(self) -> None:
        """Count a query that raised instead of completing."""
        with self._lock:
            self.failures += 1

    def reset(self) -> None:
        """Zero every counter (for benchmarking phases)."""
        with self._lock:
            self._latencies.clear()
            self._stats = ExecutionStats()
            self.queries = 0
            self.failures = 0

    @property
    def stats(self) -> ExecutionStats:
        """An independent copy of the merged execution stats."""
        with self._lock:
            return self._stats.copy()

    def snapshot(self) -> dict:
        """Aggregate metrics as a plain dict (stable keys, JSON-friendly)."""
        with self._lock:
            latencies = sorted(self._latencies)
            queries = self.queries
            failures = self.failures
            stats = self._stats.copy()
        out = {
            "queries": queries,
            "failures": failures,
            "latency_ms": {
                "mean": 1e3 * sum(latencies) / len(latencies) if latencies else 0.0,
                "p50": 1e3 * percentile(latencies, 0.50) if latencies else 0.0,
                "p95": 1e3 * percentile(latencies, 0.95) if latencies else 0.0,
                "p99": 1e3 * percentile(latencies, 0.99) if latencies else 0.0,
                "max": 1e3 * latencies[-1] if latencies else 0.0,
            },
            "stats": stats.as_dict(),
        }
        return out
