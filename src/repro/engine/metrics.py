"""Engine-level metrics: per-query stats merged under a lock.

Worker threads finish queries in arbitrary order; each reports its
latency and :class:`~repro.stats.ExecutionStats` to one
:class:`EngineMetrics`, which merges them under a lock so the aggregate is
always self-consistent.  ``snapshot()`` computes the serving-side numbers
an operator watches: query count, p50/p95/p99 latency, and the summed
bitmap-level counters (scans, ops, bytes read, buffer hits) — globally and
broken down per relation, per access path, and per bitmap codec.
``snapshot_text()`` renders
the same numbers in the Prometheus text exposition format for scraping.

Latencies are held in a bounded :class:`LatencyReservoir` (Algorithm R
uniform sampling), not an ever-growing list: a long-lived serving engine
records millions of queries, and the old unbounded list was a slow memory
leak.  Count, sum, and max stay exact; percentiles come from the sample,
which is the complete history until ``reservoir_size`` queries have been
seen (the default 2048 keeps every small-scale workload bit-identical to
the exact computation).
"""

from __future__ import annotations

import random
import threading

from repro.stats import ExecutionStats


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class LatencyReservoir:
    """Bounded uniform sample of a latency stream (Vitter's Algorithm R).

    Count, total, and max are exact regardless of how many values stream
    through; the sample (and therefore any percentile) is exact while
    ``count <= capacity`` and an unbiased uniform subsample afterwards.
    Not thread-safe — :class:`EngineMetrics` serializes access.
    """

    __slots__ = ("capacity", "_sample", "count", "total", "max", "_rng")

    def __init__(self, capacity: int = 2048, seed: int = 0x5EED):
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._sample: list[float] = []
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        # Seeded so snapshots are reproducible run-to-run.
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._sample[j] = value

    def clear(self) -> None:
        self._sample.clear()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def sorted_sample(self) -> list[float]:
        return sorted(self._sample)

    def __len__(self) -> int:
        return len(self._sample)

    def percentiles(self, fractions: tuple[float, ...]) -> list[float]:
        """Percentile estimates for the given fractions (0 when empty)."""
        ordered = self.sorted_sample()
        if not ordered:
            return [0.0 for _ in fractions]
        return [percentile(ordered, f) for f in fractions]


class _GroupAggregate:
    """Per-label aggregate (one relation, or one access path)."""

    __slots__ = ("queries", "latency_total", "scans", "ops", "bytes_read", "buffer_hits")

    def __init__(self):
        self.queries = 0
        self.latency_total = 0.0
        self.scans = 0
        self.ops = 0
        self.bytes_read = 0
        self.buffer_hits = 0

    def record(self, latency_seconds: float, stats: ExecutionStats) -> None:
        self.queries += 1
        self.latency_total += latency_seconds
        self.scans += stats.scans
        self.ops += stats.ops
        self.bytes_read += stats.bytes_read
        self.buffer_hits += stats.buffer_hits

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "latency_ms_mean": (
                1e3 * self.latency_total / self.queries if self.queries else 0.0
            ),
            "scans": self.scans,
            "ops": self.ops,
            "bytes_read": self.bytes_read,
            "buffer_hits": self.buffer_hits,
        }


def _prom_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class EngineMetrics:
    """Lock-protected aggregation of per-query latencies and stats."""

    def __init__(self, reservoir_size: int = 2048):
        self._lock = threading.Lock()
        self._latencies = LatencyReservoir(reservoir_size)
        self._stats = ExecutionStats()
        self._by_relation: dict[str, _GroupAggregate] = {}
        self._by_access_path: dict[str, _GroupAggregate] = {}
        self._by_codec: dict[str, _GroupAggregate] = {}
        self._by_backend: dict[str, _GroupAggregate] = {}
        self.queries = 0
        self.failures = 0
        self.timeouts = 0
        self._retries: dict[str, int] = {}
        self._degradations: dict[tuple[str, str, str], int] = {}
        self._corruptions: dict[str, int] = {}

    def record(
        self,
        latency_seconds: float,
        stats: ExecutionStats,
        relation: str | None = None,
        access_path: str | None = None,
        codec: str | None = None,
        backend: str | None = None,
    ) -> None:
        """Fold one completed query into the aggregate.

        ``relation``, ``access_path``, ``codec``, and ``backend`` label
        the query for the per-relation / per-access-path / per-codec /
        per-backend breakdowns; omitted labels simply skip the
        corresponding breakdown.
        """
        with self._lock:
            self.queries += 1
            self._latencies.add(latency_seconds)
            self._stats.merge(stats)
            if relation is not None:
                group = self._by_relation.get(relation)
                if group is None:
                    group = self._by_relation[relation] = _GroupAggregate()
                group.record(latency_seconds, stats)
            if access_path is not None:
                group = self._by_access_path.get(access_path)
                if group is None:
                    group = self._by_access_path[access_path] = _GroupAggregate()
                group.record(latency_seconds, stats)
            if codec is not None:
                group = self._by_codec.get(codec)
                if group is None:
                    group = self._by_codec[codec] = _GroupAggregate()
                group.record(latency_seconds, stats)
            if backend is not None:
                group = self._by_backend.get(backend)
                if group is None:
                    group = self._by_backend[backend] = _GroupAggregate()
                group.record(latency_seconds, stats)

    def record_failure(self) -> None:
        """Count a query that raised instead of completing."""
        with self._lock:
            self.failures += 1

    def record_timeout(self) -> None:
        """Count a query that exceeded its deadline."""
        with self._lock:
            self.timeouts += 1

    def record_retry(self, reason: str) -> None:
        """Count one recovery retry, labeled by its trigger.

        Reasons are short slugs — ``"pool-broken"``, ``"shm-attach"``,
        ``"shard-corrupt"``, ``"injected"``, … — one label per failure
        class the resilience layer recovers from.
        """
        with self._lock:
            self._retries[reason] = self._retries.get(reason, 0) + 1

    def record_degradation(self, source: str, target: str, reason: str) -> None:
        """Count one backend downgrade (e.g. processes -> threads)."""
        with self._lock:
            key = (source, target, reason)
            self._degradations[key] = self._degradations.get(key, 0) + 1

    def record_corruption(self, site: str) -> None:
        """Count one detected-corruption event, labeled by where
        (``"disk"``, ``"shm"``)."""
        with self._lock:
            self._corruptions[site] = self._corruptions.get(site, 0) + 1

    def reset(self) -> None:
        """Zero every counter (for benchmarking phases)."""
        with self._lock:
            self._latencies.clear()
            self._stats = ExecutionStats()
            self._by_relation.clear()
            self._by_access_path.clear()
            self._by_codec.clear()
            self._by_backend.clear()
            self.queries = 0
            self.failures = 0
            self.timeouts = 0
            self._retries.clear()
            self._degradations.clear()
            self._corruptions.clear()

    @property
    def stats(self) -> ExecutionStats:
        """An independent copy of the merged execution stats."""
        with self._lock:
            return self._stats.copy()

    def snapshot(self) -> dict:
        """Aggregate metrics as a plain dict (stable keys, JSON-friendly)."""
        with self._lock:
            p50, p95, p99 = self._latencies.percentiles((0.50, 0.95, 0.99))
            latency = {
                "mean": 1e3 * self._latencies.mean,
                "p50": 1e3 * p50,
                "p95": 1e3 * p95,
                "p99": 1e3 * p99,
                "max": 1e3 * self._latencies.max,
            }
            out = {
                "queries": self.queries,
                "failures": self.failures,
                "latency_ms": latency,
                "resilience": {
                    "timeouts": self.timeouts,
                    "retries": dict(sorted(self._retries.items())),
                    "degradations": [
                        {
                            "source": src,
                            "target": dst,
                            "reason": reason,
                            "count": count,
                        }
                        for (src, dst, reason), count in sorted(
                            self._degradations.items()
                        )
                    ],
                    "corruptions": dict(sorted(self._corruptions.items())),
                },
                "stats": self._stats.copy().as_dict(),
                "by_relation": {
                    name: group.as_dict()
                    for name, group in sorted(self._by_relation.items())
                },
                "by_access_path": {
                    name: group.as_dict()
                    for name, group in sorted(self._by_access_path.items())
                },
                "by_codec": {
                    name: group.as_dict()
                    for name, group in sorted(self._by_codec.items())
                },
                "by_backend": {
                    name: group.as_dict()
                    for name, group in sorted(self._by_backend.items())
                },
            }
        return out

    def snapshot_text(self) -> str:
        """The aggregate in the Prometheus text exposition format.

        Global totals are unlabeled families (``repro_queries_total``, …);
        the per-relation and per-access-path breakdowns are separate
        families with a ``relation=`` / ``access_path=`` label so no
        family mixes labeled and unlabeled samples.
        """
        snap = self.snapshot()
        stats = snap["stats"]
        lines = [
            "# HELP repro_queries_total Queries completed by the engine.",
            "# TYPE repro_queries_total counter",
            f"repro_queries_total {snap['queries']}",
            "# HELP repro_query_failures_total Queries that raised.",
            "# TYPE repro_query_failures_total counter",
            f"repro_query_failures_total {snap['failures']}",
            "# HELP repro_timeouts_total Queries that exceeded their deadline.",
            "# TYPE repro_timeouts_total counter",
            f"repro_timeouts_total {snap['resilience']['timeouts']}",
        ]
        lines += [
            "# HELP repro_retries_total Recovery retries by trigger.",
            "# TYPE repro_retries_total counter",
        ]
        for reason, count in snap["resilience"]["retries"].items():
            lines.append(
                f'repro_retries_total{{reason="{_prom_label(reason)}"}} {count}'
            )
        lines += [
            "# HELP repro_degradations_total Backend downgrades by route.",
            "# TYPE repro_degradations_total counter",
        ]
        for entry in snap["resilience"]["degradations"]:
            lines.append(
                f'repro_degradations_total{{source="{_prom_label(entry["source"])}"'
                f',target="{_prom_label(entry["target"])}"'
                f',reason="{_prom_label(entry["reason"])}"}} {entry["count"]}'
            )
        lines += [
            "# HELP repro_corruptions_total Corruptions detected by site.",
            "# TYPE repro_corruptions_total counter",
        ]
        for site, count in snap["resilience"]["corruptions"].items():
            lines.append(
                f'repro_corruptions_total{{site="{_prom_label(site)}"}} {count}'
            )
        lines += [
            "# HELP repro_query_latency_ms Query latency percentiles (milliseconds).",
            "# TYPE repro_query_latency_ms gauge",
        ]
        for key in ("p50", "p95", "p99", "mean", "max"):
            lines.append(
                f'repro_query_latency_ms{{quantile="{key}"}} '
                f"{snap['latency_ms'][key]:.6f}"
            )
        for name, help_text in (
            ("scans", "Bitmap scans (the paper's I/O cost metric)."),
            ("ops", "Bitmap boolean operations (the paper's CPU cost metric)."),
            ("bytes_read", "Bytes read by all access paths."),
            ("buffer_hits", "Bitmap fetches served by a buffer or cache."),
        ):
            lines += [
                f"# HELP repro_{name}_total {help_text}",
                f"# TYPE repro_{name}_total counter",
                f"repro_{name}_total {stats[name]}",
            ]
        for family, label, groups in (
            ("repro_relation", "relation", snap["by_relation"]),
            ("repro_access_path", "access_path", snap["by_access_path"]),
            ("repro_codec", "codec", snap["by_codec"]),
            ("repro_backend", "backend", snap["by_backend"]),
        ):
            for metric in ("queries", "scans", "ops", "bytes_read", "buffer_hits"):
                lines += [
                    f"# HELP {family}_{metric}_total Per-{label} {metric}.",
                    f"# TYPE {family}_{metric}_total counter",
                ]
                for name, group in groups.items():
                    lines.append(
                        f'{family}_{metric}_total{{{label}="{_prom_label(name)}"}} '
                        f"{group[metric]}"
                    )
        return "\n".join(lines) + "\n"
