"""The concurrent serving layer: batch query engine, shared cache, metrics.

See :mod:`repro.engine.engine` for the architecture overview and
``docs/tutorial.md`` ("Serving queries concurrently") for a walkthrough.
"""

from repro.engine.cache import SharedBitmapCache
from repro.engine.engine import AggregateResult, IndexSpec, QueryEngine
from repro.engine.metrics import EngineMetrics, LatencyReservoir, percentile
from repro.engine.registry import IndexRegistry
from repro.engine.resilience import CircuitBreaker, RetryPolicy
from repro.engine.sharding import (
    BACKENDS,
    ProcessShardExecutor,
    ShardedBitmapIndex,
    ShardExport,
    merge_shard_rids,
    shard_bounds,
    sweep_orphan_segments,
)
from repro.query.options import QueryOptions
from repro.trace import ExplainReport, QueryTrace, explain

__all__ = [
    "AggregateResult",
    "BACKENDS",
    "CircuitBreaker",
    "EngineMetrics",
    "ExplainReport",
    "IndexRegistry",
    "IndexSpec",
    "LatencyReservoir",
    "ProcessShardExecutor",
    "QueryEngine",
    "QueryOptions",
    "QueryTrace",
    "RetryPolicy",
    "ShardExport",
    "ShardedBitmapIndex",
    "SharedBitmapCache",
    "explain",
    "merge_shard_rids",
    "percentile",
    "shard_bounds",
    "sweep_orphan_segments",
]
