"""The concurrent serving layer: batch query engine, shared cache, metrics.

See :mod:`repro.engine.engine` for the architecture overview and
``docs/tutorial.md`` ("Serving queries concurrently") for a walkthrough.
"""

from repro.engine.cache import SharedBitmapCache
from repro.engine.engine import IndexSpec, QueryEngine
from repro.engine.metrics import EngineMetrics, percentile
from repro.engine.registry import IndexRegistry

__all__ = [
    "EngineMetrics",
    "IndexRegistry",
    "IndexSpec",
    "QueryEngine",
    "SharedBitmapCache",
    "percentile",
]
