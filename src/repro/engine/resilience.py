"""Retry and circuit-breaker policies for the serving engine.

The process backend has real failure modes — workers die, shared-memory
publications can be torn, the pool itself can break.  Recovery must be
*bounded* (a stuck backend may not consume unbounded wall-clock) and
*observable* (every retry and degradation lands in the metrics).  This
module holds the two policy objects the engine consults:

- :class:`RetryPolicy` — how many times to retry a failed dispatch and
  how long to wait between attempts: exponential backoff with seeded
  jitter, so concurrent engines do not retry in lockstep while tests
  stay deterministic.
- :class:`CircuitBreaker` — per-key (the engine keys by relation)
  failure accounting.  After ``failure_threshold`` consecutive failures
  the circuit *opens*: the engine stops sending that relation's queries
  to the failing backend and serves from the degradation ladder instead,
  sparing the pool a rebuild storm.  After ``reset_after_seconds`` the
  circuit goes *half-open* and one trial dispatch is allowed through; a
  success closes it, a failure re-opens it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import EngineConfigError

#: Circuit states (values chosen for readable snapshots).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic (seeded) jitter.

    Attempt ``k`` (0-based) sleeps
    ``min(base_delay_seconds * multiplier**k, max_delay_seconds)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.  ``max_retries=0`` disables retries —
    the first failure goes straight to degradation.
    """

    max_retries: int = 2
    base_delay_seconds: float = 0.05
    multiplier: float = 2.0
    max_delay_seconds: float = 1.0
    jitter: float = 0.5
    seed: int = 0x5EED

    def __post_init__(self):
        if self.max_retries < 0:
            raise EngineConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise EngineConfigError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise EngineConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise EngineConfigError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delays(self) -> Iterator[float]:
        """The backoff schedule for one recovery episode (fresh each call)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_retries):
            base = min(
                self.base_delay_seconds * self.multiplier**attempt,
                self.max_delay_seconds,
            )
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, base * factor)


class CircuitBreaker:
    """Per-key consecutive-failure breaker with half-open recovery.

    Thread-safe.  Keys are opaque strings (the engine uses relation
    names).  An unknown key is a closed circuit — relations start
    healthy.  ``clock`` is injectable so tests can drive the reset
    window without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise EngineConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_seconds < 0:
            raise EngineConfigError(
                f"reset_after_seconds must be >= 0, got {reset_after_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_seconds = reset_after_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # key -> [state, consecutive_failures, opened_at]
        self._states: dict[str, list] = {}

    def allow(self, key: str) -> bool:
        """May a dispatch for ``key`` proceed on the protected backend?

        Open circuits whose reset window has elapsed transition to
        half-open and let one trial through; the next
        :meth:`record_success` / :meth:`record_failure` decides whether
        the circuit closes or re-opens.
        """
        with self._lock:
            entry = self._states.get(key)
            if entry is None or entry[0] != OPEN:
                return True
            if self._clock() - entry[2] >= self.reset_after_seconds:
                entry[0] = HALF_OPEN
                return True
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            entry = self._states.get(key)
            if entry is not None:
                entry[0] = CLOSED
                entry[1] = 0

    def record_failure(self, key: str) -> None:
        with self._lock:
            entry = self._states.get(key)
            if entry is None:
                entry = self._states[key] = [CLOSED, 0, 0.0]
            entry[1] += 1
            if entry[0] == HALF_OPEN or entry[1] >= self.failure_threshold:
                entry[0] = OPEN
                entry[2] = self._clock()

    def state(self, key: str) -> str:
        with self._lock:
            entry = self._states.get(key)
            if entry is None:
                return CLOSED
            if (
                entry[0] == OPEN
                and self._clock() - entry[2] >= self.reset_after_seconds
            ):
                return HALF_OPEN
            return entry[0]

    def reset(self) -> None:
        """Close every circuit and forget the failure history."""
        with self._lock:
            self._states.clear()

    def snapshot(self) -> dict:
        """Per-key breaker state for the engine's metrics snapshot."""
        with self._lock:
            now = self._clock()
            out = {}
            for key, (state, failures, opened_at) in sorted(self._states.items()):
                if state == OPEN and now - opened_at >= self.reset_after_seconds:
                    state = HALF_OPEN
                out[key] = {
                    "state": state,
                    "consecutive_failures": failures,
                    "seconds_open": (now - opened_at) if state != CLOSED else 0.0,
                }
            return out

    def __repr__(self) -> str:
        with self._lock:
            open_keys = [k for k, v in self._states.items() if v[0] == OPEN]
        return (
            f"CircuitBreaker(threshold={self.failure_threshold}, "
            f"reset_after={self.reset_after_seconds}s, open={open_keys})"
        )
