"""A concurrent batch query engine over bitmap-indexed relations.

:class:`QueryEngine` is the serving layer the single-shot executor of
:mod:`repro.query.executor` lacks: it registers relations once, builds each
attribute's :class:`~repro.core.index.BitmapIndex` lazily behind a
thread-safe :class:`~repro.engine.registry.IndexRegistry`, routes every
bitmap fetch through one shared :class:`~repro.engine.cache.SharedBitmapCache`,
and evaluates queries — single or batched — on a thread pool.

:meth:`QueryEngine.query` is the unified entry point: it accepts an
:class:`~repro.query.predicate.AttributePredicate`, a boolean
:class:`~repro.query.expression.Expression` tree, or a textual expression
string, and always returns a :class:`~repro.query.executor.QueryResult`.
Expression evaluation routes every leaf's bitmap fetches through the same
shared cache as the single-predicate path.  :meth:`QueryEngine.explain`
runs a query with tracing on and returns an
:class:`~repro.trace.ExplainReport` comparing the paper's cost-model
prediction against the observed counters.

Query evaluation does not verify by default — the serving path must not
pay a ground-truth scan per query; correctness is pinned by the
differential and concurrency test suites instead.  Pass
``QueryOptions(verify=True)`` to opt in.

Execution backends: batches run on one of three pluggable backends
(``QueryEngine(backend=...)`` or per call via
:attr:`~repro.query.options.QueryOptions.backend`).  ``inline`` evaluates
sequentially on the calling thread; ``threads`` uses a persistent
thread pool — enough when workers overlap modeled I/O waits or numpy
releases the GIL, but CPU-bound batches serialize on the interpreter;
``processes`` escapes the GIL entirely by partitioning each relation into
row-range shards (:mod:`repro.engine.sharding`), publishing the shard
bitmaps to shared memory once, and evaluating every batch across a
persistent process pool, merging per-shard RIDs by offset concatenation.
"""

from __future__ import annotations

import logging
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import Base, integer_nth_root_ceil
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.engine.cache import SharedBitmapCache
from repro.engine.metrics import EngineMetrics
from repro.engine.registry import IndexRegistry
from repro.engine.resilience import CircuitBreaker, RetryPolicy
from repro.engine.sharding import (
    BACKENDS,
    ProcessShardExecutor,
    ShardedBitmapIndex,
    ShardExport,
    ShardQueryOutcome,
    sweep_orphan_segments,
    translate_expression,
)
from repro.errors import (
    CorruptShardError,
    EngineConfigError,
    InjectedFaultError,
    QueryTimeoutError,
    ShmAttachError,
)
from repro.faults import Deadline, FaultPlan
from repro.query.executor import (
    AccessPath,
    QueryResult,
    VerificationError,
    execute,
)
from repro.core.evaluation import group_counts
from repro.query.expression import Comparison, Expression
from repro.query.options import DEFAULT_OPTIONS, QueryOptions, normalize_query
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.stats import ExecutionStats
from repro.storage.disk import DiskModel
from repro.trace import ExplainReport, QueryTrace, build_explain_report

log = logging.getLogger("repro.engine")

#: Errors the process backend treats as *recoverable*: retry with
#: backoff, then degrade.  A deadline miss is deliberately absent —
#: retrying cannot un-spend a wall-clock budget.
_RECOVERABLE = (
    BrokenProcessPool,
    ShmAttachError,
    CorruptShardError,
    InjectedFaultError,
    OSError,
)


def _recovery_reason(exc: BaseException) -> str:
    """Metrics label for one recoverable dispatch failure."""
    if isinstance(exc, BrokenProcessPool):
        return "pool-broken"
    if isinstance(exc, ShmAttachError):
        return "shm-attach"
    if isinstance(exc, CorruptShardError):
        return "shard-corrupt"
    if isinstance(exc, InjectedFaultError):
        return "injected"
    return "os-error"


@dataclass(frozen=True)
class IndexSpec:
    """How to build the bitmap index of one registered attribute.

    ``base`` pins an exact decomposition (it must cover the attribute's
    cardinality).  ``components`` instead asks for the smallest uniform
    ``n``-component base for whatever the cardinality turns out to be —
    the right knob when one registration covers attributes of different
    cardinalities.  With neither, the single-component base ``<C>`` is
    used (the index default).  ``codec`` selects this attribute's bitmap
    representation (``'dense'``/``'wah'``/``'roaring'``); ``None`` defers
    to the engine's default.
    """

    base: Base | None = None
    encoding: EncodingScheme = EncodingScheme.RANGE
    components: int | None = None
    codec: str | None = None

    def resolve_base(self, cardinality: int) -> Base | None:
        if self.base is not None:
            return self.base
        if self.components is not None:
            b = integer_nth_root_ceil(cardinality, self.components)
            return Base.uniform(max(b, 2), cardinality)
        return None


@dataclass(frozen=True)
class _AggregateQuery:
    """Internal marker wrapping an expression whose *count* is wanted.

    The batch plumbing (local ladder and process backend) dispatches on
    this type to skip RID materialization entirely: the answer is read
    off bitmap popcounts, never ``indices()``.
    """

    expression: Expression
    by: str | None = None

    def __str__(self) -> str:
        if self.by is None:
            return f"count({self.expression})"
        return f"group_count({self.expression} by {self.by})"


@dataclass
class AggregateResult:
    """A pushed-down aggregate answer: counts without RID materialization.

    ``count`` is the number of matching rows (for ``group_count`` it is
    the sum over groups, which excludes rows whose group column is NULL
    when the index tracks nulls).  ``groups`` maps every dictionary
    value of the grouping column — including zero-count ones, so the
    shape is deterministic across backends and shard counts — to its
    matching-row count; it is ``None`` for plain ``count``.
    """

    count: int
    groups: dict | None
    stats: ExecutionStats
    trace: QueryTrace | None = None


class _CachedSource:
    """Bitmap-source adapter routing one index's fetches through the cache.

    Implements the :class:`~repro.core.index.BitmapSource` protocol.  A hit
    costs no scan (it is charged as a ``buffer_hit``); a miss fetches from
    the wrapped index (which records the scan on the per-query stats) and
    publishes the bitmap to the shared cache.
    """

    __slots__ = (
        "_index",
        "_cache",
        "_prefix",
        "_sleep",
        "_faults",
        "compressed",
        "bitmap_codec",
    )

    def __init__(
        self,
        index: BitmapIndex,
        cache: SharedBitmapCache,
        prefix: tuple,
        sleep_seconds_per_byte: tuple[float, float] | None,
        codec: str = "dense",
        faults: FaultPlan | None = None,
    ):
        self._index = index
        self._cache = cache
        self._prefix = prefix
        self._sleep = sleep_seconds_per_byte
        self._faults = faults
        self.bitmap_codec = codec
        self.compressed = codec != "dense"

    @property
    def nbits(self) -> int:
        return self._index.nbits

    @property
    def cardinality(self) -> int:
        return self._index.cardinality

    @property
    def base(self) -> Base:
        return self._index.base

    @property
    def encoding(self) -> EncodingScheme:
        return self._index.encoding

    @property
    def nonnull(self):
        if self.compressed:
            return self._index.as_compressed(self.bitmap_codec).nonnull
        with_codec = getattr(self._index, "with_codec", None)
        if with_codec is not None:
            # A store-backed source may persist a compressed codec while
            # the engine serves dense; ask for the dense representation.
            return with_codec("dense").nonnull
        return self._index.nonnull

    def fetch(self, component: int, slot: int, stats: ExecutionStats):
        if stats.deadline is not None:
            stats.deadline.check("fetch")
        key = self._prefix + (component, slot)
        bitmap = self._cache.get(key)
        if bitmap is not None and self._faults is not None:
            spec = self._faults.check(
                "cache.get", ident="/".join(str(part) for part in key)
            )
            if spec is not None:
                bitmap = None  # forced miss: refetch from the index
        if bitmap is not None:
            stats.buffer_hits += 1
            if stats.trace is not None:
                stats.trace.event(
                    "cache.hit",
                    kind="cache",
                    component=component,
                    slot=slot,
                    relation=self._prefix[0],
                    attribute=self._prefix[1],
                    codec=self.bitmap_codec,
                )
            return bitmap
        bitmap = self._index.fetch(
            component, slot, stats, codec=self.bitmap_codec
        )
        if self._sleep is not None:
            seek, per_byte = self._sleep
            wait = seek + per_byte * bitmap.nbytes
            stats.io_seconds += wait
            if wait > 0:
                if stats.trace is not None:
                    with stats.trace.span(
                        "io.wait", kind="io", component=component, slot=slot
                    ):
                        time.sleep(wait)
                else:
                    time.sleep(wait)
        self._cache.put(key, bitmap)
        return bitmap


class QueryEngine:
    """Serves queries over registered, bitmap-indexed relations.

    Parameters
    ----------
    cache_capacity:
        Bitmaps held by the shared LRU cache (0 disables caching).
    max_workers:
        Default thread-pool width for :meth:`query_batch`.
    storage:
        Optional backend implementing the :class:`repro.storage.Storage`
        protocol.  A :class:`~repro.storage.disk.DiskModel` makes every
        cache miss sleep the modeled read latency (scaled by
        ``io_time_scale``), so the engine behaves like a disk-backed
        server rather than a pure in-memory structure.  An
        :class:`~repro.storage.store.IndexStore` serves persisted indexes
        straight off its mmap-backed files — register the store's
        :meth:`~repro.storage.store.IndexStore.relation_view` (or use
        :func:`repro.open_store`) and queries read only the bitmaps they
        touch.  Leave ``None`` for pure in-memory tests.
    io_model:
        Deprecated alias of ``storage`` (warns once); kept for callers
        predating the unified Storage protocol.
    io_time_scale:
        Multiplier applied to the modeled latency (e.g. ``0.1`` to run a
        benchmark 10x faster than the era model).
    compressed:
        Serve and operate on WAH-compressed bitmaps end-to-end: fetches
        return :class:`~repro.bitmaps.compressed.WahBitVector`, the
        evaluators run in the compressed domain, and the shared cache
        holds compressed payloads (pair with ``cache_bytes`` — compressed
        entries are far smaller, so a byte budget is the honest capacity).
        Shorthand for ``codec="wah"``.
    codec:
        The engine's default bitmap representation: ``'dense'``,
        ``'wah'``, or ``'roaring'``.  Overridable per attribute via
        :attr:`IndexSpec.codec` and per query via
        :attr:`~repro.query.options.QueryOptions.codec`.
    cache_bytes:
        Optional byte budget for the shared cache (see
        :class:`~repro.engine.cache.SharedBitmapCache`).
    backend:
        Default execution backend for queries: ``'inline'``,
        ``'threads'`` (default), or ``'processes'``.  Overridable per
        query via :attr:`~repro.query.options.QueryOptions.backend`.
    shards:
        Default row-range shard count for the process backend (``None``
        = match the worker count of each batch).
    start_method:
        Multiprocessing start method for the process backend (``None`` =
        ``'fork'`` where available, else ``'spawn'``).
    retry:
        :class:`~repro.engine.resilience.RetryPolicy` governing process-
        backend recovery (``None`` = the default policy: 2 retries,
        exponential backoff with seeded jitter).
    breaker:
        :class:`~repro.engine.resilience.CircuitBreaker` keyed by
        relation; an open circuit routes that relation's process-backend
        batches down the degradation ladder without touching the pool.
        ``None`` = the default breaker (3 consecutive failures open it).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed at the engine's
        injection seams (cache lookups, worker dispatch, shm attach) —
        the deterministic chaos harness.  Leave ``None`` in production.

    Worker pools (thread and process) are created lazily and persist for
    the engine's lifetime; call :meth:`close` — or use the engine as a
    context manager — to shut them down and unlink shared-memory
    publications.  The process backend evaluates bitmaps in worker
    processes, so the shared cache and modeled I/O waits do not apply to
    it (shard payloads are memory-resident by construction).
    """

    #: Codecs the engine can serve.
    CODECS = ("dense", "wah", "roaring")

    #: One-shot flag for the io_model= deprecation shim.
    _warned_io_model = False

    def __init__(
        self,
        *,
        cache_capacity: int = 256,
        max_workers: int = 4,
        storage=None,
        io_model: DiskModel | None = None,
        io_time_scale: float = 1.0,
        compressed: bool = False,
        codec: str | None = None,
        cache_bytes: int | None = None,
        backend: str = "threads",
        shards: int | None = None,
        start_method: str | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if max_workers < 1:
            raise EngineConfigError(f"max_workers must be >= 1, got {max_workers}")
        if io_time_scale < 0:
            raise EngineConfigError("io_time_scale must be >= 0")
        if codec is None:
            codec = "wah" if compressed else "dense"
        if codec not in self.CODECS:
            raise EngineConfigError(
                f"unknown codec {codec!r}; expected one of {self.CODECS}"
            )
        if backend not in BACKENDS:
            raise EngineConfigError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if shards is not None and shards < 1:
            raise EngineConfigError(f"shards must be >= 1, got {shards}")
        self.max_workers = max_workers
        self.codec = codec
        self.compressed = codec != "dense"
        self.backend = backend
        self.shards = shards
        self.cache = SharedBitmapCache(cache_capacity, byte_budget=cache_bytes)
        self.registry = IndexRegistry()
        self.metrics = EngineMetrics()
        self._relations: dict[str, Relation] = {}
        self._specs: dict[str, dict[str, IndexSpec]] = {}
        self._default_relation: str | None = None
        if io_model is not None:
            if storage is not None:
                raise EngineConfigError(
                    "pass storage= or the deprecated io_model=, not both"
                )
            if not QueryEngine._warned_io_model:
                QueryEngine._warned_io_model = True
                warnings.warn(
                    "the io_model= keyword is deprecated; pass the same "
                    "DiskModel as storage= (any repro.storage.Storage "
                    "backend is accepted)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            storage = io_model
        self.storage = storage
        self._io_model = storage if isinstance(storage, DiskModel) else None
        if storage is not None:
            # Per-miss sleep derived through the protocol: a DiskModel
            # yields its seek/bandwidth figures; real-I/O backends return
            # 0.0 (their reads pay actual wall-clock time) so no sleep.
            seek = storage.read_seconds(1, 0) * io_time_scale
            per_byte = storage.read_seconds(0, 1) * io_time_scale
            self._sleep = (seek, per_byte) if (seek or per_byte) else None
        else:
            self._sleep = None
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.fault_plan = fault_plan
        self._start_method = start_method
        self._pool_lock = threading.Lock()
        self._thread_pools: dict[int, ThreadPoolExecutor] = {}
        self._process_executors: dict[int, ProcessShardExecutor] = {}
        self._export_lock = threading.Lock()
        self._exports: dict[tuple, ShardExport] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Shut down worker pools and unlink shared-memory publications.

        Idempotent.  A closed engine still serves inline queries; batch
        entry points needing a pool raise
        :class:`~repro.errors.EngineConfigError`.
        """
        with self._pool_lock:
            already = self._closed
            self._closed = True
            thread_pools = list(self._thread_pools.values())
            self._thread_pools.clear()
            process_executors = list(self._process_executors.values())
            self._process_executors.clear()
        with self._export_lock:
            exports = list(self._exports.values())
            self._exports.clear()
        if already and not (thread_pools or process_executors or exports):
            return
        for pool in thread_pools:
            pool.shutdown(wait=wait)
        for executor in process_executors:
            executor.shutdown(wait=wait)
        for export in exports:
            export.close()
        # Release storage handles (an IndexStore holds open mmaps); the
        # backend reopens lazily, so closing here is always safe.
        storage_close = getattr(self.storage, "close", None)
        if storage_close is not None:
            storage_close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        relation: Relation,
        *,
        attributes: list[str] | None = None,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        components: int | None = None,
        overrides: dict[str, IndexSpec] | None = None,
    ) -> None:
        """Make a relation queryable through the engine.

        ``attributes`` restricts which columns are served (default: all).
        ``base``/``encoding``/``components`` configure every served
        attribute's index (see :class:`IndexSpec`); ``overrides`` replaces
        the spec for individual attributes.  Indexes are built lazily on
        first use — registration itself is cheap.
        """
        if attributes is None:
            attributes = sorted(relation.columns)
        specs: dict[str, IndexSpec] = {}
        for attribute in attributes:
            relation.column(attribute)  # raise early on unknown columns
            specs[attribute] = IndexSpec(
                base=base, encoding=encoding, components=components
            )
        for attribute, spec in (overrides or {}).items():
            if attribute not in specs:
                raise EngineConfigError(
                    f"override for {attribute!r} which is not a served attribute"
                )
            specs[attribute] = spec
        self._relations[relation.name] = relation
        self._specs[relation.name] = specs
        if self._default_relation is None:
            self._default_relation = relation.name

    def warm(self, relation: str | None = None) -> int:
        """Eagerly build every served index; returns how many are resident."""
        names = list(self._relations) if relation is None else [self._resolve(relation)]
        for name in names:
            for attribute in self._specs[name]:
                self._index_for(name, attribute)
        return len(self.registry)

    # ------------------------------------------------------------------
    # The unified query API
    # ------------------------------------------------------------------

    def query(
        self,
        query,
        relation: str | None = None,
        *,
        options: QueryOptions | None = None,
        trace: bool = False,
    ) -> QueryResult:
        """Evaluate one query through the cached bitmap path.

        ``query`` is any of the unified forms: an
        :class:`~repro.query.predicate.AttributePredicate`, a boolean
        :class:`~repro.query.expression.Expression` tree, or a textual
        expression string (parsed with the recursive-descent parser).  A
        single comparison — whichever form it arrives in — takes the
        single-predicate fast path; anything else is evaluated as an
        expression tree whose leaf fetches all go through the shared
        cache.  ``trace=True`` is shorthand for
        ``options=QueryOptions(trace=True)``; the recorded
        :class:`~repro.trace.QueryTrace` rides on ``result.trace``.
        """
        options = options if options is not None else DEFAULT_OPTIONS
        if trace and not options.trace:
            options = options.with_(trace=True)
        name = self._resolve(relation)
        q = normalize_query(query)
        if self._backend_for(options) == "processes":
            workers = options.workers or self.max_workers
            return self._process_batch([(name, q)], options, workers)[0]
        if isinstance(q, AttributePredicate):
            return self._run_one(name, q, options)
        return self._run_expression(name, q, options)

    def count(
        self,
        query,
        relation: str | None = None,
        *,
        options: QueryOptions | None = None,
        trace: bool = False,
    ) -> AggregateResult:
        """COUNT(*) of a selection, answered from popcounts alone.

        Accepts the same unified query forms as :meth:`query` but never
        materializes a RID list: the expression's result bitmap is
        popcounted in its native representation (a trace shows an
        ``aggregate.pushdown`` phase and **no** ``materialize`` phase).
        On the process backend each shard returns its local popcount and
        the merge is a summation.  Returns an :class:`AggregateResult`.
        """
        return self._aggregate(query, None, relation, options, trace)

    def group_count(
        self,
        query,
        by: str,
        relation: str | None = None,
        *,
        options: QueryOptions | None = None,
        trace: bool = False,
    ) -> AggregateResult:
        """Per-group COUNT(*) of a selection, grouped by column ``by``.

        For every dictionary value ``v`` of ``by``, the count is the
        popcount of ``expr AND bitmap(by = v)`` — computed in the bitmap
        domain with no RID materialization.  The equality bitmaps come
        through the same cached path as query leaves, and are null-masked
        when ``by``'s index tracks nulls, so NULL rows never land in any
        group (matching SQL ``GROUP BY`` semantics).  ``result.groups``
        maps each dictionary value (including zero-count ones) to its
        count; ``result.count`` is the sum over groups.
        """
        return self._aggregate(query, by, relation, options, trace)

    def _aggregate(
        self,
        query,
        by: str | None,
        relation: str | None,
        options: QueryOptions | None,
        trace: bool,
    ) -> AggregateResult:
        options = options if options is not None else DEFAULT_OPTIONS
        if trace and not options.trace:
            options = options.with_(trace=True)
        name = self._resolve(relation)
        q = normalize_query(query)
        if isinstance(q, AttributePredicate):
            # Aggregates always run the expression machinery; lift the
            # single-predicate form into an equivalent leaf.
            q = Comparison(q.attribute, q.op, q.value)
        if by is not None:
            self._spec_for(name, by)  # raises if ``by`` is not served
        if self._backend_for(options) == "processes":
            workers = options.workers or self.max_workers
            result = self._process_batch(
                [(name, _AggregateQuery(q, by))], options, workers
            )[0]
            assert isinstance(result, AggregateResult)
            return result
        return self._run_aggregate(name, q, by, options)

    def query_batch(
        self,
        queries: list,
        *,
        workers: int | None = None,
        relation: str | None = None,
        options: QueryOptions | None = None,
    ) -> list[QueryResult]:
        """Evaluate a batch of queries, returning results in input order.

        Each item is a query in any unified form (against ``relation``,
        defaulting to the first registered one) or an explicit
        ``(relation_name, query)`` pair.  ``workers=1`` runs the batch
        inline on the calling thread — the sequential baseline;
        ``options.workers`` supplies the width when ``workers`` is not
        passed.  The execution backend comes from ``options.backend``
        (falling back to the engine's configured default): ``threads``
        reuses the engine's persistent pool of the requested width;
        ``processes`` fans each query out across the relation's shards on
        the process pool.
        """
        options = options if options is not None else DEFAULT_OPTIONS
        resolved: list[tuple[str, AttributePredicate | Expression]] = []
        for item in queries:
            if isinstance(item, tuple) and not isinstance(item, Expression):
                name, q = item
                resolved.append((self._resolve(name), normalize_query(q)))
            else:
                resolved.append((self._resolve(relation), normalize_query(item)))
        if workers is None:
            workers = options.workers
        if workers is None:
            workers = self.max_workers
        if workers < 1:
            raise EngineConfigError(f"workers must be >= 1, got {workers}")
        backend = self._backend_for(options)

        if backend == "processes":
            return self._process_batch(resolved, options, workers)
        if backend == "inline":
            workers = 1
        return self._local_batch(resolved, options, workers)

    def _local_batch(
        self,
        resolved: list,
        options: QueryOptions,
        workers: int,
    ) -> list[QueryResult | AggregateResult]:
        """Evaluate a resolved batch on the thread pool (or inline).

        The thread/inline execution shared by :meth:`query_batch` and
        the process backend's degradation ladder.
        """
        threaded = workers > 1 and len(resolved) > 1
        label = "threads" if threaded else "inline"

        def run(name: str, q) -> QueryResult | AggregateResult:
            if isinstance(q, _AggregateQuery):
                return self._run_aggregate(
                    name, q.expression, q.by, options, backend=label
                )
            if isinstance(q, AttributePredicate):
                return self._run_one(name, q, options, backend=label)
            return self._run_expression(name, q, options, backend=label)

        if not threaded:
            return [run(name, q) for name, q in resolved]
        pool = self._thread_pool(workers)
        futures = [pool.submit(run, name, q) for name, q in resolved]
        return [future.result() for future in futures]

    def explain(
        self,
        query,
        relation: str | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> ExplainReport:
        """Run ``query`` with tracing on and report predicted vs. actual cost.

        The query executes for real (same cached path as :meth:`query`)
        but is *not* folded into the serving metrics, so EXPLAIN runs do
        not pollute an operator's dashboards.  The report compares the
        paper's cost model (:func:`repro.core.costmodel.scans_for_predicate`
        per leaf) with the observed counters: on a cold cache
        ``actual scans == predicted``; on a warm one
        ``scans + buffer_hits == predicted``.
        """
        options = options if options is not None else DEFAULT_OPTIONS
        options = options.with_(trace=True)
        name = self._resolve(relation)
        q = normalize_query(query)
        if isinstance(q, AttributePredicate):
            result = self._run_one(name, q, options, record=False)
            mode = "predicate"
        else:
            result = self._run_expression(name, q, options, record=False)
            mode = "expression"
        sources = {
            attribute: self._index_for(name, attribute)
            for attribute in (
                {q.attribute} if isinstance(q, AttributePredicate) else q.attributes()
            )
        }
        io_model = None
        if self._io_model is not None:
            io_model = dict(self._io_model.as_dict())
            io_model["io_seconds"] = result.stats.io_seconds
            io_model["description"] = "modeled cache-miss read waits"
        storage_io = None
        if self.storage is not None and self._io_model is None:
            # Real-I/O backends: report their cumulative counters (bytes
            # actually read, bitmaps materialized, page touches) next to
            # the cost model's predictions.
            storage_io = dict(self.storage.io_snapshot())
        return build_explain_report(
            self._relations[name],
            q,
            sources,
            result,
            mode=mode,
            compressed=self.compressed,
            algorithm=options.algorithm,
            io_model=io_model,
            storage_io=storage_io,
            plan=f"cached-bitmap/{mode}",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine-level metrics: queries, latency percentiles, cache, registry."""
        out = self.metrics.snapshot()
        out["cache"] = self.cache.snapshot()
        out["registry"] = self.registry.snapshot()
        out["breaker"] = self.breaker.snapshot()
        return out

    def snapshot_text(self) -> str:
        """The engine's metrics in the Prometheus text exposition format.

        Extends :meth:`EngineMetrics.snapshot_text` with cache and
        registry gauges (including the per-relation cache hit breakdown).
        """
        cache = self.cache.snapshot()
        registry = self.registry.snapshot()
        lines = [self.metrics.snapshot_text().rstrip("\n")]
        for name, help_text, value in (
            ("cache_entries", "Bitmaps resident in the shared cache.", cache["size"]),
            ("cache_bytes", "Bytes resident in the shared cache.", cache["bytes_cached"]),
            ("cache_hits_total", "Shared-cache hits.", cache["hits"]),
            ("cache_misses_total", "Shared-cache misses.", cache["misses"]),
            ("cache_evictions_total", "Shared-cache evictions.", cache["evictions"]),
            ("registry_indexes", "Bitmap indexes resident.", registry["indexes"]),
        ):
            kind = "counter" if name.endswith("_total") else "gauge"
            lines += [
                f"# HELP repro_{name} {help_text}",
                f"# TYPE repro_{name} {kind}",
                f"repro_{name} {value}",
            ]
        lines += [
            "# HELP repro_relation_cache_hits_total Shared-cache hits per relation.",
            "# TYPE repro_relation_cache_hits_total counter",
        ]
        for group, counters in cache.get("groups", {}).items():
            lines.append(
                f'repro_relation_cache_hits_total{{relation="{group}"}} '
                f"{counters['hits']}"
            )
        lines += [
            "# HELP repro_relation_cache_misses_total Shared-cache misses per relation.",
            "# TYPE repro_relation_cache_misses_total counter",
        ]
        for group, counters in cache.get("groups", {}).items():
            lines.append(
                f'repro_relation_cache_misses_total{{relation="{group}"}} '
                f"{counters['misses']}"
            )
        return "\n".join(lines) + "\n"

    def reset_metrics(self) -> None:
        """Zero the query metrics (cache contents and indexes survive)."""
        self.metrics.reset()

    def reset_cache(self) -> None:
        """Drop cached bitmaps and cache counters (indexes survive)."""
        self.cache.clear()

    def invalidate(
        self, relation: str | None = None, attribute: str | None = None
    ) -> None:
        """Drop built indexes, cached bitmaps, and shard publications.

        Call after mutating a registered relation's underlying data so
        later queries rebuild against the new contents.  ``relation``
        narrows the drop to one relation (default: all registered);
        ``attribute`` to one attribute of it.  Cached bitmaps are evicted
        per relation (the cache groups by relation, not attribute).
        """
        names = (
            [self._resolve(relation)] if relation is not None else list(self._relations)
        )
        for name in names:
            attributes = (
                [attribute]
                if attribute is not None
                else list(self._specs.get(name, ()))
            )
            for attr in attributes:
                self.registry.pop((name, attr))
                for key in self.registry.keys():
                    if (
                        isinstance(key, tuple)
                        and len(key) == 4
                        and key[:3] == (name, attr, "shards")
                    ):
                        self.registry.pop(key)
            with self._export_lock:
                doomed = [
                    key
                    for key in self._exports
                    if key[0] == name
                    and (attribute is None or key[1] == attribute)
                ]
                closing = [self._exports.pop(key) for key in doomed]
            for export in closing:
                export.close()
            self.cache.drop_group(name)

    @property
    def relations(self) -> list[str]:
        return list(self._relations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve(self, relation: str | None) -> str:
        if relation is None:
            if self._default_relation is None:
                raise EngineConfigError("no relation registered with the engine")
            return self._default_relation
        if relation not in self._relations:
            known = ", ".join(sorted(self._relations)) or "<none>"
            raise EngineConfigError(
                f"relation {relation!r} is not registered; registered: {known}"
            )
        return relation

    def _spec_for(self, relation_name: str, attribute: str) -> IndexSpec:
        try:
            return self._specs[relation_name][attribute]
        except KeyError:
            served = ", ".join(sorted(self._specs.get(relation_name, ())))
            raise EngineConfigError(
                f"attribute {attribute!r} of relation {relation_name!r} is not "
                f"served by the engine; served attributes: {served}"
            ) from None

    def _index_for(self, relation_name: str, attribute: str):
        """The bitmap source of one attribute: persisted or built in memory.

        A :class:`~repro.storage.Storage` backend that can serve the
        attribute itself (an :class:`~repro.storage.store.IndexStore`)
        wins — its lazy source is registered in place of an in-memory
        index, so only touched payloads are ever read.  Otherwise the
        index is built from the relation's raw column codes.
        """
        spec = self._spec_for(relation_name, attribute)
        relation = self._relations[relation_name]
        storage = self.storage

        def build():
            if storage is not None:
                source = storage.bitmap_source(relation_name, attribute)
                if source is not None:
                    return source
            column = relation.column(attribute)
            if column.codes is None:
                raise EngineConfigError(
                    f"attribute {attribute!r} of relation {relation_name!r} "
                    f"has no raw values to index and the storage backend "
                    f"holds no persisted bitmaps for it"
                )
            return BitmapIndex(
                column.codes,
                cardinality=column.cardinality,
                base=spec.resolve_base(column.cardinality),
                encoding=spec.encoding,
                keep_values=False,
            )

        return self.registry.get_or_build((relation_name, attribute), build)

    def _codec_for(
        self,
        relation_name: str,
        attribute: str,
        options: QueryOptions,
        stored: str | None = None,
    ) -> str:
        """Resolve the serving codec.

        Precedence: query override > index spec > the codec the bitmaps
        are persisted in (store-backed sources only — serving the stored
        representation keeps fetches zero-copy/zero-recode) > engine
        default.
        """
        codec = options.codec
        if codec is None:
            spec = self._specs.get(relation_name, {}).get(attribute)
            codec = spec.codec if spec is not None else None
        if codec is None:
            codec = stored
        if codec is None:
            codec = self.codec
        if codec not in self.CODECS:
            raise EngineConfigError(
                f"unknown codec {codec!r}; expected one of {self.CODECS}"
            )
        return codec

    def _source_for(
        self,
        relation_name: str,
        attribute: str,
        options: QueryOptions = DEFAULT_OPTIONS,
    ) -> _CachedSource:
        """The cache-routed bitmap source of one served attribute."""
        index = self._index_for(relation_name, attribute)
        codec = self._codec_for(
            relation_name,
            attribute,
            options,
            stored=getattr(index, "stored_codec", None),
        )
        prefix = (relation_name, attribute)
        if codec != "dense":
            # Entries of different representations for the same slot must
            # not collide in the shared cache.
            prefix += (codec,)
        return _CachedSource(
            index,
            self.cache,
            prefix,
            self._sleep,
            codec=codec,
            faults=self.fault_plan,
        )

    # ------------------------------------------------------------------
    # Worker pools and the process backend
    # ------------------------------------------------------------------

    def _backend_for(self, options: QueryOptions) -> str:
        backend = options.backend if options.backend is not None else self.backend
        if backend not in BACKENDS:
            raise EngineConfigError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return backend

    def _thread_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent thread pool of the requested width (lazy)."""
        with self._pool_lock:
            if self._closed:
                raise EngineConfigError("engine is closed")
            pool = self._thread_pools.get(workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"repro-engine-{workers}",
                )
                self._thread_pools[workers] = pool
            return pool

    def _process_executor(self, workers: int) -> ProcessShardExecutor:
        """The persistent process executor of the requested width (lazy)."""
        with self._pool_lock:
            if self._closed:
                raise EngineConfigError("engine is closed")
            executor = self._process_executors.get(workers)
            if executor is None:
                # Reclaim segments a previous (crashed) publisher left in
                # /dev/shm before committing new ones of our own.
                sweep_orphan_segments()
                executor = ProcessShardExecutor(
                    workers, start_method=self._start_method
                )
                self._process_executors[workers] = executor
            return executor

    def _discard_process_executor(self, workers: int) -> None:
        """Tear down a broken process executor so the next dispatch
        rebuilds it from scratch."""
        with self._pool_lock:
            executor = self._process_executors.pop(workers, None)
        if executor is not None:
            executor.shutdown(wait=False)

    def _drop_exports(self, relations: set[str]) -> None:
        """Unlink the shard publications of the given relations.

        The sharded indexes themselves survive in the registry, so the
        next dispatch re-exports from source — the rebuild path for a
        torn or corrupt publication.
        """
        with self._export_lock:
            doomed = [key for key in self._exports if key[0] in relations]
            closing = [self._exports.pop(key) for key in doomed]
        for export in closing:
            export.close()

    def _sharded_index_for(
        self, relation_name: str, attribute: str, shards: int
    ) -> ShardedBitmapIndex:
        """The row-range-sharded index of one attribute (built once)."""
        spec = self._spec_for(relation_name, attribute)
        relation = self._relations[relation_name]

        def build() -> ShardedBitmapIndex:
            column = relation.column(attribute)
            if column.codes is None:
                raise EngineConfigError(
                    f"the process backend shards raw column codes, which "
                    f"store-backed relation {relation_name!r} does not "
                    f"carry; use the inline or thread backend"
                )
            return ShardedBitmapIndex(
                column.codes,
                cardinality=column.cardinality,
                shards=shards,
                base=spec.resolve_base(column.cardinality),
                encoding=spec.encoding,
                keep_values=False,
            )

        return self.registry.get_or_build(
            (relation_name, attribute, "shards", shards), build
        )

    def _export_for(
        self, relation_name: str, attribute: str, codec: str, shards: int
    ) -> ShardExport:
        """The current shared-memory publication of one sharded index.

        Re-exports (and unlinks the stale blocks) when maintenance has
        bumped the sharded index's version since the last publication.
        """
        sharded = self._sharded_index_for(relation_name, attribute, shards)
        key = (relation_name, attribute, codec, shards)
        stale = None
        with self._export_lock:
            export = self._exports.get(key)
            if export is not None and export.version == sharded.version:
                return export
            stale = export
            export = ShardExport(sharded, codec)
            self._exports[key] = export
        if stale is not None:
            stale.close()
        return export

    def _process_batch(
        self,
        resolved: list,
        options: QueryOptions,
        workers: int,
    ) -> list[QueryResult | AggregateResult]:
        """Evaluate a resolved batch on the sharded process backend.

        The resilient wrapper around :meth:`_process_batch_once`: a
        relation whose circuit breaker is open skips the pool entirely;
        recoverable dispatch failures (broken pool, vanished or corrupt
        shm publication, injected faults) are repaired — pool rebuilt,
        orphan segments swept, publications re-exported from source —
        and retried under the engine's :class:`RetryPolicy`; exhausted
        retries degrade the batch to the thread backend.  Every retry,
        degradation, and corruption lands in the metrics, and (when
        tracing) as ``fault`` events on each result's trace.  A deadline
        miss is not retried: it surfaces as
        :class:`~repro.errors.QueryTimeoutError` immediately.
        """
        shards = options.shards or self.shards or workers
        if shards < 1:
            raise EngineConfigError(f"shards must be >= 1, got {shards}")
        relations = {name for name, _ in resolved}
        blocked = sorted(
            name for name in relations if not self.breaker.allow(f"relation:{name}")
        )
        if blocked:
            self.metrics.record_degradation("processes", "threads", "breaker-open")
            log.warning(
                "process backend breaker open for %s; serving batch on threads",
                ", ".join(blocked),
            )
            return self._local_batch(resolved, options, workers)
        deadline = (
            Deadline(options.deadline_ms)
            if options.deadline_ms is not None
            else None
        )
        fault_events: list[dict] = []
        delays = self.retry_policy.delays()
        attempt = 0
        while True:
            try:
                metas, outcomes = self._process_batch_once(
                    resolved, options, workers, shards, deadline
                )
                break
            except QueryTimeoutError:
                self.metrics.record_timeout()
                self.metrics.record_failure()
                raise
            except _RECOVERABLE as exc:
                reason = _recovery_reason(exc)
                self._repair_after(exc, workers, relations)
                delay = next(delays, None)
                if delay is None:
                    for name in sorted(relations):
                        self.breaker.record_failure(f"relation:{name}")
                    self.metrics.record_degradation(
                        "processes", "threads", "retries-exhausted"
                    )
                    log.warning(
                        "process backend gave up after %d retries (%s: %s); "
                        "serving batch on threads",
                        attempt,
                        reason,
                        exc,
                    )
                    return self._local_batch(resolved, options, workers)
                attempt += 1
                self.metrics.record_retry(reason)
                fault_events.append(
                    {"attempt": attempt, "reason": reason, "error": str(exc)}
                )
                log.warning(
                    "process backend dispatch failed (%s: %s); retry %d in "
                    "%.0f ms",
                    reason,
                    exc,
                    attempt,
                    1e3 * delay,
                )
                if delay > 0:
                    time.sleep(delay)
            except Exception:
                self.metrics.record_failure()
                raise
        for name in sorted(relations):
            self.breaker.record_success(f"relation:{name}")
        return [
            self._finish_process_outcome(
                metas[qid], outcomes[qid], options, shards, fault_events
            )
            for qid in range(len(resolved))
        ]

    def _repair_after(
        self, exc: BaseException, workers: int, relations: set[str]
    ) -> None:
        """Fix what one recoverable dispatch failure broke.

        A broken pool (or raw OSError) is torn down and orphaned shm
        segments swept; a vanished or corrupt publication is dropped so
        the retry re-exports from the in-memory sharded index.
        """
        if isinstance(exc, (BrokenProcessPool, OSError)):
            self._discard_process_executor(workers)
            sweep_orphan_segments()
        if isinstance(exc, (ShmAttachError, CorruptShardError)):
            if isinstance(exc, CorruptShardError):
                self.metrics.record_corruption("shm")
            self._drop_exports(relations)

    def _process_batch_once(
        self,
        resolved: list,
        options: QueryOptions,
        workers: int,
        shards: int,
        deadline: Deadline | None,
    ) -> tuple[list, dict]:
        """One dispatch attempt of a resolved batch on the process pool."""
        executor = self._process_executor(workers)
        # Translate every query to the code domain and publish the
        # sharded indexes its attributes need.  Relations of
        # different sizes may clamp to different effective shard
        # counts, so items are grouped by their relation's effective
        # count and dispatched per group.
        exports: dict[tuple, ShardExport] = {}
        metas: list[tuple] = []
        items: list[tuple] = []
        for qid, (name, q) in enumerate(resolved):
            relation = self._relations[name]
            if isinstance(q, AttributePredicate):
                attributes = (q.attribute,)
                codec = self._codec_for(name, q.attribute, options)
                column = relation.column(q.attribute)
                op, code = column.code_bounds(q.op, q.value)
                payload = ("pred", q.attribute, op, int(code))
                mode = "predicate"
            elif isinstance(q, _AggregateQuery):
                expr_attrs = tuple(sorted(q.expression.attributes()))
                needed = set(expr_attrs)
                if q.by is not None:
                    needed.add(q.by)
                attributes = tuple(sorted(needed))
                codecs = sorted(
                    {self._codec_for(name, a, options) for a in attributes}
                )
                if len(codecs) > 1:
                    raise EngineConfigError(
                        f"aggregate over '{q.expression}' mixes bitmap "
                        f"codecs {codecs}; give its attributes one codec "
                        f"(per-query options.codec overrides every spec)"
                    )
                codec = codecs[0]
                code_expr = translate_expression(q.expression, relation)
                if q.by is None:
                    payload = ("count", expr_attrs, code_expr)
                else:
                    payload = (
                        "group",
                        expr_attrs,
                        code_expr,
                        q.by,
                        relation.column(q.by).cardinality,
                    )
                mode = "aggregate"
            else:
                attributes = tuple(sorted(q.attributes()))
                codecs = sorted(
                    {self._codec_for(name, a, options) for a in attributes}
                )
                if len(codecs) > 1:
                    raise EngineConfigError(
                        f"expression '{q}' mixes bitmap codecs {codecs}; "
                        f"give its attributes one codec (per-query "
                        f"options.codec overrides every spec)"
                    )
                codec = codecs[0]
                payload = ("expr", attributes, translate_expression(q, relation))
                mode = "expression"
            for attr in attributes:
                export_key = (name, attr)
                if export_key not in exports:
                    exports[export_key] = self._export_for(
                        name,
                        attr,
                        self._codec_for(name, attr, options),
                        shards,
                    )
            items.append((qid, name, payload))
            metas.append((name, mode, codec, q))
        groups: dict[int, list] = {}
        for item in items:
            _, name, _ = item
            count = exports[
                next(k for k in exports if k[0] == name)
            ].num_shards
            groups.setdefault(count, []).append(item)
        outcomes: dict[int, ShardQueryOutcome] = {}
        for count, group_items in groups.items():
            needed = {
                key: export
                for key, export in exports.items()
                if export.num_shards == count
            }
            group_outcomes = executor.run_batch(
                needed,
                group_items,
                algorithm=options.algorithm,
                fault_plan=self.fault_plan,
                deadline=deadline,
            )
            for (qid, _, _), outcome in zip(group_items, group_outcomes):
                outcomes[qid] = outcome
        return metas, outcomes

    def _finish_process_outcome(
        self,
        meta: tuple,
        outcome: ShardQueryOutcome,
        options: QueryOptions,
        shards: int,
        fault_events: list[dict] | None = None,
    ) -> QueryResult | AggregateResult:
        """Turn one merged shard outcome into a recorded QueryResult."""
        name, mode, codec, q = meta
        stats = outcome.stats
        access_path = {"predicate": "bitmap", "aggregate": "aggregate"}.get(
            mode, "expression"
        )
        trace = None
        if options.trace:
            trace = QueryTrace(label=str(q))
            trace.event(
                "engine.dispatch",
                kind="plan",
                relation=name,
                mode=mode,
                access_path=access_path,
                backend="processes",
                shards=len(outcome.shard_seconds),
                codec=codec,
            )
            for event in fault_events or ():
                trace.event(
                    "dispatch.retry",
                    kind="fault",
                    attempt=event["attempt"],
                    reason=event["reason"],
                    error=event["error"],
                )
            for shard, (rows, seconds, shard_stats) in enumerate(
                zip(outcome.shard_rows, outcome.shard_seconds, outcome.shard_stats)
            ):
                trace.add_span(
                    "shard.evaluate",
                    kind="shard",
                    seconds=seconds,
                    shard=shard,
                    rows=rows[1] - rows[0],
                    scans=shard_stats.scans,
                    bytes_read=shard_stats.bytes_read,
                )
            if mode == "aggregate":
                # The pushdown is visible even on the process backend:
                # shards returned popcounts, the merge was a summation,
                # and no materialize phase ever ran.
                trace.event("aggregate.pushdown", kind="phase", by=q.by)
            trace.finish()
            stats.trace = trace
        if mode == "aggregate":
            relation = self._relations[name]
            if q.by is None:
                total = int(outcome.aggregate)
                groups = None
            else:
                dictionary = relation.column(q.by).dictionary
                groups = {}
                total = 0
                for code, matched in enumerate(outcome.aggregate):
                    key = dictionary[code]
                    if isinstance(key, np.generic):
                        key = key.item()
                    groups[key] = int(matched)
                    total += int(matched)
            try:
                if options.verify:
                    self._verify_aggregate(
                        relation, q.expression, q.by, total, groups
                    )
            except Exception:
                self.metrics.record_failure()
                raise
            self.metrics.record(
                outcome.latency_seconds,
                stats,
                relation=name,
                access_path="aggregate",
                codec=codec,
                backend="processes",
            )
            return AggregateResult(
                count=total, groups=groups, stats=stats, trace=trace
            )
        try:
            if options.verify:
                relation = self._relations[name]
                if isinstance(q, AttributePredicate):
                    truth = relation.scan(q.attribute, q.op, q.value)
                else:
                    truth = np.nonzero(q.mask(relation))[0]
                if not np.array_equal(outcome.rids, truth):
                    raise VerificationError(
                        f"process backend returned {len(outcome.rids)} RIDs "
                        f"for '{q}'; the scan found {len(truth)}"
                    )
        except Exception:
            self.metrics.record_failure()
            raise
        result = QueryResult(
            rids=outcome.rids,
            access_path=AccessPath.BITMAP,
            stats=stats,
            trace=trace,
        )
        self.metrics.record(
            outcome.latency_seconds,
            stats,
            relation=name,
            access_path=access_path,
            codec=codec,
            backend="processes",
        )
        return result

    def _run_one(
        self,
        relation_name: str,
        predicate: AttributePredicate,
        options: QueryOptions = DEFAULT_OPTIONS,
        record: bool = True,
        backend: str = "inline",
    ) -> QueryResult:
        start = time.perf_counter()
        trace = None
        try:
            source = self._source_for(relation_name, predicate.attribute, options)
            if options.trace:
                trace = QueryTrace(label=str(predicate))
                trace.event(
                    "engine.dispatch",
                    kind="plan",
                    relation=relation_name,
                    mode="predicate",
                    access_path="bitmap",
                    compressed=source.compressed,
                    codec=source.bitmap_codec,
                )
            result = execute(
                self._relations[relation_name],
                predicate,
                AccessPath.BITMAP,
                index=source,
                options=options,
                trace=trace,
            )
        except QueryTimeoutError as exc:
            if record:
                self.metrics.record_timeout()
                self.metrics.record_failure()
            self._attach_timeout_trace(exc, trace)
            raise
        except Exception:
            if record:
                self.metrics.record_failure()
            raise
        if record:
            self.metrics.record(
                time.perf_counter() - start,
                result.stats,
                relation=relation_name,
                access_path=result.access_path.value,
                codec=source.bitmap_codec,
                backend=backend,
            )
        return result

    def _run_expression(
        self,
        relation_name: str,
        expression: Expression,
        options: QueryOptions = DEFAULT_OPTIONS,
        record: bool = True,
        backend: str = "inline",
    ) -> QueryResult:
        start = time.perf_counter()
        trace = None
        try:
            relation = self._relations[relation_name]
            stats = ExecutionStats()
            if options.deadline_ms is not None:
                stats.deadline = Deadline(options.deadline_ms)
            sources = {
                attribute: self._source_for(relation_name, attribute, options)
                for attribute in expression.attributes()
            }
            codecs = sorted({s.bitmap_codec for s in sources.values()})
            if len(codecs) > 1:
                # Bitmaps of different representations cannot be combined;
                # fail with a configuration error instead of a downstream
                # algebra TypeError.
                raise EngineConfigError(
                    f"expression '{expression}' mixes bitmap codecs "
                    f"{codecs}; give its attributes one codec (per-query "
                    f"options.codec overrides every spec)"
                )
            if options.trace:
                trace = QueryTrace(label=str(expression))
                stats.trace = trace
                trace.event(
                    "engine.dispatch",
                    kind="plan",
                    relation=relation_name,
                    mode="expression",
                    access_path="expression",
                    compressed=any(s.compressed for s in sources.values()),
                    codec=codecs[0] if len(codecs) == 1 else ",".join(codecs),
                    attributes=sorted(expression.attributes()),
                )
            if trace is not None:
                with trace.span("evaluate", kind="phase", mode="expression"):
                    bitmap = expression.bitmap(relation, sources, stats)
                with trace.span("materialize", kind="phase"):
                    rids = bitmap.indices()
            else:
                bitmap = expression.bitmap(relation, sources, stats)
                rids = bitmap.indices()
            if options.verify:
                truth = np.nonzero(expression.mask(relation))[0]
                if not np.array_equal(rids, truth):
                    raise VerificationError(
                        f"expression '{expression}' returned {len(rids)} RIDs; "
                        f"the scan found {len(truth)}"
                    )
            if trace is not None:
                trace.finish()
            result = QueryResult(
                rids=rids,
                access_path=AccessPath.BITMAP,
                stats=stats,
                trace=trace,
            )
        except QueryTimeoutError as exc:
            if record:
                self.metrics.record_timeout()
                self.metrics.record_failure()
            self._attach_timeout_trace(exc, trace)
            raise
        except Exception:
            if record:
                self.metrics.record_failure()
            raise
        if record:
            self.metrics.record(
                time.perf_counter() - start,
                result.stats,
                relation=relation_name,
                access_path="expression",
                codec=codecs[0],
                backend=backend,
            )
        return result

    def _run_aggregate(
        self,
        relation_name: str,
        expression: Expression,
        by: str | None,
        options: QueryOptions = DEFAULT_OPTIONS,
        record: bool = True,
        backend: str = "inline",
    ) -> AggregateResult:
        """Evaluate an expression and answer counts from popcounts alone.

        The pushdown twin of :meth:`_run_expression`: the evaluate phase
        is identical, but instead of a ``materialize`` phase calling
        ``bitmap.indices()`` there is an ``aggregate.pushdown`` phase
        that popcounts the result bitmap — per grouping value ANDed with
        the group's cached equality bitmap when ``by`` is given.  No RID
        array is ever built.
        """
        start = time.perf_counter()
        trace = None
        try:
            relation = self._relations[relation_name]
            stats = ExecutionStats()
            if options.deadline_ms is not None:
                stats.deadline = Deadline(options.deadline_ms)
            attributes = set(expression.attributes())
            if by is not None:
                attributes.add(by)
            sources = {
                attribute: self._source_for(relation_name, attribute, options)
                for attribute in attributes
            }
            codecs = sorted({s.bitmap_codec for s in sources.values()})
            if len(codecs) > 1:
                raise EngineConfigError(
                    f"aggregate over '{expression}' mixes bitmap codecs "
                    f"{codecs}; give its attributes one codec (per-query "
                    f"options.codec overrides every spec)"
                )
            if options.trace:
                label = (
                    f"count({expression})"
                    if by is None
                    else f"group_count({expression} by {by})"
                )
                trace = QueryTrace(label=label)
                stats.trace = trace
                trace.event(
                    "engine.dispatch",
                    kind="plan",
                    relation=relation_name,
                    mode="aggregate",
                    access_path="aggregate",
                    compressed=any(s.compressed for s in sources.values()),
                    codec=codecs[0],
                    attributes=sorted(attributes),
                    by=by,
                )
            if trace is not None:
                with trace.span("evaluate", kind="phase", mode="aggregate"):
                    bitmap = expression.bitmap(relation, sources, stats)
                with trace.span(
                    "aggregate.pushdown", kind="phase", by=by
                ) as span:
                    total, groups = self._pushdown_counts(
                        relation, bitmap, by, sources, stats, options
                    )
                    span.attrs.update(
                        count=total, groups=len(groups) if groups else 0
                    )
            else:
                bitmap = expression.bitmap(relation, sources, stats)
                total, groups = self._pushdown_counts(
                    relation, bitmap, by, sources, stats, options
                )
            if options.verify:
                self._verify_aggregate(relation, expression, by, total, groups)
            if trace is not None:
                trace.finish()
            result = AggregateResult(
                count=total, groups=groups, stats=stats, trace=trace
            )
        except QueryTimeoutError as exc:
            if record:
                self.metrics.record_timeout()
                self.metrics.record_failure()
            self._attach_timeout_trace(exc, trace)
            raise
        except Exception:
            if record:
                self.metrics.record_failure()
            raise
        if record:
            self.metrics.record(
                time.perf_counter() - start,
                result.stats,
                relation=relation_name,
                access_path="aggregate",
                codec=codecs[0],
                backend=backend,
            )
        return result

    def _pushdown_counts(
        self,
        relation: Relation,
        bitmap,
        by: str | None,
        sources: dict,
        stats: ExecutionStats,
        options: QueryOptions,
    ) -> tuple[int, dict | None]:
        """Popcount the result bitmap — total, or split per group value."""
        if by is None:
            return int(bitmap.count()), None
        by_source = sources[by]
        dictionary = relation.column(by).dictionary
        # NULL rows of ``by`` land in no group: both group_counts paths
        # mask through the index's nonnull vector.
        counts = group_counts(
            by_source, bitmap, stats, algorithm=options.algorithm
        )
        groups: dict = {}
        for code, matched in enumerate(counts.tolist()):
            key = dictionary[code]
            if isinstance(key, np.generic):
                key = key.item()
            groups[key] = matched
        return int(counts.sum()), groups

    def _verify_aggregate(
        self,
        relation: Relation,
        expression: Expression,
        by: str | None,
        total: int,
        groups: dict | None,
    ) -> None:
        """Opt-in ground-truth check of a pushed-down aggregate."""
        mask = expression.mask(relation)
        if by is None:
            truth = int(np.count_nonzero(mask))
            if total != truth:
                raise VerificationError(
                    f"count pushdown of '{expression}' returned {total}; "
                    f"the scan found {truth}"
                )
            return
        values = relation.column(by).values
        for key, counted in (groups or {}).items():
            truth = int(np.count_nonzero(mask & (values == key)))
            if counted != truth:
                raise VerificationError(
                    f"group_count pushdown of '{expression}' returned "
                    f"{counted} for {by}={key!r}; the scan found {truth}"
                )

    @staticmethod
    def _attach_timeout_trace(
        exc: QueryTimeoutError, trace: QueryTrace | None
    ) -> None:
        """Hand the partial trace to a deadline error (diagnosis aid)."""
        if trace is not None and exc.trace is None:
            trace.event("deadline.exceeded", kind="fault", error=str(exc))
            trace.finish()
            exc.trace = trace
