"""A concurrent batch query engine over bitmap-indexed relations.

:class:`QueryEngine` is the serving layer the single-shot executor of
:mod:`repro.query.executor` lacks: it registers relations once, builds each
attribute's :class:`~repro.core.index.BitmapIndex` lazily behind a
thread-safe :class:`~repro.engine.registry.IndexRegistry`, routes every
bitmap fetch through one shared :class:`~repro.engine.cache.SharedBitmapCache`,
and evaluates batches of :class:`~repro.query.predicate.AttributePredicate`
queries on a thread pool.  Query evaluation reuses
:func:`repro.query.executor.execute` with ``verify=False`` — the serving
path must not pay a ground-truth scan per query; correctness is pinned by
the differential and concurrency test suites instead.

Why threads help: the AND/OR/NOT hot path runs inside numpy, which releases
the GIL on large arrays, and (when the engine is configured with an
:class:`~repro.storage.disk.DiskModel`) cache-miss I/O waits are simulated
with real sleeps that concurrent workers overlap, exactly as a disk-backed
deployment overlaps seeks.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.decomposition import Base, integer_nth_root_ceil
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.engine.cache import SharedBitmapCache
from repro.engine.metrics import EngineMetrics
from repro.engine.registry import IndexRegistry
from repro.errors import EngineConfigError
from repro.query.executor import AccessPath, QueryResult, execute
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.stats import ExecutionStats
from repro.storage.disk import DiskModel


@dataclass(frozen=True)
class IndexSpec:
    """How to build the bitmap index of one registered attribute.

    ``base`` pins an exact decomposition (it must cover the attribute's
    cardinality).  ``components`` instead asks for the smallest uniform
    ``n``-component base for whatever the cardinality turns out to be —
    the right knob when one registration covers attributes of different
    cardinalities.  With neither, the single-component base ``<C>`` is
    used (the index default).
    """

    base: Base | None = None
    encoding: EncodingScheme = EncodingScheme.RANGE
    components: int | None = None

    def resolve_base(self, cardinality: int) -> Base | None:
        if self.base is not None:
            return self.base
        if self.components is not None:
            b = integer_nth_root_ceil(cardinality, self.components)
            return Base.uniform(max(b, 2), cardinality)
        return None


class _CachedSource:
    """Bitmap-source adapter routing one index's fetches through the cache.

    Implements the :class:`~repro.core.index.BitmapSource` protocol.  A hit
    costs no scan (it is charged as a ``buffer_hit``); a miss fetches from
    the wrapped index (which records the scan on the per-query stats) and
    publishes the bitmap to the shared cache.
    """

    __slots__ = ("_index", "_cache", "_prefix", "_sleep", "compressed")

    def __init__(
        self,
        index: BitmapIndex,
        cache: SharedBitmapCache,
        prefix: tuple,
        sleep_seconds_per_byte: tuple[float, float] | None,
        compressed: bool = False,
    ):
        self._index = index
        self._cache = cache
        self._prefix = prefix
        self._sleep = sleep_seconds_per_byte
        self.compressed = compressed

    @property
    def nbits(self) -> int:
        return self._index.nbits

    @property
    def cardinality(self) -> int:
        return self._index.cardinality

    @property
    def base(self) -> Base:
        return self._index.base

    @property
    def encoding(self) -> EncodingScheme:
        return self._index.encoding

    @property
    def nonnull(self):
        if self.compressed:
            return self._index.as_compressed().nonnull
        return self._index.nonnull

    def fetch(self, component: int, slot: int, stats: ExecutionStats):
        key = self._prefix + (component, slot)
        bitmap = self._cache.get(key)
        if bitmap is not None:
            stats.buffer_hits += 1
            return bitmap
        bitmap = self._index.fetch(
            component, slot, stats, compressed=self.compressed
        )
        if self._sleep is not None:
            seek, per_byte = self._sleep
            wait = seek + per_byte * bitmap.nbytes
            stats.io_seconds += wait
            if wait > 0:
                time.sleep(wait)
        self._cache.put(key, bitmap)
        return bitmap


class QueryEngine:
    """Serves batches of attribute predicates over registered relations.

    Parameters
    ----------
    cache_capacity:
        Bitmaps held by the shared LRU cache (0 disables caching).
    max_workers:
        Default thread-pool width for :meth:`submit_batch`.
    io_model:
        Optional :class:`~repro.storage.disk.DiskModel`; when given, every
        cache miss sleeps the modeled read latency (scaled by
        ``io_time_scale``), so the engine behaves like a disk-backed server
        rather than a pure in-memory structure.  Leave ``None`` for tests.
    io_time_scale:
        Multiplier applied to the modeled latency (e.g. ``0.1`` to run a
        benchmark 10x faster than the era model).
    compressed:
        Serve and operate on WAH-compressed bitmaps end-to-end: fetches
        return :class:`~repro.bitmaps.compressed.WahBitVector`, the
        evaluators run in the compressed domain, and the shared cache
        holds compressed payloads (pair with ``cache_bytes`` — compressed
        entries are far smaller, so a byte budget is the honest capacity).
    cache_bytes:
        Optional byte budget for the shared cache (see
        :class:`~repro.engine.cache.SharedBitmapCache`).
    """

    def __init__(
        self,
        *,
        cache_capacity: int = 256,
        max_workers: int = 4,
        io_model: DiskModel | None = None,
        io_time_scale: float = 1.0,
        compressed: bool = False,
        cache_bytes: int | None = None,
    ):
        if max_workers < 1:
            raise EngineConfigError(f"max_workers must be >= 1, got {max_workers}")
        if io_time_scale < 0:
            raise EngineConfigError("io_time_scale must be >= 0")
        self.max_workers = max_workers
        self.compressed = compressed
        self.cache = SharedBitmapCache(cache_capacity, byte_budget=cache_bytes)
        self.registry = IndexRegistry()
        self.metrics = EngineMetrics()
        self._relations: dict[str, Relation] = {}
        self._specs: dict[str, dict[str, IndexSpec]] = {}
        self._default_relation: str | None = None
        if io_model is not None:
            self._sleep = (
                io_model.seek_seconds * io_time_scale,
                io_time_scale / io_model.bandwidth_bytes_per_second,
            )
        else:
            self._sleep = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        relation: Relation,
        *,
        attributes: list[str] | None = None,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        components: int | None = None,
        overrides: dict[str, IndexSpec] | None = None,
    ) -> None:
        """Make a relation queryable through the engine.

        ``attributes`` restricts which columns are served (default: all).
        ``base``/``encoding``/``components`` configure every served
        attribute's index (see :class:`IndexSpec`); ``overrides`` replaces
        the spec for individual attributes.  Indexes are built lazily on
        first use — registration itself is cheap.
        """
        if attributes is None:
            attributes = sorted(relation.columns)
        specs: dict[str, IndexSpec] = {}
        for attribute in attributes:
            relation.column(attribute)  # raise early on unknown columns
            specs[attribute] = IndexSpec(
                base=base, encoding=encoding, components=components
            )
        for attribute, spec in (overrides or {}).items():
            if attribute not in specs:
                raise EngineConfigError(
                    f"override for {attribute!r} which is not a served attribute"
                )
            specs[attribute] = spec
        self._relations[relation.name] = relation
        self._specs[relation.name] = specs
        if self._default_relation is None:
            self._default_relation = relation.name

    def warm(self, relation: str | None = None) -> int:
        """Eagerly build every served index; returns how many are resident."""
        names = list(self._relations) if relation is None else [self._resolve(relation)]
        for name in names:
            for attribute in self._specs[name]:
                self._index_for(name, attribute)
        return len(self.registry)

    # ------------------------------------------------------------------
    # Query paths
    # ------------------------------------------------------------------

    def submit(
        self, predicate: AttributePredicate, relation: str | None = None
    ) -> QueryResult:
        """Evaluate one predicate through the cached bitmap path."""
        return self._run_one(self._resolve(relation), predicate)

    def submit_batch(
        self,
        queries: list,
        *,
        workers: int | None = None,
        relation: str | None = None,
    ) -> list[QueryResult]:
        """Evaluate a batch of queries, returning results in input order.

        Each item is an :class:`AttributePredicate` (against ``relation``,
        defaulting to the first registered one) or an explicit
        ``(relation_name, predicate)`` pair.  ``workers=1`` runs the batch
        inline on the calling thread — the sequential baseline.
        """
        resolved: list[tuple[str, AttributePredicate]] = []
        for item in queries:
            if isinstance(item, AttributePredicate):
                resolved.append((self._resolve(relation), item))
            else:
                name, predicate = item
                resolved.append((self._resolve(name), predicate))
        workers = self.max_workers if workers is None else workers
        if workers < 1:
            raise EngineConfigError(f"workers must be >= 1, got {workers}")
        if workers == 1 or len(resolved) <= 1:
            return [self._run_one(name, pred) for name, pred in resolved]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._run_one, name, pred) for name, pred in resolved
            ]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine-level metrics: queries, latency percentiles, cache, registry."""
        out = self.metrics.snapshot()
        out["cache"] = self.cache.snapshot()
        out["registry"] = self.registry.snapshot()
        return out

    def reset_metrics(self) -> None:
        """Zero the query metrics (cache contents and indexes survive)."""
        self.metrics.reset()

    def reset_cache(self) -> None:
        """Drop cached bitmaps and cache counters (indexes survive)."""
        self.cache.clear()

    @property
    def relations(self) -> list[str]:
        return list(self._relations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve(self, relation: str | None) -> str:
        if relation is None:
            if self._default_relation is None:
                raise EngineConfigError("no relation registered with the engine")
            return self._default_relation
        if relation not in self._relations:
            known = ", ".join(sorted(self._relations)) or "<none>"
            raise EngineConfigError(
                f"relation {relation!r} is not registered; registered: {known}"
            )
        return relation

    def _index_for(self, relation_name: str, attribute: str) -> BitmapIndex:
        try:
            spec = self._specs[relation_name][attribute]
        except KeyError:
            served = ", ".join(sorted(self._specs.get(relation_name, ())))
            raise EngineConfigError(
                f"attribute {attribute!r} of relation {relation_name!r} is not "
                f"served by the engine; served attributes: {served}"
            ) from None
        relation = self._relations[relation_name]

        def build() -> BitmapIndex:
            column = relation.column(attribute)
            return BitmapIndex(
                column.codes,
                cardinality=column.cardinality,
                base=spec.resolve_base(column.cardinality),
                encoding=spec.encoding,
                keep_values=False,
            )

        return self.registry.get_or_build((relation_name, attribute), build)

    def _run_one(self, relation_name: str, predicate: AttributePredicate) -> QueryResult:
        start = time.perf_counter()
        try:
            index = self._index_for(relation_name, predicate.attribute)
            prefix = (relation_name, predicate.attribute)
            if self.compressed:
                # Compressed and dense entries for the same slot must not
                # collide in the shared cache.
                prefix += ("wah",)
            source = _CachedSource(
                index,
                self.cache,
                prefix,
                self._sleep,
                compressed=self.compressed,
            )
            result = execute(
                self._relations[relation_name],
                predicate,
                AccessPath.BITMAP,
                index=source,
                verify=False,
            )
        except Exception:
            self.metrics.record_failure()
            raise
        self.metrics.record(time.perf_counter() - start, result.stats)
        return result
