"""Sharded, process-parallel execution of bitmap queries.

The thread-pool engine scales when workers overlap I/O waits, but on pure
CPU work the interpreter serializes the Python layer of every bitmap
operation: the GIL bounds CPU-bound batch throughput near 1x regardless
of worker count.  This module is the execution backend that escapes the
GIL: each registered relation is partitioned into contiguous **row-range
shards**, each shard gets its own :class:`~repro.core.index.BitmapIndex`
over the same global code domain, and batches are evaluated by a pool of
worker *processes*.

The design rests on three invariants:

1. **Shards share the global dictionary.**  Shard ``i`` indexes rows
   ``[start_i, stop_i)`` of the full column's *code* array with the full
   column's cardinality, so a code-domain predicate translated once by
   the parent is valid verbatim on every shard.
2. **Bitmap payloads live in shared memory, not in pickles.**  A
   :class:`ShardExport` serializes every stored bitmap of a shard into
   one :class:`multiprocessing.shared_memory.SharedMemory` block — raw
   64-bit words for the dense codec (workers reconstruct
   :class:`~repro.bitmaps.bitvector.BitVector` views zero-copy), the
   serialized blob for WAH/Roaring (workers decode once and memoize).
   Per query, only the tiny code-domain payload and the result RIDs
   cross the process boundary.
3. **Per-shard evaluation is the same algorithm on the same fetch
   pattern.**  The evaluation algorithms' fetch sequences depend only on
   the predicate, base, and encoding — never on the data — so every
   shard charges identical scan/op counts, and the *logical* cost of a
   sharded query (one scan per stored bitmap touched, as the paper
   counts it) equals any single shard's counters while ``bytes_read``
   sums the physical payloads actually moved.

Merging is the RID-domain equivalent of the k-way OR kernels: shard row
ranges are disjoint and ordered, so remapping each shard's local RIDs by
its row offset and concatenating in shard order *is* the k-way
disjoint-range union (:func:`merge_shard_rids`), with no bitmap
materialization at global length.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import secrets
import time
import weakref
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import Predicate, evaluate, group_counts
from repro.core.index import BitmapIndex
from repro.errors import (
    CorruptShardError,
    EngineConfigError,
    InjectedFaultError,
    QueryTimeoutError,
    ShmAttachError,
    ValueOutOfRangeError,
)
from repro.faults import Deadline, FaultPlan
from repro.query.expression import (
    And,
    Between,
    Comparison,
    Expression,
    In,
    Not,
    Or,
    Threshold,
    Xor,
    _count_op,
)
from repro.relation.relation import Relation
from repro.stats import ExecutionStats

#: Codec name -> class used when publishing compressed shard payloads.
_CODEC_CLASSES: dict[str, type] = {"wah": WahBitVector, "roaring": RoaringBitmap}

#: Execution backends the engine can route a batch through.
BACKENDS = ("inline", "threads", "processes")

log = logging.getLogger("repro.engine.sharding")

#: Recognizable shared-memory name prefix: ``repro-shm-<pid>-<nonce>``.
#: The embedded owner pid is what lets :func:`sweep_orphan_segments`
#: reclaim segments whose publishing process died without cleanup.
_SHM_PREFIX = "repro-shm"


def _segment_name() -> str:
    return f"{_SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def sweep_orphan_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink shared-memory segments left behind by dead publishers.

    Scans ``shm_dir`` for ``repro-shm-<pid>-*`` names whose owning pid no
    longer exists and removes them; segments of live processes (including
    this one) are never touched.  Returns the reclaimed names.  A no-op
    on platforms without a POSIX shm directory.
    """
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX platform
        return []
    reclaimed = []
    for name in os.listdir(shm_dir):
        if not name.startswith(_SHM_PREFIX + "-"):
            continue
        parts = name.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except FileNotFoundError:
            continue
        except OSError as exc:  # pragma: no cover - permissions
            log.warning("could not reclaim orphan shm segment %s: %s", name, exc)
            continue
        log.info("reclaimed orphan shm segment %s (dead pid %d)", name, pid)
        reclaimed.append(name)
    return reclaimed


# ----------------------------------------------------------------------
# Row-range partitioning
# ----------------------------------------------------------------------


def shard_bounds(num_rows: int, shards: int) -> tuple[tuple[int, int], ...]:
    """Contiguous ``[start, stop)`` row ranges covering ``num_rows`` rows.

    The remainder of a non-divisible split is spread one row at a time
    over the leading shards, so shard sizes differ by at most one.  The
    effective shard count is clamped to ``num_rows`` (an empty shard
    serves no purpose and would publish zero-length bitmaps).
    """
    if shards < 1:
        raise EngineConfigError(f"shards must be >= 1, got {shards}")
    shards = max(1, min(shards, num_rows))
    quotient, remainder = divmod(num_rows, shards)
    bounds = []
    start = 0
    for i in range(shards):
        stop = start + quotient + (1 if i < remainder else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


def merge_shard_rids(
    rid_lists: list[np.ndarray], offsets: list[int]
) -> np.ndarray:
    """Union per-shard local RIDs into global RIDs.

    Shard row ranges are disjoint and given in ascending row order, so
    offsetting each shard's (already sorted) local RIDs by its row start
    and concatenating preserves global sort order — the RID-domain
    counterpart of ``wah_or_many``/``roaring_or_many`` over bitmaps of
    disjoint ranges, without materializing a global-length bitmap.
    """
    if len(rid_lists) != len(offsets):
        raise ValueOutOfRangeError("one offset per shard result required")
    if not rid_lists:
        return np.empty(0, dtype=np.int64)
    parts = [
        rids.astype(np.int64, copy=False) + offset
        for rids, offset in zip(rid_lists, offsets)
    ]
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def merge_shard_stats(per_shard: list[ExecutionStats]) -> ExecutionStats:
    """Fold per-shard counters into the query's *logical* cost.

    Every shard evaluates the same code-domain query over the same base
    and encoding, so the fetch/op pattern — scans, ANDs/ORs/XORs/NOTs,
    buffer hits — is identical across shards; the logical count (one
    scan per stored bitmap touched, as the paper's cost model counts) is
    any single shard's value, and we take shard 0's.  Byte-level and
    time counters are *physical* and sum across shards: the shard
    payloads of one logical bitmap together cover all ``N`` rows.
    """
    if not per_shard:
        return ExecutionStats()
    first = per_shard[0]
    merged = ExecutionStats()
    merged.scans = first.scans
    merged.ands = first.ands
    merged.ors = first.ors
    merged.xors = first.xors
    merged.nots = first.nots
    merged.buffer_hits = first.buffer_hits
    merged.files_opened = first.files_opened
    merged.bytes_read = sum(s.bytes_read for s in per_shard)
    merged.decompressed_bytes = sum(s.decompressed_bytes for s in per_shard)
    merged.io_seconds = sum(s.io_seconds for s in per_shard)
    merged.cpu_seconds = sum(s.cpu_seconds for s in per_shard)
    return merged


# ----------------------------------------------------------------------
# Code-domain query payloads (what actually crosses the process boundary)
# ----------------------------------------------------------------------
#
# Workers never see column dictionaries: the parent translates every
# value-domain leaf to the code domain once, using the same
# ``Column.code_bounds`` call the inline path uses, so per-shard
# evaluation is bit-identical by construction.  The leaf classes below
# mirror the op-count behavior of their value-domain counterparts
# exactly (same evaluate() calls, same connective charges).


@dataclass(frozen=True)
class CodeComparison(Expression):
    """A pre-translated leaf ``attribute code_op code``."""

    attribute: str
    op: str
    code: int

    def bitmap(self, relation, indexes, stats=None):
        return evaluate(
            indexes[self.attribute], Predicate(self.op, self.code), stats=stats
        )

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        return f"{self.attribute} {self.op} #{self.code}"


@dataclass(frozen=True)
class CodeIn(Expression):
    """A pre-translated ``IN`` list: an OR of code-equality bitmaps."""

    attribute: str
    codes: tuple

    def bitmap(self, relation, indexes, stats=None):
        index = indexes[self.attribute]
        acc = None
        for code in self.codes:
            term = evaluate(index, Predicate("=", code), stats=stats)
            if acc is None:
                acc = term
            else:
                _count_op(stats, "or")
                acc = acc | term
        assert acc is not None
        return acc

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        inner = ", ".join(f"#{c}" for c in self.codes)
        return f"{self.attribute} in ({inner})"


@dataclass(frozen=True)
class CodeBetween(Expression):
    """A pre-translated ``BETWEEN``: two code-range predicates, ANDed."""

    attribute: str
    low: tuple  # (op, code)
    high: tuple  # (op, code)

    def bitmap(self, relation, indexes, stats=None):
        index = indexes[self.attribute]
        lower = evaluate(index, Predicate(*self.low), stats=stats)
        upper = evaluate(index, Predicate(*self.high), stats=stats)
        _count_op(stats, "and")
        return lower & upper

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        return (
            f"{self.attribute} between {self.low[0]}#{self.low[1]} "
            f"and {self.high[0]}#{self.high[1]}"
        )


def translate_expression(expression: Expression, relation: Relation) -> Expression:
    """Rewrite a value-domain expression tree into the code domain.

    Each leaf's actual-value constant is translated through its column's
    sorted dictionary (``Column.code_bounds`` — the same call the inline
    evaluator makes), producing a tree of :class:`CodeComparison` /
    :class:`CodeIn` / :class:`CodeBetween` leaves that evaluates without
    any column data.  Connectives are rebuilt unchanged, so the
    operation counts charged by the translated tree match the original's
    exactly.
    """
    if isinstance(expression, Comparison):
        column = relation.column(expression.attribute)
        op, code = column.code_bounds(expression.op, expression.value)
        return CodeComparison(expression.attribute, op, int(code))
    if isinstance(expression, In):
        column = relation.column(expression.attribute)
        codes = tuple(
            int(column.code_bounds("=", value)[1]) for value in expression.values
        )
        return CodeIn(expression.attribute, codes)
    if isinstance(expression, Between):
        column = relation.column(expression.attribute)
        op_lo, code_lo = column.code_bounds(">=", expression.low)
        op_hi, code_hi = column.code_bounds("<=", expression.high)
        return CodeBetween(
            expression.attribute, (op_lo, int(code_lo)), (op_hi, int(code_hi))
        )
    if isinstance(expression, And):
        return And(
            translate_expression(expression.left, relation),
            translate_expression(expression.right, relation),
        )
    if isinstance(expression, Or):
        return Or(
            translate_expression(expression.left, relation),
            translate_expression(expression.right, relation),
        )
    if isinstance(expression, Xor):
        return Xor(
            translate_expression(expression.left, relation),
            translate_expression(expression.right, relation),
        )
    if isinstance(expression, Threshold):
        return Threshold(
            expression.k,
            tuple(
                translate_expression(operand, relation)
                for operand in expression.operands
            ),
        )
    if isinstance(expression, Not):
        return Not(translate_expression(expression.inner, relation))
    raise EngineConfigError(
        f"cannot translate query node {expression!r} for sharded execution"
    )


# ----------------------------------------------------------------------
# The sharded index
# ----------------------------------------------------------------------


@dataclass
class ShardedResult:
    """Merged result of evaluating one query across every shard."""

    rids: np.ndarray
    stats: ExecutionStats
    shard_stats: list[ExecutionStats] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.rids)


class ShardedBitmapIndex:
    """Row-range shards of one attribute, each its own :class:`BitmapIndex`.

    Built from the full column's *codes* with the full cardinality, so
    every shard lives in the same code domain and a translated predicate
    applies verbatim to all of them.  Maintenance routes to the owning
    shard (appends extend the last shard); any operation bumps the
    underlying indexes' versions, which invalidates shared-memory
    publications derived from this index.
    """

    def __init__(
        self,
        values: np.ndarray,
        cardinality: int,
        shards: int,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        nulls: np.ndarray | None = None,
        keep_values: bool = True,
    ):
        values = np.asarray(values, dtype=np.int64)
        if nulls is not None:
            nulls = np.asarray(nulls, dtype=bool)
        self.bounds = list(shard_bounds(len(values), shards))
        self.cardinality = cardinality
        self.encoding = encoding
        self.indexes = [
            BitmapIndex(
                values[start:stop],
                cardinality=cardinality,
                base=base,
                encoding=encoding,
                nulls=nulls[start:stop] if nulls is not None else None,
                keep_values=keep_values,
            )
            for start, stop in self.bounds
        ]
        self.base = self.indexes[0].base
        if nulls is not None:
            self._track_nulls_everywhere()

    # -- structure ------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.indexes)

    @property
    def nbits(self) -> int:
        return self.bounds[-1][1] if self.bounds else 0

    @property
    def version(self) -> int:
        """Sum of shard index versions; changes on any maintenance."""
        return sum(index.version for index in self.indexes)

    def _locate(self, rid: int) -> int:
        if not 0 <= rid < self.nbits:
            raise ValueOutOfRangeError(
                f"rid {rid} out of range for {self.nbits} records"
            )
        starts = [start for start, _ in self.bounds]
        shard = int(np.searchsorted(starts, rid, side="right")) - 1
        return shard

    def _track_nulls_everywhere(self) -> None:
        """Materialize the existence bitmap on every shard.

        Per-shard evaluation must charge identical op counts (the merge
        contract of :func:`merge_shard_stats`), so the ``B_nn`` mask AND
        either happens on all shards or on none.
        """
        if any(index.nonnull is not None for index in self.indexes):
            for index in self.indexes:
                index.track_nulls()

    # -- maintenance ----------------------------------------------------

    def append(self, values: np.ndarray, nulls: np.ndarray | None = None) -> int:
        """Append rows to the last shard; returns bitmaps rewritten."""
        values = np.asarray(values, dtype=np.int64)
        touched = self.indexes[-1].append(values, nulls=nulls)
        start, stop = self.bounds[-1]
        self.bounds[-1] = (start, stop + len(values))
        self._track_nulls_everywhere()
        return touched

    def update(self, rid: int, value: int) -> int:
        """Update one row in its owning shard; returns bitmaps touched."""
        shard = self._locate(rid)
        return self.indexes[shard].update(rid - self.bounds[shard][0], value)

    def delete(self, rid: int) -> int:
        """Logically delete one row; returns bitmaps touched."""
        shard = self._locate(rid)
        touched = self.indexes[shard].delete(rid - self.bounds[shard][0])
        self._track_nulls_everywhere()
        return touched

    # -- inline (in-process) evaluation --------------------------------

    def source_for(self, shard: int, codec: str = "dense"):
        """Shard ``shard`` as a bitmap source serving ``codec``."""
        index = self.indexes[shard]
        return index if codec == "dense" else index.as_compressed(codec)

    def evaluate(
        self,
        predicate: Predicate,
        algorithm: str = "auto",
        codec: str = "dense",
    ) -> ShardedResult:
        """Evaluate a code-domain predicate over every shard, merged.

        The in-process reference path of the sharded backend: identical
        merge semantics to process execution, used by the differential
        suite and as the ground truth the process path is checked
        against.
        """
        shard_stats: list[ExecutionStats] = []
        rid_lists: list[np.ndarray] = []
        for shard in range(self.num_shards):
            stats = ExecutionStats()
            bitmap = evaluate(
                self.source_for(shard, codec),
                predicate,
                algorithm=algorithm,
                stats=stats,
            )
            rid_lists.append(bitmap.indices())
            shard_stats.append(stats)
        rids = merge_shard_rids(rid_lists, [start for start, _ in self.bounds])
        return ShardedResult(rids, merge_shard_stats(shard_stats), shard_stats)

    def __repr__(self) -> str:
        return (
            f"ShardedBitmapIndex(N={self.nbits}, C={self.cardinality}, "
            f"shards={self.num_shards}, base={self.base}, "
            f"encoding={self.encoding})"
        )


# ----------------------------------------------------------------------
# Shared-memory publication
# ----------------------------------------------------------------------

_ALIGN = 8  # uint64 views require 8-byte aligned offsets


@dataclass(frozen=True)
class ShardManifest:
    """Everything a worker needs to serve one published shard.

    Pickled once per task dispatch (a few hundred bytes — names,
    offsets, and the base/encoding metadata); the bitmap payloads
    themselves stay in the named shared-memory block.
    """

    shm_name: str
    codec: str
    nbits: int
    row_start: int
    row_stop: int
    cardinality: int
    base: Base
    encoding: EncodingScheme
    entries: dict  # (component, slot) -> (offset, length, crc32)
    nonnull: tuple | None  # (offset, length, crc32) when tracking nulls


def _serialize_shard(index: BitmapIndex, codec: str):
    """Flatten a shard index's stored bitmaps into one aligned buffer.

    Every entry records the CRC-32 of its payload bytes alongside the
    offset and length, so workers can verify a publication at attach
    time and a torn or bit-flipped segment surfaces as a typed
    :class:`~repro.errors.CorruptShardError` instead of wrong answers.
    """
    chunks: list[bytes] = []
    entries: dict = {}
    offset = 0

    def add(key, data: bytes):
        nonlocal offset
        entries[key] = (offset, len(data), zlib.crc32(data))
        chunks.append(data)
        offset += len(data)
        pad = (-len(data)) % _ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad

    def encode(bitmap: BitVector) -> bytes:
        if codec == "dense":
            return bitmap.words.tobytes()
        encoded = _CODEC_CLASSES[codec].from_bitvector(bitmap)
        return encoded.blob if codec == "wah" else encoded.serialize()

    for i, component in enumerate(index.components, start=1):
        for slot in component.stored_slots():
            add((i, slot), encode(component.bitmap(slot)))
    nonnull_entry = None
    if index.nonnull is not None:
        add((0, 0), encode(index.nonnull))
        nonnull_entry = entries.pop((0, 0))
    return entries, nonnull_entry, b"".join(chunks)


#: Live exports, swept at interpreter exit so a crashing parent leaves
#: no named segments behind.  WeakSet: a garbage-collected export drops
#: out on its own (its ``__del__`` already unlinked the segments).
_LIVE_EXPORTS: "weakref.WeakSet[ShardExport]" = weakref.WeakSet()
_EXPORT_SWEEP_REGISTERED = False


def _close_live_exports() -> None:  # pragma: no cover - runs at exit
    for export in list(_LIVE_EXPORTS):
        try:
            export.close()
        except Exception:
            pass


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """A named segment ``repro-shm-<pid>-<nonce>``, retrying collisions."""
    for _ in range(8):
        try:
            return shared_memory.SharedMemory(
                name=_segment_name(), create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - 32-bit nonce collision
            continue
    # Out of luck with named segments; let the stdlib pick (such a
    # segment is invisible to the orphan sweep, but never colliding).
    return shared_memory.SharedMemory(create=True, size=size)  # pragma: no cover


class ShardExport:
    """Owner-side handle of one sharded index published to shared memory.

    One :class:`~multiprocessing.shared_memory.SharedMemory` block per
    shard, holding every stored bitmap in the requested codec.  Segments
    carry recognizable names (``repro-shm-<pid>-<nonce>``) so
    :func:`sweep_orphan_segments` can reclaim them if this process dies
    without cleanup; live exports are also swept by an ``atexit`` hook.
    The export pins the source index's
    :attr:`~ShardedBitmapIndex.version`; the publisher re-exports when
    maintenance has bumped it.  Call :meth:`close` (or let the engine's
    ``close()``) to unlink the blocks.
    """

    def __init__(self, sharded: ShardedBitmapIndex, codec: str):
        global _EXPORT_SWEEP_REGISTERED
        if codec != "dense" and codec not in _CODEC_CLASSES:
            known = ", ".join(("dense", *sorted(_CODEC_CLASSES)))
            raise EngineConfigError(
                f"unknown codec {codec!r}; expected one of: {known}"
            )
        self.codec = codec
        self.version = sharded.version
        self.manifests: list[ShardManifest] = []
        self._segments: list = []
        try:
            for (start, stop), index in zip(sharded.bounds, sharded.indexes):
                entries, nonnull_entry, payload = _serialize_shard(index, codec)
                segment = _create_segment(max(1, len(payload)))
                segment.buf[: len(payload)] = payload
                self._segments.append(segment)
                self.manifests.append(
                    ShardManifest(
                        shm_name=segment.name,
                        codec=codec,
                        nbits=index.nbits,
                        row_start=start,
                        row_stop=stop,
                        cardinality=sharded.cardinality,
                        base=index.base,
                        encoding=index.encoding,
                        entries=entries,
                        nonnull=nonnull_entry,
                    )
                )
        except Exception:
            self.close()
            raise
        _LIVE_EXPORTS.add(self)
        if not _EXPORT_SWEEP_REGISTERED:
            atexit.register(_close_live_exports)
            _EXPORT_SWEEP_REGISTERED = True

    @property
    def num_shards(self) -> int:
        return len(self.manifests)

    @property
    def nbytes(self) -> int:
        """Total shared-memory bytes held by this publication."""
        return sum(segment.size for segment in self._segments)

    def corrupt_byte(self, shard: int, offset: int | None = None) -> int:
        """Flip one payload byte of a shard's segment (fault injection).

        With ``offset=None`` the first byte of the shard's first entry is
        flipped, which the CRC at attach time is guaranteed to catch.
        Returns the offset flipped.  Test/chaos helper — never called on
        the serving path.
        """
        segment = self._segments[shard]
        if offset is None:
            manifest = self.manifests[shard]
            entry = (
                min(manifest.entries.values())
                if manifest.entries
                else manifest.nonnull
            )
            if entry is None:
                raise EngineConfigError("shard publishes no bitmap entries")
            offset = entry[0]
        segment.buf[offset] ^= 0xFF
        return offset

    def close(self) -> None:
        """Release and unlink every shared-memory block (idempotent).

        Unlink failures are *logged*, never swallowed silently: a
        missing segment (already reclaimed) is a debug note, anything
        else is a warning with the segment name so a leak is traceable.
        """
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - stray external views
                log.warning("segment %s still has exported views", segment.name)
            try:
                segment.unlink()
            except FileNotFoundError:
                log.debug("segment %s already unlinked", segment.name)
            except OSError as exc:  # pragma: no cover - platform-specific
                log.warning("could not unlink segment %s: %s", segment.name, exc)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Process-local cache of attached shards, keyed by shared-memory name.
#: Lives in each worker for the lifetime of the pool, so a shard is
#: attached (and a compressed payload decoded) at most once per worker.
_ATTACHED: dict[str, "_AttachedShard"] = {}
_CLEANUP_REGISTERED = False


class _AttachedShard:
    """A worker-side bitmap source over one published shard.

    Implements the :class:`~repro.core.index.BitmapSource` protocol.
    Dense bitmaps are zero-copy ``uint64`` views into the shared block;
    WAH/Roaring payloads are reconstructed from their serialized form on
    first fetch and memoized.  Every fetch charges one scan at the
    payload size, mirroring :meth:`BitmapIndex.fetch`.

    A failed attach (the segment vanished — publisher died or was swept)
    raises :class:`~repro.errors.ShmAttachError`; *every* payload is
    CRC-verified against its manifest at attach time, and a mismatch
    raises :class:`~repro.errors.CorruptShardError` — a torn or
    bit-flipped publication becomes a typed error before any query is
    served from it, never a wrong answer.  Verification reads each
    entry's bytes once per worker; dense entries still serve zero-copy
    views afterwards.
    """

    def __init__(self, manifest: ShardManifest):
        # Attaching re-registers the name with the resource tracker
        # (bpo-39959), but pool workers share the parent's tracker
        # process, so the second register is a set no-op and the owner's
        # unlink unregisters exactly once.  Do NOT unregister here: that
        # would strip the owner's registration from the shared tracker.
        try:
            self._shm = shared_memory.SharedMemory(name=manifest.shm_name)
        except FileNotFoundError:
            raise ShmAttachError(
                f"shared-memory segment {manifest.shm_name!r} is gone; "
                f"the publication must be rebuilt"
            ) from None
        self._manifest = manifest
        self._bitmaps: dict = {}
        self.nbits = manifest.nbits
        self.cardinality = manifest.cardinality
        self.base = manifest.base
        self.encoding = manifest.encoding
        self.bitmap_codec = manifest.codec
        self.compressed = manifest.codec != "dense"
        self.row_start = manifest.row_start
        self._verify(manifest)
        self.nonnull = (
            self._load(manifest.nonnull) if manifest.nonnull is not None else None
        )

    def _verify(self, manifest: ShardManifest) -> None:
        """CRC-check every published entry against the manifest."""
        entries = list(manifest.entries.values())
        if manifest.nonnull is not None:
            entries.append(manifest.nonnull)
        for offset, length, crc in entries:
            payload = bytes(self._shm.buf[offset : offset + length])
            if zlib.crc32(payload) != crc:
                self._shm.close()
                raise CorruptShardError(
                    f"segment {manifest.shm_name!r}: checksum mismatch at "
                    f"offset {offset} (+{length} bytes)"
                )

    def _load(self, entry):
        offset, length, _ = entry
        if self.bitmap_codec == "dense":
            words = np.frombuffer(
                self._shm.buf, dtype=np.uint64, count=length // 8, offset=offset
            )
            return BitVector(self.nbits, words)
        blob = bytes(self._shm.buf[offset : offset + length])
        if self.bitmap_codec == "wah":
            return WahBitVector(blob, self.nbits)
        return RoaringBitmap.deserialize(blob)

    def fetch(self, component: int, slot: int, stats: ExecutionStats):
        key = (component, slot)
        bitmap = self._bitmaps.get(key)
        if bitmap is None:
            bitmap = self._load(self._manifest.entries[key])
            self._bitmaps[key] = bitmap
        # Memoized or not, a fetch is one logical scan of the stored
        # bitmap — the same charging rule as BitmapIndex.fetch.
        stats.record_scan(nbytes=bitmap.nbytes)
        return bitmap

    def release(self) -> None:
        """Drop payload views so the shared block can close cleanly."""
        self._bitmaps.clear()
        self.nonnull = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass


def _worker_cleanup() -> None:  # pragma: no cover - exercised at worker exit
    for shard in list(_ATTACHED.values()):
        try:
            shard.release()
        except Exception:
            pass
    _ATTACHED.clear()


def _attach(manifest: ShardManifest) -> _AttachedShard:
    global _CLEANUP_REGISTERED
    shard = _ATTACHED.get(manifest.shm_name)
    if shard is None:
        shard = _AttachedShard(manifest)
        _ATTACHED[manifest.shm_name] = shard
        if not _CLEANUP_REGISTERED:
            atexit.register(_worker_cleanup)
            _CLEANUP_REGISTERED = True
    return shard


#: Stats counters a worker reports back per query per shard.
_STAT_FIELDS = (
    "scans",
    "ands",
    "ors",
    "xors",
    "nots",
    "bytes_read",
    "decompressed_bytes",
    "files_opened",
    "buffer_hits",
)


def _stats_to_tuple(stats: ExecutionStats) -> tuple:
    return tuple(getattr(stats, name) for name in _STAT_FIELDS)


def stats_from_tuple(values: tuple) -> ExecutionStats:
    """Rebuild an :class:`ExecutionStats` from a worker's counter tuple."""
    stats = ExecutionStats()
    for name, value in zip(_STAT_FIELDS, values):
        setattr(stats, name, value)
    return stats


def _run_shard_task(
    manifests: dict,
    items: list,
    algorithm: str,
    faults: tuple = (),
    deadline: tuple | None = None,
) -> list:
    """Evaluate a batch of code-domain queries against one shard.

    ``manifests`` maps ``(relation, attribute)`` to the shard's
    :class:`ShardManifest`; ``items`` is a list of
    ``(qid, relation, payload)`` where ``payload`` is one of
    ``("pred", attribute, op, code)``, ``("expr", attributes,
    code_expression)``, ``("count", attributes, code_expression)``, or
    ``("group", attributes, code_expression, by, cardinality)``.
    Returns ``(qid, result, stat_tuple, seconds)`` per item, where
    ``result`` is the local RID array for pred/expr payloads, the
    shard's matching-row count (``int``) for count payloads, or the
    per-code count array (length ``cardinality``) for group payloads —
    aggregates never materialize RIDs, and their cross-shard merge is
    plain summation rather than the offset union.

    ``faults`` carries plain-string directives decided *parent-side* by
    the engine's :class:`~repro.faults.FaultPlan` (the counters must not
    live in a worker — a crash would reset them and the fault would
    re-fire on every retry): ``"worker-crash"`` hard-kills the process,
    ``"worker-error"`` raises :class:`~repro.errors.InjectedFaultError`,
    ``"attach-error"`` simulates a vanished segment.  ``deadline`` is a
    ``(deadline_ms, expires_at)`` pair — the *absolute* monotonic expiry
    crosses the process boundary intact (CLOCK_MONOTONIC is system-wide
    here), so time spent queued counts against the budget.
    """
    if "worker-crash" in faults:  # pragma: no cover - kills the process
        os._exit(13)
    if "attach-error" in faults:
        raise ShmAttachError("injected shm attach failure")
    if "worker-error" in faults:
        raise InjectedFaultError("injected worker execution failure")
    budget = Deadline(deadline[0], expires_at=deadline[1]) if deadline else None
    sources = {key: _attach(manifest) for key, manifest in manifests.items()}
    out = []
    for qid, relation_name, payload in items:
        if budget is not None:
            budget.check("shard-task")
        stats = ExecutionStats()
        stats.deadline = budget
        started = time.perf_counter()
        if payload[0] == "pred":
            _, attribute, op, code = payload
            bitmap = evaluate(
                sources[(relation_name, attribute)],
                Predicate(op, code),
                algorithm=algorithm,
                stats=stats,
            )
            result = bitmap.indices()
        elif payload[0] == "count":
            _, attributes, expression = payload
            leaf_sources = {
                attribute: sources[(relation_name, attribute)]
                for attribute in attributes
            }
            bitmap = expression.bitmap(None, leaf_sources, stats)
            result = int(bitmap.count())
        elif payload[0] == "group":
            _, attributes, expression, by, cardinality = payload
            leaf_sources = {
                attribute: sources[(relation_name, attribute)]
                for attribute in attributes
            }
            bitmap = expression.bitmap(None, leaf_sources, stats)
            by_source = sources[(relation_name, by)]
            result = group_counts(by_source, bitmap, stats, algorithm=algorithm)
        else:
            _, attributes, expression = payload
            leaf_sources = {
                attribute: sources[(relation_name, attribute)]
                for attribute in attributes
            }
            bitmap = expression.bitmap(None, leaf_sources, stats)
            result = bitmap.indices()
        elapsed = time.perf_counter() - started
        out.append((qid, result, _stats_to_tuple(stats), elapsed))
    return out


# ----------------------------------------------------------------------
# The process executor
# ----------------------------------------------------------------------


@dataclass
class ShardQueryOutcome:
    """One query's merged cross-shard outcome, pre-metrics.

    For aggregate payloads ``rids`` stays empty and ``aggregate``
    carries the summed result: the total matching-row count (``int``)
    for count payloads, the elementwise-summed per-code count array for
    group payloads.  Shard row ranges are disjoint, so summation is the
    exact cross-shard merge — no RID offset union is ever built.
    """

    rids: np.ndarray
    stats: ExecutionStats
    shard_stats: list[ExecutionStats]
    shard_seconds: list[float]
    shard_rows: list[tuple[int, int]]
    aggregate: "int | np.ndarray | None" = None

    @property
    def latency_seconds(self) -> float:
        """Critical-path latency: the slowest shard's evaluation time."""
        return max(self.shard_seconds) if self.shard_seconds else 0.0


class ProcessShardExecutor:
    """A persistent process pool running shard tasks.

    Workers are spawned once (``fork`` where available — cheap and
    inherits the parent's imports — else ``spawn``) and reused across
    batches; shard payloads reach them through shared memory, never
    through the task pickles.
    """

    def __init__(self, max_workers: int, start_method: str | None = None):
        if max_workers < 1:
            raise EngineConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise EngineConfigError(
                f"start method {start_method!r} unavailable; "
                f"this platform offers: {', '.join(methods)}"
            )
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(start_method),
        )

    def run_batch(
        self,
        exports: dict,
        items: list,
        algorithm: str = "auto",
        *,
        fault_plan: FaultPlan | None = None,
        deadline: Deadline | None = None,
    ) -> list[ShardQueryOutcome]:
        """Run a batch of code-domain queries across every shard.

        ``exports`` maps ``(relation, attribute)`` to a
        :class:`ShardExport` (all exports must agree on shard count and
        row bounds — they derive from the same relation partitioning);
        ``items`` is the ``(qid, relation, payload)`` list of
        :func:`_run_shard_task`.  Returns one
        :class:`ShardQueryOutcome` per item, in item order.

        ``fault_plan`` injects at the ``worker.execute`` and
        ``shm.attach`` seams (ident ``"shard:<n>"``): the plan's
        counters advance *here*, in the parent, and only string
        directives ship to workers — so a ``count=1`` crash fires once
        even though the worker that received it died.  ``deadline``
        bounds the dispatch: the remaining budget ships to workers for
        cooperative checks and also caps the parent-side
        ``future.result`` wait, so even a wedged worker cannot hang the
        caller past the budget (plus a small collection grace).
        """
        if not items:
            return []
        if deadline is not None:
            deadline.check("dispatch")
        num_shards = {export.num_shards for export in exports.values()}
        if len(num_shards) != 1:
            raise EngineConfigError(
                f"exports disagree on shard count: {sorted(num_shards)}"
            )
        (shards,) = num_shards
        budget = (
            (deadline.deadline_ms, deadline.expires_at)
            if deadline is not None
            else None
        )
        futures = []
        for shard in range(shards):
            faults = []
            if fault_plan is not None:
                ident = f"shard:{shard}"
                spec = fault_plan.check("worker.execute", ident=ident)
                if spec is not None:
                    faults.append(f"worker-{spec.kind}")
                spec = fault_plan.check("shm.attach", ident=ident)
                if spec is not None:
                    if spec.kind == "corrupt":
                        # Flip a payload byte in the real segment: the
                        # worker's CRC check must catch it at attach.
                        next(iter(exports.values())).corrupt_byte(shard)
                    else:
                        faults.append("attach-error")
            manifests = {
                key: export.manifests[shard] for key, export in exports.items()
            }
            futures.append(
                self._pool.submit(
                    _run_shard_task,
                    manifests,
                    items,
                    algorithm,
                    tuple(faults),
                    budget,
                )
            )
        # per_query[qid] = list of (shard, rids, stats, seconds)
        per_query: dict[int, list] = {qid: [] for qid, _, _ in items}
        for shard, future in enumerate(futures):
            if deadline is None:
                rows = future.result()
            else:
                # +0.25 s grace: give a worker that noticed the deadline
                # itself time to deliver its QueryTimeoutError.
                try:
                    rows = future.result(
                        timeout=deadline.remaining_seconds + 0.25
                    )
                except FuturesTimeoutError:
                    future.cancel()
                    raise QueryTimeoutError(
                        f"shard {shard} missed the "
                        f"{deadline.deadline_ms:g} ms deadline"
                    ) from None
            for qid, rids, stat_tuple, seconds in rows:
                per_query[qid].append((shard, rids, stat_tuple, seconds))
        any_export = next(iter(exports.values()))
        bounds = [
            (manifest.row_start, manifest.row_stop)
            for manifest in any_export.manifests
        ]
        outcomes = []
        for qid, _, payload in items:
            results = sorted(per_query[qid], key=lambda row: row[0])
            shard_stats = [stats_from_tuple(t) for _, _, t, _ in results]
            aggregate: int | np.ndarray | None = None
            if payload[0] == "count":
                aggregate = sum(int(value) for _, value, _, _ in results)
                rids = np.empty(0, dtype=np.int64)
            elif payload[0] == "group":
                aggregate = np.sum(
                    np.stack([counts for _, counts, _, _ in results]), axis=0
                )
                rids = np.empty(0, dtype=np.int64)
            else:
                rids = merge_shard_rids(
                    [rids for _, rids, _, _ in results],
                    [bounds[shard][0] for shard, _, _, _ in results],
                )
            outcomes.append(
                ShardQueryOutcome(
                    rids=rids,
                    stats=merge_shard_stats(shard_stats),
                    shard_stats=shard_stats,
                    shard_seconds=[seconds for _, _, _, seconds in results],
                    shard_rows=bounds,
                    aggregate=aggregate,
                )
            )
        return outcomes

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __repr__(self) -> str:
        return (
            f"ProcessShardExecutor(max_workers={self.max_workers}, "
            f"start_method={self.start_method!r})"
        )
