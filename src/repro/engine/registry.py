"""A thread-safe, build-once registry of bitmap indexes.

The engine builds each attribute's :class:`~repro.core.index.BitmapIndex`
lazily, on the first query that touches the attribute, and memoizes it for
every later query.  Building an index over a large column is expensive
(seconds at warehouse scale), so the registry guarantees that concurrent
first queries on the same attribute trigger exactly one build: a per-key
build lock serializes builders for the same key while builds for
*different* keys proceed in parallel.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable


class IndexRegistry:
    """Memoizes expensive index builds behind per-key locks.

    The stored values are opaque to the registry (the engine stores
    :class:`~repro.core.index.BitmapIndex` instances); the registry only
    promises each key's builder runs at most once.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._indexes: dict[Hashable, object] = {}
        self._build_locks: dict[Hashable, threading.Lock] = {}
        self.builds = 0
        self.reuses = 0

    def get_or_build(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the memoized value for ``key``, building it if absent.

        Concurrent callers with the same key block on a per-key lock while
        one of them runs ``builder``; the rest then observe the memoized
        result (classic double-checked locking, but with real locks).
        """
        with self._lock:
            value = self._indexes.get(key)
            if value is not None:
                self.reuses += 1
                return value
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                value = self._indexes.get(key)
                if value is not None:
                    self.reuses += 1
                    return value
            built = builder()
            with self._lock:
                self._indexes[key] = built
                self.builds += 1
            return built

    def pop(self, key: Hashable) -> object | None:
        """Forget the memoized value for ``key`` (``None`` if absent).

        The next :meth:`get_or_build` for the key runs its builder again —
        the invalidation half of the memoization contract, used by the
        engine when a registered relation's data changes.
        """
        with self._lock:
            self._build_locks.pop(key, None)
            return self._indexes.pop(key, None)

    def peek(self, key: Hashable) -> object | None:
        """The memoized value for ``key`` without building (``None`` if absent)."""
        with self._lock:
            return self._indexes.get(key)

    def keys(self) -> list[Hashable]:
        """Keys with a memoized value, in insertion order."""
        with self._lock:
            return list(self._indexes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._indexes

    def snapshot(self) -> dict:
        """Build/reuse counters plus the number of resident indexes."""
        with self._lock:
            return {
                "indexes": len(self._indexes),
                "builds": self.builds,
                "reuses": self.reuses,
            }
