"""Plan cost accounting for the paper's introduction analysis.

For a conjunctive selection with predicates on two attributes of a
relation with ``N`` tuples and result cardinality ``n``:

- **P1** — full relation scan: reads every tuple.
- **P2** — index scan on the more selective predicate, then a partial
  relation scan over the qualifying tuples to apply the other predicate.
- **P3** — an index scan per predicate, merging the two result sets.
  With bitmap indexes each predicate reads a handful of ``N/8``-byte
  bitmaps; with RID-list indexes each predicate reads 4 bytes per
  qualifying RID.

The paper's Section 1 observation follows: with one bitmap scanned per
predicate, bitmaps beat RID lists when ``N / 8 <= 4 n``, i.e. when the
result is at least ``N / 32`` tuples — high-selectivity-factor queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relation.relation import Relation
from repro.relation.rid_index import RID_BYTES, RIDListIndex


@dataclass(frozen=True)
class PlanCost:
    """Byte-read cost of one plan."""

    plan: str
    bytes_read: int
    description: str

    def __str__(self) -> str:
        return f"{self.plan}: {self.bytes_read} bytes ({self.description})"


def plan_p1_cost(relation: Relation) -> PlanCost:
    """P1 — full relation scan."""
    total = relation.num_rows * relation.row_bytes
    return PlanCost(
        "P1", total, f"scan {relation.num_rows} tuples x {relation.row_bytes} B"
    )


def plan_p2_cost(
    relation: Relation, index_bytes: int, qualifying_rows: int
) -> PlanCost:
    """P2 — one index scan plus a partial scan of the qualifying tuples."""
    partial = qualifying_rows * relation.row_bytes
    return PlanCost(
        "P2",
        index_bytes + partial,
        f"index ({index_bytes} B) + partial scan of {qualifying_rows} tuples",
    )


def plan_p3_bitmap_cost(
    num_rows: int, bitmaps_scanned_per_predicate: int, num_predicates: int = 2
) -> PlanCost:
    """P3 with bitmap indexes: ``scans * N/8`` bytes per predicate."""
    per_bitmap = (num_rows + 7) // 8
    total = num_predicates * bitmaps_scanned_per_predicate * per_bitmap
    return PlanCost(
        "P3/bitmap",
        total,
        f"{num_predicates} predicates x {bitmaps_scanned_per_predicate} "
        f"bitmaps x {per_bitmap} B",
    )


def plan_p3_ridlist_cost(
    indexes: list[RIDListIndex], predicates: list[tuple[str, object]]
) -> PlanCost:
    """P3 with RID-list indexes: 4 bytes per qualifying RID per predicate."""
    if len(indexes) != len(predicates):
        raise ValueError("one index per predicate required")
    total = sum(
        idx.bytes_for(op, value) for idx, (op, value) in zip(indexes, predicates)
    )
    return PlanCost(
        "P3/rid-list",
        total,
        f"{len(predicates)} predicates, {RID_BYTES} B per qualifying RID",
    )


def ridlist_crossover_selectivity(num_predicate_bitmaps: int = 1) -> float:
    """Result fraction above which bitmaps beat RID lists.

    Reading ``k`` bitmaps per predicate costs ``k N / 8`` bytes; RID lists
    cost ``4 n``.  Bitmaps win when ``n >= k N / 32`` — the paper's
    ``N <= 32 n`` threshold for ``k = 1``.
    """
    return num_predicate_bitmaps / (8 * RID_BYTES)
