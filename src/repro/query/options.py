"""The unified tuning surface of the query layer.

Before this module, each of the four query entry points — the verifying
executor, the boolean expression tree, the plan optimizer, and the serving
engine — grew its own keyword sprawl (``verify=``, ``algorithm=``,
``workers=``, …).  :class:`QueryOptions` is the one dataclass they all
accept; the scattered legacy keywords have been removed after their
deprecation cycle.

:func:`normalize_query` is the companion piece of the unified surface: it
turns any of the accepted query forms — an
:class:`~repro.query.predicate.AttributePredicate`, an
:class:`~repro.query.expression.Expression` tree, or a textual expression
string — into the canonical object the execution paths dispatch on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidPredicateError


@dataclass(frozen=True)
class QueryOptions:
    """Tuning flags shared by executor, optimizer, and engine.

    Attributes
    ----------
    verify:
        Cross-check the result against a ground-truth scan (default off —
        the serving default; the executor's legacy call form still
        verifies by default for backward compatibility).
    algorithm:
        Evaluation algorithm passed to :func:`repro.core.evaluation.evaluate`
        (``'auto'``, ``'range_eval'``, ``'range_eval_opt'``,
        ``'equality_eval'``, ``'interval_eval'``).
    trace:
        Record a :class:`~repro.trace.QueryTrace` of timed spans on the
        result (adds per-operation overhead; leave off on the hot path).
    workers:
        Worker-pool width for batch entry points (``None`` = the engine's
        configured default).
    codec:
        Bitmap representation the query runs over (``'dense'``, ``'wah'``,
        or ``'roaring'``).  ``None`` defers to the per-index spec and then
        the engine's configured default codec.
    backend:
        Execution backend for engine queries: ``'inline'`` (sequential on
        the calling thread), ``'threads'`` (the engine's persistent
        thread pool), or ``'processes'`` (sharded, GIL-free execution on
        a process pool over shared-memory bitmap payloads).  ``None``
        defers to the engine's configured default backend.
    shards:
        Row-range shard count for the process backend (``None`` = the
        engine's configured default, which itself defaults to the worker
        count).  Ignored by the inline and thread backends.
    deadline_ms:
        Cooperative wall-clock budget in milliseconds (``None`` = no
        deadline).  The budget is checked at the evaluator, storage, and
        shard seams; a query that outlives it raises
        :class:`~repro.errors.QueryTimeoutError` (with the partial trace
        attached when tracing was on) instead of serving late.  On the
        inline and thread backends each query gets its own budget; the
        process backend treats it as a per-dispatch budget since shards
        of a batch evaluate together.
    """

    verify: bool = False
    algorithm: str = "auto"
    trace: bool = False
    workers: int | None = None
    codec: str | None = None
    backend: str | None = None
    shards: int | None = None
    deadline_ms: float | None = None

    def with_(self, **overrides) -> "QueryOptions":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: Shared default instance (options are immutable, so one is enough).
DEFAULT_OPTIONS = QueryOptions()

#: Default for the standalone entry points (executor, select,
#: execute_plan), which cross-check against a scan unless told otherwise.
VERIFYING_OPTIONS = QueryOptions(verify=True)


def normalize_query(query):
    """Canonicalize any accepted query form.

    Strings are parsed with the recursive-descent expression parser; a
    bare comparison collapses to an :class:`AttributePredicate` so it can
    take the single-predicate fast path.  Predicate and expression objects
    pass through unchanged.  Returns an
    :class:`~repro.query.predicate.AttributePredicate` or an
    :class:`~repro.query.expression.Expression`.
    """
    # Imported here: expression.py itself uses resolve_options, so a
    # module-level import would be circular.
    from repro.query.expression import Comparison, Expression, parse_expression
    from repro.query.predicate import AttributePredicate

    if isinstance(query, str):
        query = parse_expression(query)
    if isinstance(query, Comparison):
        return AttributePredicate(query.attribute, query.op, query.value)
    if isinstance(query, (AttributePredicate, Expression)):
        return query
    raise InvalidPredicateError(
        f"cannot interpret {query!r} as a query; expected an "
        f"AttributePredicate, an Expression, or a textual expression"
    )
