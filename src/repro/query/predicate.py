"""Attribute-level selection predicates.

:class:`AttributePredicate` binds a comparison to a named attribute of a
relation; :func:`parse_predicate` accepts the textual form used in
examples (``"quantity <= 25"``).  Values may be any orderable type — the
executor translates them to the rank domain through the column dictionary
before touching a bitmap index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import OPERATORS
from repro.errors import InvalidPredicateError

#: Parse operators longest-first so "<=" is not read as "<".
_PARSE_ORDER = ("<=", ">=", "!=", "<", ">", "=")


@dataclass(frozen=True)
class AttributePredicate:
    """``attribute op value`` over a relation."""

    attribute: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise InvalidPredicateError(
                f"unknown operator {self.op!r}; expected one of {OPERATORS}"
            )

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask over a value column (ground truth)."""
        v = np.asarray(values)
        if self.op == "<":
            return v < self.value
        if self.op == "<=":
            return v <= self.value
        if self.op == "=":
            return v == self.value
        if self.op == "!=":
            return v != self.value
        if self.op == ">=":
            return v >= self.value
        return v > self.value

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value}"


def parse_predicate(text: str) -> AttributePredicate:
    """Parse ``"attr op value"`` into an :class:`AttributePredicate`.

    The value is interpreted as an int when possible, then a float, and a
    bare string otherwise.

    >>> parse_predicate("quantity <= 25")
    AttributePredicate(attribute='quantity', op='<=', value=25)
    """
    for op in _PARSE_ORDER:
        if op in text:
            left, _, right = text.partition(op)
            attribute = left.strip()
            raw = right.strip()
            if not attribute or not raw:
                break
            value: object
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            return AttributePredicate(attribute, op, value)
    raise InvalidPredicateError(
        f"cannot parse predicate {text!r}; expected 'attribute op value'"
    )
