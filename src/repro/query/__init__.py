"""Query layer: selection predicates, access plans, and a verifying executor.

Grounds the paper's introduction: the three conventional plans for a
high-selectivity conjunctive selection — (P1) full relation scan,
(P2) one index scan plus a partial relation scan, (P3) per-predicate index
scans merged — with byte-read accounting, so the bitmap-vs-RID-list
crossover analysis (``N <= 32 n``) is executable.
"""

from repro.query.predicate import AttributePredicate, parse_predicate
from repro.query.plans import (
    PlanCost,
    plan_p1_cost,
    plan_p2_cost,
    plan_p3_bitmap_cost,
    plan_p3_ridlist_cost,
    ridlist_crossover_selectivity,
)
from repro.query.executor import AccessPath, QueryResult, execute
from repro.query.expression import (
    Expression,
    Threshold,
    Xor,
    parse_expression,
    select,
)
from repro.query.options import DEFAULT_OPTIONS, QueryOptions, normalize_query

__all__ = [
    "AccessPath",
    "AttributePredicate",
    "DEFAULT_OPTIONS",
    "Expression",
    "Threshold",
    "Xor",
    "PlanCost",
    "QueryOptions",
    "QueryResult",
    "execute",
    "normalize_query",
    "parse_expression",
    "parse_predicate",
    "select",
    "plan_p1_cost",
    "plan_p2_cost",
    "plan_p3_bitmap_cost",
    "plan_p3_ridlist_cost",
    "ridlist_crossover_selectivity",
]
