"""A verifying query executor over the access paths of the library.

``execute`` evaluates one :class:`~repro.query.predicate.AttributePredicate`
against a relation through a chosen access path — full scan, bitmap index,
RID-list index, or projection index — and (by default) cross-checks the
result against the ground-truth scan.  Bitmap access translates actual
values to the rank domain through the column dictionary first, so
predicates on non-consecutive domains (dates, floats, strings) work
unmodified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex, BitmapSource
from repro.errors import InvalidPredicateError, ReproError
from repro.faults import Deadline
from repro.query.options import VERIFYING_OPTIONS, QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.projection import ProjectionIndex
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex
from repro.stats import ExecutionStats
from repro.trace import QueryTrace


class AccessPath(enum.Enum):
    """The ways a selection predicate can be evaluated."""

    SCAN = "scan"
    BITMAP = "bitmap"
    RID_LIST = "rid_list"
    PROJECTION = "projection"


@dataclass
class QueryResult:
    """RIDs satisfying a predicate plus the execution statistics.

    ``trace`` is populated when the query ran with tracing enabled
    (``QueryOptions(trace=True)``); otherwise ``None``.
    """

    rids: np.ndarray
    access_path: AccessPath
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    trace: QueryTrace | None = None

    @property
    def count(self) -> int:
        return len(self.rids)


class VerificationError(ReproError):
    """An access path disagreed with the ground-truth scan."""


def execute(
    relation: Relation,
    predicate: AttributePredicate,
    access_path: AccessPath = AccessPath.SCAN,
    index: BitmapSource | RIDListIndex | ProjectionIndex | None = None,
    *,
    options: QueryOptions | None = None,
    trace: QueryTrace | None = None,
    deadline=None,
) -> QueryResult:
    """Evaluate ``predicate`` on ``relation`` via the chosen access path.

    ``index`` must match the access path: a bitmap source (built over the
    column *codes* — see :func:`bitmap_index_for`), a
    :class:`RIDListIndex`, or a :class:`ProjectionIndex`.

    Tuning flags live in ``options`` (a
    :class:`~repro.query.options.QueryOptions`); when omitted the
    standalone executor verifies by default.  With verification on the
    result is checked against a full scan and a :class:`VerificationError`
    raised on any disagreement.  ``trace`` threads an existing
    :class:`~repro.trace.QueryTrace` through the evaluation (the engine
    passes its own); with ``options.trace`` and no ``trace`` a fresh one
    is created.  Either way the trace is attached to the returned
    :class:`QueryResult`.  ``deadline`` threads an existing
    :class:`~repro.faults.Deadline` through the evaluation (the engine
    creates one from ``options.deadline_ms``); the evaluator and storage
    seams check it and raise :class:`~repro.errors.QueryTimeoutError`
    once the budget is gone.
    """
    options = options if options is not None else VERIFYING_OPTIONS
    if trace is None and options.trace:
        trace = QueryTrace(label=str(predicate))
    if deadline is None and options.deadline_ms is not None:
        deadline = Deadline(options.deadline_ms)
    stats = ExecutionStats()
    stats.trace = trace
    stats.deadline = deadline
    column = relation.column(predicate.attribute)

    if access_path is AccessPath.SCAN:
        rids = relation.scan(predicate.attribute, predicate.op, predicate.value)
        stats.bytes_read += relation.num_rows * relation.row_bytes
    elif access_path is AccessPath.BITMAP:
        if index is None:
            raise InvalidPredicateError("bitmap access path needs an index")
        if trace is not None:
            with trace.span("translate", kind="phase", attribute=predicate.attribute):
                op, code = column.code_bounds(predicate.op, predicate.value)
        else:
            op, code = column.code_bounds(predicate.op, predicate.value)
        result = evaluate(
            index, Predicate(op, code), algorithm=options.algorithm, stats=stats
        )
        if trace is not None:
            with trace.span("materialize", kind="phase"):
                rids = result.indices()
        else:
            rids = result.indices()
    elif access_path is AccessPath.RID_LIST:
        if not isinstance(index, RIDListIndex):
            raise InvalidPredicateError("rid_list access path needs a RIDListIndex")
        rids = index.lookup(predicate.op, predicate.value)
        stats.bytes_read += index.bytes_for(predicate.op, predicate.value)
    elif access_path is AccessPath.PROJECTION:
        if not isinstance(index, ProjectionIndex):
            raise InvalidPredicateError(
                "projection access path needs a ProjectionIndex"
            )
        code_op, code = column.code_bounds(predicate.op, predicate.value)
        rids = index.lookup(code_op, code)
        stats.bytes_read += index.size_bytes
    else:  # pragma: no cover - exhaustive enum
        raise InvalidPredicateError(f"unknown access path {access_path!r}")

    # Every access path above yields ascending RIDs (np.nonzero order;
    # RIDListIndex.lookup sorts internally), so no re-sort is needed here —
    # at 1M rows a redundant np.sort costs more than the evaluation itself.
    if options.verify:
        if trace is not None:
            with trace.span("verify", kind="phase"):
                truth = relation.scan(
                    predicate.attribute, predicate.op, predicate.value
                )
        else:
            truth = relation.scan(predicate.attribute, predicate.op, predicate.value)
        if not np.array_equal(rids, truth):
            raise VerificationError(
                f"{access_path.value} path returned {len(rids)} RIDs for "
                f"'{predicate}'; the scan found {len(truth)}"
            )
    if trace is not None:
        trace.finish()
    return QueryResult(rids=rids, access_path=access_path, stats=stats, trace=trace)


def bitmap_index_for(
    relation: Relation,
    attribute: str,
    compressed: bool = False,
    codec: str | None = None,
    **kwargs,
) -> BitmapSource:
    """Build a bitmap index over a relation column's code domain.

    Keyword arguments are forwarded to :class:`BitmapIndex` (``base``,
    ``encoding``, …).  The index is built on the column's integer codes,
    matching the dictionary translation in :func:`execute`.  With
    ``compressed=True`` (or an explicit ``codec="wah"``/``"roaring"``) the
    returned source serves compressed bitmaps (see
    :meth:`BitmapIndex.as_compressed`), so :func:`execute` runs the whole
    evaluation in the compressed domain.
    """
    column = relation.column(attribute)
    index = BitmapIndex(column.codes, cardinality=column.cardinality, **kwargs)
    if codec is None:
        codec = "wah" if compressed else "dense"
    return index if codec == "dense" else index.as_compressed(codec)


def conjunctive_select(
    relation: Relation,
    predicates: list[AttributePredicate],
    indexes: dict[str, BitmapSource],
    verify: bool = True,
) -> QueryResult:
    """Plan P3 with bitmap indexes: per-predicate evaluation, AND-merged.

    Every predicate attribute must have a bitmap index in ``indexes``.
    """
    if not predicates:
        raise InvalidPredicateError("need at least one predicate")
    stats = ExecutionStats()
    acc = None
    for pred in predicates:
        column = relation.column(pred.attribute)
        try:
            index = indexes[pred.attribute]
        except KeyError:
            raise InvalidPredicateError(
                f"no bitmap index for attribute {pred.attribute!r}"
            ) from None
        op, code = column.code_bounds(pred.op, pred.value)
        bitmap = evaluate(index, Predicate(op, code), stats=stats)
        if acc is None:
            acc = bitmap
        else:
            stats.ands += 1
            acc = acc & bitmap
    assert acc is not None
    rids = acc.indices()
    if verify:
        mask = np.ones(relation.num_rows, dtype=bool)
        for pred in predicates:
            mask &= pred.matches(relation.column(pred.attribute).values)
        truth = np.nonzero(mask)[0]
        if not np.array_equal(rids, truth):
            raise VerificationError(
                f"P3 bitmap plan returned {len(rids)} RIDs; "
                f"the scan found {len(truth)}"
            )
    return QueryResult(rids=rids, access_path=AccessPath.BITMAP, stats=stats)
