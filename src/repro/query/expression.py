"""Boolean selection expressions over bitmap indexes.

The paper evaluates single predicates; real DSS queries combine them.
Bitmap indexes make boolean combination trivial — one hardware-friendly
word operation per connective — which is much of their original appeal
(the paper's introduction: "operations on bitmaps are more CPU-efficient
than merging RID-lists").  This module provides:

- an expression tree (:class:`Comparison`, :class:`And`, :class:`Or`,
  :class:`Xor`, :class:`Not`, :class:`In`, :class:`Between`,
  :class:`Threshold`) whose nodes evaluate to bitmaps through
  per-attribute bitmap indexes;
- a small recursive-descent parser for the textual form, e.g.
  ``"quantity <= 25 and (region = 3 or region = 7) and not flagged = 1"``
  or ``"atleast(2, region = 3, quantity > 10, flagged = 1)"``;
- ground-truth evaluation over raw columns for verification.

``IN`` lists become ORs of equality bitmaps; ``BETWEEN`` becomes two
range predicates — both evaluated entirely inside the index.
``ATLEAST(k, e1, …, eN)`` — the k-of-N threshold of Kaser & Lemire's
"beyond unions and intersections" — evaluates through each codec's
native compressed-domain counting kernel
(:func:`repro.core.evaluation.threshold_all`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.core.evaluation import OPERATORS, Predicate, evaluate, threshold_all
from repro.core.index import BitmapSource
from repro.errors import InvalidPredicateError
from repro.query.options import VERIFYING_OPTIONS, QueryOptions
from repro.relation.relation import Relation
from repro.stats import ExecutionStats


class Expression:
    """Base class of the boolean expression tree."""

    def bitmap(
        self,
        relation: Relation,
        indexes: dict[str, BitmapSource],
        stats: ExecutionStats | None = None,
    ) -> BitVector:
        """Evaluate to a result bitmap through the given bitmap indexes."""
        raise NotImplementedError

    def mask(self, relation: Relation) -> np.ndarray:
        """Ground-truth boolean mask over the relation (no indexes)."""
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """Attribute names the expression references."""
        raise NotImplementedError

    # Convenience combinators so expressions compose in Python too.
    def __and__(self, other: "Expression") -> "Expression":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return Or(self, other)

    def __xor__(self, other: "Expression") -> "Expression":
        return Xor(self, other)

    def __invert__(self) -> "Expression":
        return Not(self)


def _index_for(
    relation: Relation,
    indexes: dict[str, BitmapSource],
    attribute: str,
) -> BitmapSource:
    try:
        return indexes[attribute]
    except KeyError:
        raise InvalidPredicateError(
            f"no bitmap index for attribute {attribute!r}"
        ) from None


def _count_op(stats: ExecutionStats | None, op: str) -> None:
    """Charge one connective to ``stats`` and its trace (when present)."""
    if stats is None:
        return
    if op == "and":
        stats.ands += 1
    elif op == "or":
        stats.ors += 1
    elif op == "xor":
        stats.xors += 1
    else:
        stats.nots += 1
    if stats.trace is not None:
        stats.trace.event(op, kind="op", layer="expression")


@dataclass(frozen=True)
class Comparison(Expression):
    """A leaf ``attribute op value``."""

    attribute: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise InvalidPredicateError(f"unknown operator {self.op!r}")

    def bitmap(self, relation, indexes, stats=None):
        column = relation.column(self.attribute)
        op, code = column.code_bounds(self.op, self.value)
        index = _index_for(relation, indexes, self.attribute)
        return evaluate(index, Predicate(op, code), stats=stats)

    def mask(self, relation):
        values = relation.column(self.attribute).values
        ops = {
            "<": values < self.value,
            "<=": values <= self.value,
            "=": values == self.value,
            "!=": values != self.value,
            ">=": values >= self.value,
            ">": values > self.value,
        }
        return ops[self.op]

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        return f"{self.attribute} {self.op} {self.value}"


@dataclass(frozen=True)
class In(Expression):
    """``attribute IN (v1, v2, …)`` — an OR of equality bitmaps."""

    attribute: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise InvalidPredicateError("IN list must not be empty")

    def bitmap(self, relation, indexes, stats=None):
        column = relation.column(self.attribute)
        index = _index_for(relation, indexes, self.attribute)
        acc: BitVector | None = None
        for value in self.values:
            _, code = column.code_bounds("=", value)
            term = evaluate(index, Predicate("=", code), stats=stats)
            if acc is None:
                acc = term
            else:
                _count_op(stats, "or")
                acc = acc | term
        assert acc is not None
        return acc

    def mask(self, relation):
        values = relation.column(self.attribute).values
        out = np.zeros(len(values), dtype=bool)
        for value in self.values:
            out |= values == value
        return out

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.attribute} in ({inner})"


@dataclass(frozen=True)
class Between(Expression):
    """``attribute BETWEEN low AND high`` (inclusive both ends)."""

    attribute: str
    low: object
    high: object

    def bitmap(self, relation, indexes, stats=None):
        column = relation.column(self.attribute)
        index = _index_for(relation, indexes, self.attribute)
        op_lo, code_lo = column.code_bounds(">=", self.low)
        op_hi, code_hi = column.code_bounds("<=", self.high)
        lower = evaluate(index, Predicate(op_lo, code_lo), stats=stats)
        upper = evaluate(index, Predicate(op_hi, code_hi), stats=stats)
        _count_op(stats, "and")
        return lower & upper

    def mask(self, relation):
        values = relation.column(self.attribute).values
        return (values >= self.low) & (values <= self.high)

    def attributes(self):
        return {self.attribute}

    def __str__(self):
        return f"{self.attribute} between {self.low} and {self.high}"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def bitmap(self, relation, indexes, stats=None):
        a = self.left.bitmap(relation, indexes, stats)
        b = self.right.bitmap(relation, indexes, stats)
        _count_op(stats, "and")
        return a & b

    def mask(self, relation):
        return self.left.mask(relation) & self.right.mask(relation)

    def attributes(self):
        return self.left.attributes() | self.right.attributes()

    def __str__(self):
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def bitmap(self, relation, indexes, stats=None):
        a = self.left.bitmap(relation, indexes, stats)
        b = self.right.bitmap(relation, indexes, stats)
        _count_op(stats, "or")
        return a | b

    def mask(self, relation):
        return self.left.mask(relation) | self.right.mask(relation)

    def attributes(self):
        return self.left.attributes() | self.right.attributes()

    def __str__(self):
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Xor(Expression):
    """Symmetric difference: rows matching exactly one side.

    Evaluates as one compressed-domain XOR per codec — equivalent to
    ``(left OR right) ANDNOT (left AND right)`` but a single operation.
    """

    left: Expression
    right: Expression

    def bitmap(self, relation, indexes, stats=None):
        a = self.left.bitmap(relation, indexes, stats)
        b = self.right.bitmap(relation, indexes, stats)
        _count_op(stats, "xor")
        return a ^ b

    def mask(self, relation):
        return self.left.mask(relation) ^ self.right.mask(relation)

    def attributes(self):
        return self.left.attributes() | self.right.attributes()

    def __str__(self):
        return f"({self.left} xor {self.right})"


@dataclass(frozen=True)
class Threshold(Expression):
    """k-of-N threshold ``ATLEAST(k, e1, …, eN)``.

    Matches the rows satisfying at least ``k`` of the operand
    expressions — ``k = 1`` is the N-way OR, ``k = N`` the N-way AND, and
    intermediate ``k`` the "match at least k criteria" query class the
    folds cannot express.  Out-of-range thresholds are legal and clamp:
    ``k <= 0`` matches every row, ``k > N`` matches none.  Operand
    bitmaps combine through the codec's native k-way counting kernel
    (:func:`repro.core.evaluation.threshold_all`), never materializing
    row-granularity intermediates.
    """

    k: int
    operands: tuple[Expression, ...]

    def __post_init__(self):
        if not isinstance(self.k, int) or isinstance(self.k, bool):
            raise InvalidPredicateError(
                f"threshold k must be an integer, got {self.k!r}"
            )
        if not self.operands:
            raise InvalidPredicateError(
                "threshold needs at least one operand expression"
            )

    def bitmap(self, relation, indexes, stats=None):
        vectors = [e.bitmap(relation, indexes, stats) for e in self.operands]
        counted = stats if stats is not None else ExecutionStats()
        return threshold_all(vectors, self.k, counted)

    def mask(self, relation):
        counts = np.zeros(relation.num_rows, dtype=np.int64)
        for operand in self.operands:
            counts += operand.mask(relation)
        return counts >= self.k

    def attributes(self):
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.attributes()
        return out

    def __str__(self):
        inner = ", ".join(str(e) for e in self.operands)
        return f"atleast({self.k}, {inner})"


@dataclass(frozen=True)
class Not(Expression):
    inner: Expression

    def bitmap(self, relation, indexes, stats=None):
        result = ~self.inner.bitmap(relation, indexes, stats)
        _count_op(stats, "not")
        return result

    def mask(self, relation):
        return ~self.inner.mask(relation)

    def attributes(self):
        return self.inner.attributes()

    def __str__(self):
        return f"(not {self.inner})"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<op><=|>=|!=|<|>|=)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<number>-?\d+\.?\d*))"
)

_KEYWORDS = {"and", "or", "xor", "not", "in", "between"}

#: Function-style leaf names, matched contextually (only when followed by
#: an opening parenthesis) so columns with these names keep working.
_THRESHOLD_NAMES = {"atleast", "threshold"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == pos:
            raise InvalidPredicateError(
                f"cannot tokenize expression at: {text[pos:pos + 20]!r}"
            )
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append((value.lower(), value))
        else:
            tokens.append((kind, value))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive descent: or-expr > and-expr > not-expr > leaf."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos][0]
        return None

    def _take(self, kind: str | None = None) -> tuple[str, str]:
        if self._pos >= len(self._tokens):
            raise InvalidPredicateError("unexpected end of expression")
        token = self._tokens[self._pos]
        if kind is not None and token[0] != kind:
            raise InvalidPredicateError(
                f"expected {kind} but found {token[1]!r}"
            )
        self._pos += 1
        return token

    def parse(self) -> Expression:
        expr = self._or()
        if self._pos != len(self._tokens):
            extra = self._tokens[self._pos][1]
            raise InvalidPredicateError(f"trailing input at {extra!r}")
        return expr

    def _or(self) -> Expression:
        left = self._xor()
        while self._peek() == "or":
            self._take("or")
            left = Or(left, self._xor())
        return left

    def _xor(self) -> Expression:
        left = self._and()
        while self._peek() == "xor":
            self._take("xor")
            left = Xor(left, self._and())
        return left

    def _and(self) -> Expression:
        left = self._not()
        while self._peek() == "and":
            self._take("and")
            left = And(left, self._not())
        return left

    def _not(self) -> Expression:
        if self._peek() == "not":
            self._take("not")
            return Not(self._not())
        return self._leaf()

    def _leaf(self) -> Expression:
        if self._peek() == "lparen":
            self._take("lparen")
            expr = self._or()
            self._take("rparen")
            return expr
        _, attribute = self._take("word")
        kind = self._peek()
        if attribute.lower() in _THRESHOLD_NAMES and kind == "lparen":
            return self._threshold(attribute)
        if kind == "op":
            _, op = self._take("op")
            return Comparison(attribute, op, self._value())
        if kind == "in":
            self._take("in")
            self._take("lparen")
            values = [self._value()]
            while self._peek() == "comma":
                self._take("comma")
                values.append(self._value())
            self._take("rparen")
            return In(attribute, tuple(values))
        if kind == "between":
            self._take("between")
            low = self._value()
            self._take("and")
            return Between(attribute, low, self._value())
        raise InvalidPredicateError(
            f"expected an operator after {attribute!r}"
        )

    def _threshold(self, name: str) -> Expression:
        """``atleast(k, expr, expr, …)`` — parsed after its name token."""
        self._take("lparen")
        kind, text = self._take()
        if kind != "number" or "." in text:
            raise InvalidPredicateError(
                f"{name} needs an integer threshold, found {text!r}"
            )
        k = int(text)
        operands: list[Expression] = []
        while self._peek() == "comma":
            self._take("comma")
            operands.append(self._or())
        self._take("rparen")
        if not operands:
            raise InvalidPredicateError(
                f"{name}({k}, …) needs at least one operand expression"
            )
        return Threshold(k, tuple(operands))

    def _value(self):
        kind, text = self._take()
        if kind == "number":
            return float(text) if "." in text else int(text)
        if kind == "word":
            return text
        raise InvalidPredicateError(f"expected a value, found {text!r}")


def parse_expression(text: str) -> Expression:
    """Parse a boolean selection expression.

    Grammar (case-insensitive keywords)::

        or-expr   := xor-expr ("or" xor-expr)*
        xor-expr  := and-expr ("xor" and-expr)*
        and-expr  := not-expr ("and" not-expr)*
        not-expr  := "not" not-expr | leaf
        leaf      := "(" or-expr ")"
                   | ("atleast" | "threshold") "(" int ("," or-expr)+ ")"
                   | attr op value
                   | attr "in" "(" value ("," value)* ")"
                   | attr "between" value "and" value

    ``atleast``/``threshold`` are matched contextually (only when
    directly followed by ``(``), so attributes with those names still
    parse as comparison leaves.
    """
    if not text.strip():
        raise InvalidPredicateError("empty expression")
    return _Parser(_tokenize(text)).parse()


def select(
    relation: Relation,
    expression: Expression | str,
    indexes: dict[str, BitmapSource],
    stats: ExecutionStats | None = None,
    *,
    options: QueryOptions | None = None,
) -> np.ndarray:
    """Evaluate an expression through bitmap indexes; returns sorted RIDs.

    Tuning flags live in ``options``; when omitted the standalone entry
    point verifies against a scan by default.  With ``options.trace`` a
    fresh :class:`~repro.trace.QueryTrace` is attached to ``stats``
    (creating the stats object if needed) and left there for the caller
    to read.
    """
    opts = options if options is not None else VERIFYING_OPTIONS
    verify = opts.verify
    if opts.trace:
        if stats is None:
            stats = ExecutionStats()
        if stats.trace is None:
            from repro.trace import QueryTrace

            stats.trace = QueryTrace(label=str(expression))
    if isinstance(expression, str):
        expression = parse_expression(expression)
    bitmap = expression.bitmap(relation, indexes, stats)
    rids = bitmap.indices()
    if verify:
        truth = np.nonzero(expression.mask(relation))[0]
        if not np.array_equal(rids, truth):
            from repro.query.executor import VerificationError

            raise VerificationError(
                f"expression '{expression}' returned {len(rids)} RIDs; "
                f"the scan found {len(truth)}"
            )
    return rids
