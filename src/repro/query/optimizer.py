"""A cost-based selection-plan optimizer over the paper's three plans.

The introduction describes the conventional optimizer's options for a
conjunctive selection — (P1) full scan, (P2) one index scan plus a
partial relation scan, (P3) per-predicate index scans merged — and argues
that P3 over bitmap indexes wins for high-selectivity-factor queries.
This module makes that argument executable: it *estimates* each plan's
byte cost from catalog statistics (no peeking at the data), picks the
cheapest, runs it, and verifies the result.

Selectivity estimation uses the classic uniform assumption: the fraction
of the column's distinct values that qualify, read off the sorted value
dictionary.  Bitmap scan counts per predicate come from the paper's own
cost model (:func:`repro.core.costmodel.scans_for_predicate`), so the
optimizer's view of a bitmap index is exactly the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import costmodel
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapSource
from repro.errors import InvalidPredicateError
from repro.query.executor import QueryResult, VerificationError
from repro.query.options import VERIFYING_OPTIONS, QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.histogram import EquiDepthHistogram
from repro.relation.relation import Relation
from repro.relation.rid_index import RID_BYTES, RIDListIndex
from repro.stats import ExecutionStats

#: Plan names, matching the paper's numbering.
PLAN_FULL_SCAN = "P1"
PLAN_INDEX_PLUS_SCAN = "P2"
PLAN_BITMAP_MERGE = "P3/bitmap"
PLAN_RIDLIST_MERGE = "P3/rid-list"


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision with its cost estimates."""

    plan: str
    estimated_bytes: int
    alternatives: dict[str, int]
    driving_attribute: str | None = None

    def __str__(self) -> str:
        ranked = ", ".join(
            f"{name}={cost}" for name, cost in sorted(
                self.alternatives.items(), key=lambda item: item[1]
            )
        )
        return f"{self.plan} (estimates: {ranked})"


@dataclass
class Catalog:
    """The indexes and statistics the optimizer may use, per attribute.

    ``histograms`` (see :mod:`repro.relation.histogram`) refine the
    default uniform-rows selectivity estimates on skewed columns.
    """

    bitmap_indexes: dict[str, BitmapSource] = field(default_factory=dict)
    rid_indexes: dict[str, RIDListIndex] = field(default_factory=dict)
    histograms: dict[str, "EquiDepthHistogram"] = field(default_factory=dict)


def estimate_selectivity(
    relation: Relation,
    predicate: AttributePredicate,
    catalog: "Catalog | None" = None,
) -> float:
    """Estimated qualifying fraction of one predicate.

    Uses the catalog's equi-depth histogram for the attribute when one
    exists; otherwise falls back to the uniform-rows-per-distinct-value
    assumption over the column dictionary.
    """
    if catalog is not None:
        histogram = catalog.histograms.get(predicate.attribute)
        if histogram is not None:
            return histogram.estimate(predicate.op, predicate.value)
    column = relation.column(predicate.attribute)
    c = column.cardinality
    op, code = column.code_bounds(predicate.op, predicate.value)
    if op == "=":
        return 1.0 / c if 0 <= code < c else 0.0
    if op == "!=":
        return 1.0 - (1.0 / c if 0 <= code < c else 0.0)
    if op == "<":
        qualifying = min(max(code, 0), c)
    elif op == "<=":
        qualifying = min(max(code + 1, 0), c)
    elif op == ">=":
        qualifying = c - min(max(code, 0), c)
    else:  # ">"
        qualifying = c - min(max(code + 1, 0), c)
    return qualifying / c


def estimate_expression_selectivity(
    relation: Relation,
    expression,
    catalog: "Catalog | None" = None,
) -> float:
    """Estimated qualifying fraction of a boolean expression tree.

    Recurses with the textbook independence assumptions: AND multiplies,
    OR is inclusion–exclusion (``s1 + s2 - s1*s2``), NOT complements,
    XOR is ``s1 + s2 - 2*s1*s2``.  A :class:`~repro.query.expression.Threshold`
    node is the tail of a Poisson-binomial: with independent operand
    selectivities ``p_i``, the chance at least ``k`` of ``N`` hold is
    computed exactly by the standard O(N^2) dynamic program over the
    count distribution.  Leaves defer to :func:`estimate_selectivity`
    (histogram-refined when the catalog has one).
    """
    from repro.query.expression import (
        And,
        Between,
        Comparison,
        In,
        Not,
        Or,
        Threshold,
        Xor,
    )

    def leaf(attribute: str, op: str, value) -> float:
        return estimate_selectivity(
            relation, AttributePredicate(attribute, op, value), catalog
        )

    def walk(node) -> float:
        if isinstance(node, Comparison):
            return leaf(node.attribute, node.op, node.value)
        if isinstance(node, In):
            union = sum(leaf(node.attribute, "=", v) for v in node.values)
            return min(union, 1.0)
        if isinstance(node, Between):
            s = leaf(node.attribute, ">=", node.low) + leaf(
                node.attribute, "<=", node.high
            )
            return min(max(s - 1.0, 0.0), 1.0)
        if isinstance(node, And):
            return walk(node.left) * walk(node.right)
        if isinstance(node, Or):
            s1, s2 = walk(node.left), walk(node.right)
            return s1 + s2 - s1 * s2
        if isinstance(node, Xor):
            s1, s2 = walk(node.left), walk(node.right)
            return s1 + s2 - 2.0 * s1 * s2
        if isinstance(node, Not):
            return 1.0 - walk(node.inner)
        if isinstance(node, Threshold):
            probs = [walk(operand) for operand in node.operands]
            if node.k <= 0:
                return 1.0
            if node.k > len(probs):
                return 0.0
            # Poisson-binomial DP: dist[j] = P(exactly j operands hold).
            dist = np.zeros(len(probs) + 1)
            dist[0] = 1.0
            for p in probs:
                dist[1:] = dist[1:] * (1.0 - p) + dist[:-1] * p
                dist[0] *= 1.0 - p
            return float(dist[node.k :].sum())
        raise InvalidPredicateError(
            f"cannot estimate selectivity of {type(node).__name__}"
        )

    return min(max(walk(expression), 0.0), 1.0)


def _bitmap_predicate_bytes(
    relation: Relation, predicate: AttributePredicate, index: BitmapSource
) -> int:
    """Bytes to evaluate one predicate through its bitmap index."""
    column = relation.column(predicate.attribute)
    op, code = column.code_bounds(predicate.op, predicate.value)
    scans = costmodel.scans_for_predicate(
        index.base, index.cardinality, op, code, index.encoding
    )
    return scans * ((relation.num_rows + 7) // 8)


def _ridlist_predicate_bytes(
    relation: Relation,
    predicate: AttributePredicate,
    catalog: "Catalog | None" = None,
) -> int:
    """Bytes to evaluate one predicate through a RID-list index (estimate)."""
    selectivity = estimate_selectivity(relation, predicate, catalog)
    return int(RID_BYTES * selectivity * relation.num_rows)


def choose_plan(
    relation: Relation,
    predicates: list[AttributePredicate],
    catalog: Catalog,
) -> PlanChoice:
    """Estimate every applicable plan's bytes and return the cheapest."""
    if not predicates:
        raise InvalidPredicateError("need at least one predicate")
    estimates: dict[str, int] = {
        PLAN_FULL_SCAN: relation.num_rows * relation.row_bytes
    }
    driving: str | None = None

    indexed = [
        p
        for p in predicates
        if p.attribute in catalog.bitmap_indexes
        or p.attribute in catalog.rid_indexes
    ]
    if indexed:
        # P2: drive with the most selective indexed predicate, then
        # rescan the qualifying tuples for the remaining predicates.
        best = min(
            indexed,
            key=lambda p: estimate_selectivity(relation, p, catalog),
        )
        driving = best.attribute
        selectivity = estimate_selectivity(relation, best, catalog)
        if best.attribute in catalog.bitmap_indexes:
            index_bytes = _bitmap_predicate_bytes(
                relation, best, catalog.bitmap_indexes[best.attribute]
            )
        else:
            index_bytes = _ridlist_predicate_bytes(relation, best, catalog)
        partial = int(selectivity * relation.num_rows) * relation.row_bytes
        estimates[PLAN_INDEX_PLUS_SCAN] = index_bytes + partial

    if all(p.attribute in catalog.bitmap_indexes for p in predicates):
        estimates[PLAN_BITMAP_MERGE] = sum(
            _bitmap_predicate_bytes(
                relation, p, catalog.bitmap_indexes[p.attribute]
            )
            for p in predicates
        )
    if all(p.attribute in catalog.rid_indexes for p in predicates):
        estimates[PLAN_RIDLIST_MERGE] = sum(
            _ridlist_predicate_bytes(relation, p, catalog) for p in predicates
        )

    plan = min(estimates, key=lambda name: estimates[name])
    return PlanChoice(plan, estimates[plan], estimates, driving)


def execute_plan(
    relation: Relation,
    predicates: list[AttributePredicate],
    catalog: Catalog,
    choice: PlanChoice | None = None,
    *,
    options: QueryOptions | None = None,
) -> tuple[QueryResult, PlanChoice]:
    """Optimize (unless a choice is given), execute, and verify.

    Tuning flags live in ``options``; when omitted the plan executor
    verifies against a scan by default.  With ``options.trace`` the plan
    decision is recorded as a ``plan.choose`` span (with every
    alternative's cost estimate) and the trace rides on the result.
    """
    options = options if options is not None else VERIFYING_OPTIONS
    stats = ExecutionStats()
    trace = None
    if options.trace:
        from repro.trace import QueryTrace

        label = " and ".join(str(p) for p in predicates)
        trace = QueryTrace(label=label)
        stats.trace = trace
    if choice is None:
        if trace is not None:
            with trace.span("plan.choose", kind="plan"):
                choice = choose_plan(relation, predicates, catalog)
        else:
            choice = choose_plan(relation, predicates, catalog)
    if trace is not None:
        trace.event(
            "plan.selected",
            kind="plan",
            plan=choice.plan,
            estimated_bytes=choice.estimated_bytes,
            alternatives=dict(choice.alternatives),
            driving_attribute=choice.driving_attribute,
        )

    if choice.plan == PLAN_FULL_SCAN:
        rids = _scan_all(relation, predicates)
        stats.bytes_read += relation.num_rows * relation.row_bytes
    elif choice.plan == PLAN_INDEX_PLUS_SCAN:
        assert choice.driving_attribute is not None
        best = next(
            p for p in predicates if p.attribute == choice.driving_attribute
        )
        rids = _single_index_rids(relation, best, catalog, stats)
        rest = [p for p in predicates if p is not best]
        for predicate in rest:
            column_values = relation.column(predicate.attribute).values[rids]
            rids = rids[predicate.matches(column_values)]
        stats.bytes_read += len(rids) * relation.row_bytes
    elif choice.plan == PLAN_BITMAP_MERGE:
        acc = None
        for predicate in predicates:
            column = relation.column(predicate.attribute)
            op, code = column.code_bounds(predicate.op, predicate.value)
            bitmap = evaluate(
                catalog.bitmap_indexes[predicate.attribute],
                Predicate(op, code),
                stats=stats,
            )
            acc = bitmap if acc is None else acc & bitmap
        assert acc is not None
        rids = acc.indices()
    elif choice.plan == PLAN_RIDLIST_MERGE:
        rids = None
        for predicate in predicates:
            index = catalog.rid_indexes[predicate.attribute]
            found = index.lookup(predicate.op, predicate.value)
            stats.bytes_read += index.bytes_for(predicate.op, predicate.value)
            rids = found if rids is None else np.intersect1d(rids, found)
        assert rids is not None
    else:  # pragma: no cover - choose_plan only emits the four names
        raise InvalidPredicateError(f"unknown plan {choice.plan!r}")

    rids = np.sort(np.asarray(rids))
    if options.verify:
        if trace is not None:
            with trace.span("verify", kind="phase"):
                truth = _scan_all(relation, predicates)
        else:
            truth = _scan_all(relation, predicates)
        if not np.array_equal(rids, truth):
            raise VerificationError(
                f"plan {choice.plan} returned {len(rids)} RIDs; the scan "
                f"found {len(truth)}"
            )
    from repro.query.executor import AccessPath

    if trace is not None:
        trace.finish()
    return (
        QueryResult(
            rids=rids, access_path=AccessPath.SCAN, stats=stats, trace=trace
        ),
        choice,
    )


def _scan_all(
    relation: Relation, predicates: list[AttributePredicate]
) -> np.ndarray:
    mask = np.ones(relation.num_rows, dtype=bool)
    for predicate in predicates:
        mask &= predicate.matches(relation.column(predicate.attribute).values)
    return np.nonzero(mask)[0]


def _single_index_rids(
    relation: Relation,
    predicate: AttributePredicate,
    catalog: Catalog,
    stats: ExecutionStats,
) -> np.ndarray:
    if predicate.attribute in catalog.bitmap_indexes:
        column = relation.column(predicate.attribute)
        op, code = column.code_bounds(predicate.op, predicate.value)
        bitmap = evaluate(
            catalog.bitmap_indexes[predicate.attribute],
            Predicate(op, code),
            stats=stats,
        )
        return bitmap.indices()
    index = catalog.rid_indexes[predicate.attribute]
    stats.bytes_read += index.bytes_for(predicate.op, predicate.value)
    return index.lookup(predicate.op, predicate.value)
