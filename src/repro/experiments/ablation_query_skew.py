"""Ablation — how robust is the knee to skewed query constants?

The paper's cost model assumes predicate constants uniform over the
domain (Section 4).  Real DSS workloads skew toward popular values.  This
ablation re-weights the query space with a Zipf distribution over the
constants and asks: does the Theorem 7.1 knee index stay close to the
best 2-component space-optimal index under the skewed workload, and does
the uniform-model Pareto front stay near-optimal?

Expected shape: mild degradation only.  Skewing the constants shifts
which digits are hot, but every constant still costs between ``n - 1``
and ``2n`` scans on a range-encoded index, so design quality is
insensitive to the constant distribution — evidence that the paper's
uniform assumption is not load-bearing.
"""

from __future__ import annotations

import numpy as np

from repro.core import costmodel
from repro.core.optimize import (
    enumerate_bases,
    knee_base,
    space_optimal_bitmaps,
)
from repro.experiments.harness import ExperimentResult

#: Zipf exponents over the predicate constants (0 = the paper's model).
DEFAULT_SKEWS = (0.0, 0.5, 1.0, 2.0)


def _zipf_weights(cardinality: int, skew: float) -> np.ndarray:
    return 1.0 / np.arange(1, cardinality + 1, dtype=np.float64) ** skew


def run(
    quick: bool = True,
    cardinality: int | None = None,
    skews: tuple[float, ...] = DEFAULT_SKEWS,
) -> ExperimentResult:
    """Weighted expected scans of the knee vs the per-skew best design."""
    c = cardinality if cardinality is not None else (50 if quick else 100)
    knee = knee_base(c)
    target_space = space_optimal_bitmaps(c, 2)
    two_component = [
        base
        for base in enumerate_bases(
            c, exact_n=2, max_space=target_space, tight_only=False
        )
        if costmodel.space_range(base) == target_space
    ]

    result = ExperimentResult(
        "ablation_query_skew",
        f"Knee robustness under Zipf-skewed query constants (C={c})",
        ["skew", "knee scans", "best 2-comp scans", "best 2-comp base",
         "knee degradation %"],
    )
    worst = 0.0
    for skew in skews:
        weights = _zipf_weights(c, skew)
        knee_scans = costmodel.expected_scans_weighted(knee, c, weights)
        best_base = min(
            two_component,
            key=lambda b: costmodel.expected_scans_weighted(b, c, weights),
        )
        best_scans = costmodel.expected_scans_weighted(best_base, c, weights)
        degradation = 100.0 * (knee_scans - best_scans) / best_scans
        worst = max(worst, degradation)
        result.add(skew, knee_scans, best_scans, str(best_base), degradation)
    result.note(
        f"worst-case knee degradation across skews: {worst:.2f}% — the "
        f"Theorem 7.1 knee (chosen under the uniform model) stays "
        f"near-optimal under skewed constants"
    )
    return result
