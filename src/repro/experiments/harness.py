"""Shared machinery for the experiment modules.

Results are plain tables (headers + rows) with free-form notes; the
formatter produces the aligned text the benchmark harness prints and that
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One reproduced table or figure series."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Named (x, y) point series for ``--plot`` rendering; axis labels in
    #: ``plot_axes`` as (xlabel, ylabel).
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    plot_axes: tuple[str, str] = ("x", "y")

    def add(self, *values) -> None:
        """Append one row."""
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Attach a free-form note shown under the table."""
        self.notes.append(text)

    def add_point(self, label: str, x: float, y: float) -> None:
        """Record one point of a named plot series."""
        self.series.setdefault(label, []).append((float(x), float(y)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render a result as an aligned text table."""
    headers = [str(h) for h in result.headers]
    str_rows = [[_fmt(v) for v in row] for row in result.rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {result.exp_id}: {result.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def save_results(results: list[ExperimentResult], directory: str) -> list[str]:
    """Write each result's formatted table to ``<directory>/<exp_id>.txt``."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    by_id: dict[str, list[ExperimentResult]] = {}
    for result in results:
        by_id.setdefault(result.exp_id, []).append(result)
    for exp_id, group in by_id.items():
        path = os.path.join(directory, f"{exp_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(format_table(r) for r in group))
            handle.write("\n")
        paths.append(path)
    return paths
