"""Self-auditing reproduction report.

Each experiment reproduces one of the paper's artifacts; this module
encodes the paper's *claims* about those artifacts as executable checks
and produces a pass/fail report — the machine-checkable version of
EXPERIMENTS.md.  Run it with::

    python -m repro.experiments report [--full] [--out FILE]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ExperimentResult


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim."""

    exp_id: str
    claim: str
    passed: bool
    detail: str


def _check(exp_id, claim, passed, detail="") -> ClaimCheck:
    return ClaimCheck(exp_id, claim, bool(passed), detail)


def _table1(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    matches = all(row[-1] == "yes" for row in r.rows)
    by_key = {(row[0], row[1], row[2]): row for row in r.rows}
    ns = sorted({row[0] for row in r.rows})
    one_less = all(
        by_key[(n, "range_eval_opt", "A <= c")][9]
        == by_key[(n, "range_eval", "A <= c")][9] - 1
        for n in ns
    )
    ratio = sum(
        by_key[(n, "range_eval_opt", "A <= c")][7]
        / max(by_key[(n, "range_eval", "A <= c")][7], 1)
        for n in ns
    ) / len(ns)
    return [
        _check("table1", "measured worst cases equal closed forms", matches),
        _check("table1", "RangeEval-Opt saves one scan per range predicate",
               one_less),
        _check("table1", "~50% fewer bitmap operations", ratio < 0.7,
               f"mean ops ratio {ratio:.2f}"),
    ]


def _fig8(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    dominated = all(
        row[3] <= row[2] + 1e-9 and row[5] <= row[4] + 1e-9 for row in r.rows
    )
    return [
        _check("fig8", "RangeEval-Opt dominates on every base", dominated,
               f"{len(r.rows)} bases"),
    ]


def _fig9(results: list[ExperimentResult]) -> list[ClaimCheck]:
    checks = []
    for r in results:
        note = next(n for n in r.notes if "matched-or-beaten" in n)
        covered, total = note.split()[0].split("/")
        checks.append(
            _check("fig9",
                   f"range encoding dominates equality ({r.title.split('(')[-1]}",
                   int(covered) >= 0.8 * int(total),
                   f"{covered}/{total} front points"))
    return checks


def _fig10(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    note = next(n for n in r.notes if "space-optimal family" in n)
    covered, total = note.split()[0].split("/")
    return [
        _check("fig10", "space-optimal family approximates the full Pareto front",
               int(covered) >= int(total) / 2, f"{covered}/{total} on front"),
    ]


def _fig11(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    knee_rows = [row for row in r.rows if row[4]]
    return [
        _check("fig11", "the knee is the 2-component index",
               len(knee_rows) == 1 and knee_rows[0][0] == 2),
        _check("fig11", "gradient definition matches Theorem 7.1",
               any("matches" in n for n in r.notes)),
    ]


def _table2(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    return [
        _check("table2", "TimeOptHeur optimal for >= 95% of constraints",
               all(row[2] >= 95.0 for row in r.rows),
               "; ".join(f"C={row[0]}: {row[2]:.1f}%" for row in r.rows)),
    ]


def _fig13(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    return [
        _check("fig13", "the constrained optimum lies within the [n, n') window",
               all(row[6] == "yes" for row in r.rows)),
    ]


def _fig14(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    sizes = [row[1] for row in r.rows]
    return [
        _check("fig14", "candidate set blows up at intermediate budgets",
               max(sizes) > 50, f"peak {max(sizes)}"),
        _check("fig14", "early exit collapses |I| to 1 at generous budgets",
               sizes[-1] == 1),
    ]


def _table3(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    by_name = {row[0]: row for row in r.rows}
    return [
        _check("table3", "quantity has attribute cardinality 50",
               by_name["data set 1"][4] == 50),
        _check("table3", "orderdate approaches 2406 distinct days",
               by_name["data set 2"][4] >= 2000,
               f"C={by_name['data set 2'][4]}"),
    ]


def _table4(results: list[ExperimentResult]) -> list[ClaimCheck]:
    checks = []
    for r in results:
        first, last = r.rows[0], r.rows[-1]
        checks.append(
            _check("table4", f"cCS compresses best ({r.title.split('—')[-1].strip()})",
                   first[3] <= first[2]))
        checks.append(
            _check("table4", "compression gain shrinks with decomposition",
                   last[2] > first[2],
                   f"cBS {first[2]:.1f}% -> {last[2]:.1f}%"))
    return checks


def _fig16(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    note = next(n for n in r.notes if "shape check" in n)
    slower = note.split("cCS slower than BS for ")[1].split(" ")[0]
    covered, total = slower.split("/")
    return [
        _check("fig16", "cCS slower than BS for most component counts",
               int(covered) >= int(total) - 2, f"{covered}/{total}"),
        _check("fig16", "BS and cBS comparable",
               "within 35% for" in note),
    ]


def _fig17(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    times = [row[2] for row in r.rows]
    monotone = all(times[i] >= times[i + 1] - 1e-12 for i in range(len(times) - 1))
    return [
        _check("fig17", "the tradeoff improves monotonically with buffering",
               monotone),
    ]


def _crossover(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    observed = float(r.notes[0].rsplit(" ", 1)[1])
    return [
        _check("crossover", "bitmaps beat RID lists above selectivity 1/32",
               abs(observed - 1 / 32) <= 0.01, f"observed {observed:.4f}"),
    ]


def _ablation_encodings(results: list[ExperimentResult]) -> list[ClaimCheck]:
    r = results[-1]  # the largest cardinality
    interval_single = next(
        row for row in r.rows if row[0] == "interval" and "," not in row[1]
    )
    range_single = next(
        row for row in r.rows if row[0] == "range" and "," not in row[1]
    )
    halved = interval_single[2] <= (range_single[2] + 1) // 2 + 1
    return [
        _check("ablation_encodings",
               "interval encoding stores ~half of range encoding",
               halved,
               f"{interval_single[2]} vs {range_single[2]} bitmaps"),
    ]


def _ablation_codecs(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    ratios = {(row[0], row[1]): row[3] for row in r.rows}
    return [
        _check("ablation_codecs", "deflate beats WAH on uniform data",
               ratios[("uniform", "zlib")] < ratios[("uniform", "wah")]),
    ]


def _ablation_buffering(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    tracks = all(abs(row[1] - row[3]) <= 0.25 for row in r.rows)
    return [
        _check("ablation_buffering", "pinned pool tracks the Eq. 5 model",
               tracks),
    ]


def _ablation_updates(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    rows = {(row[0], row[2]): row[4] for row in r.rows}
    return [
        _check("ablation_updates",
               "Value-List updates like a RID list; range encoding pays",
               rows[(1, "equality")] <= 2.5
               and rows[(1, "range")] > 3 * rows[(1, "equality")]),
    ]


def _ablation_query_skew(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    return [
        _check("ablation_query_skew",
               "the knee stays near-optimal under skewed constants",
               all(row[4] <= 10.0 for row in r.rows),
               f"worst degradation {max(row[4] for row in r.rows):.2f}%"),
    ]


def _ablation_compressed_ops(results: list[ExperimentResult]) -> list[ClaimCheck]:
    (r,) = results
    by_name = {row[0]: row for row in r.rows}
    sorted_row = by_name["sorted"]
    return [
        _check("ablation_compressed_ops",
               "compressed-domain AND beats decode+op on run-structured bitmaps",
               sorted_row[2] < sorted_row[3],
               f"{sorted_row[2]:.3f} vs {sorted_row[3]:.3f} ms"),
        _check("ablation_compressed_ops",
               "all strategies agree on the result",
               all(row[5] == "yes" for row in r.rows)),
    ]


_CHECKERS = {
    "table1": _table1,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "table2": _table2,
    "fig13": _fig13,
    "fig14": _fig14,
    "table3": _table3,
    "table4": _table4,
    "fig16": _fig16,
    "fig17": _fig17,
    "crossover": _crossover,
    "ablation_encodings": _ablation_encodings,
    "ablation_codecs": _ablation_codecs,
    "ablation_buffering": _ablation_buffering,
    "ablation_updates": _ablation_updates,
    "ablation_query_skew": _ablation_query_skew,
    "ablation_compressed_ops": _ablation_compressed_ops,
}


def verify_experiment(
    exp_id: str, results: list[ExperimentResult]
) -> list[ClaimCheck]:
    """Run the claim checks of one experiment over its results."""
    checker = _CHECKERS.get(exp_id)
    if checker is None:
        return []
    try:
        return checker(results)
    except Exception as exc:  # a malformed result is itself a failure
        return [_check(exp_id, "claim verification ran", False, repr(exc))]


#: Per-experiment parameter overrides needed for the claims to be
#: physically meaningful even in quick mode (see bench_fig16: the
#: decompression-dominance effect needs bitmaps large enough that
#: transfer + inflate outweigh per-file seeks).
_PARAM_OVERRIDES: dict[str, dict] = {
    "fig16": {"num_rows": 60_000},
}


def verify_all(quick: bool = True) -> list[ClaimCheck]:
    """Run every experiment and verify every claim."""
    import importlib

    checks: list[ClaimCheck] = []
    for exp_id in _CHECKERS:
        module = importlib.import_module(f"repro.experiments.{exp_id}")
        outcome = module.run(quick=quick, **_PARAM_OVERRIDES.get(exp_id, {}))
        if isinstance(outcome, ExperimentResult):
            outcome = [outcome]
        checks.extend(verify_experiment(exp_id, list(outcome)))
    return checks


def format_report(checks: list[ClaimCheck]) -> str:
    """Render the checks as a markdown report."""
    passed = sum(1 for c in checks if c.passed)
    lines = [
        "# Reproduction claim report",
        "",
        f"**{passed}/{len(checks)} claims reproduced.**",
        "",
        "| experiment | claim | verdict | detail |",
        "|---|---|---|---|",
    ]
    for c in checks:
        verdict = "PASS" if c.passed else "FAIL"
        lines.append(f"| {c.exp_id} | {c.claim} | {verdict} | {c.detail} |")
    return "\n".join(lines)
