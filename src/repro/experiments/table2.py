"""Table 2 — effectiveness of the heuristic space-constrained search.

For each attribute cardinality, the paper sweeps the space constraint
``M`` and compares Algorithm ``TimeOptHeur`` against the exact
``TimeOptAlg``: the fraction of constraints where the heuristic returns an
optimal index (>= 97% in the paper) and the maximum gap in expected
bitmap scans where it does not.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.optimize import (
    max_components,
    time_optimal_under_space,
    time_optimal_under_space_heuristic,
)
from repro.experiments.harness import ExperimentResult


def sweep(cardinality: int, step: int = 1) -> tuple[int, int, float]:
    """Compare heuristic vs exact for every feasible M (with stride ``step``).

    Returns (constraints evaluated, constraints where heuristic optimal,
    max scan-count gap).
    """
    lo = max_components(cardinality)
    optimal = 0
    total = 0
    max_gap = 0.0
    for m in range(lo, cardinality, step):
        exact = time_optimal_under_space(m, cardinality)
        heuristic = time_optimal_under_space_heuristic(m, cardinality)
        t_exact = costmodel.time_range(exact)
        t_heur = costmodel.time_range(heuristic)
        total += 1
        if t_heur <= t_exact + 1e-9:
            optimal += 1
        else:
            max_gap = max(max_gap, t_heur - t_exact)
    return total, optimal, max_gap


def run(
    quick: bool = True,
    cardinalities: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Reproduce Table 2.

    Quick mode sweeps small cardinalities exhaustively; the full run adds
    the paper-scale cardinalities with a strided sweep to keep the exact
    algorithm's enumeration affordable.
    """
    if cardinalities is not None:
        plan = [(c, 1) for c in cardinalities]
    elif quick:
        plan = [(25, 1), (50, 1), (100, 1)]
    else:
        plan = [(100, 1), (250, 1), (500, 2), (1000, 5)]

    result = ExperimentResult(
        "table2",
        "Effectiveness of TimeOptHeur vs exact TimeOptAlg",
        ["C", "constraints", "% optimal", "max scan gap"],
    )
    for cardinality, step in plan:
        total, optimal, max_gap = sweep(cardinality, step)
        result.add(
            cardinality,
            total,
            100.0 * optimal / total if total else 100.0,
            max_gap,
        )
    result.note(
        "paper reports the heuristic optimal for >= 97% of constraints with "
        "small maximum gaps in expected scans"
    )
    return result
