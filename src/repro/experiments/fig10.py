"""Figure 10 — space-optimal and time-optimal families vs all indexes.

For ``C = 1000`` the paper overlays three space-time graphs: every index,
the class of space-optimal indexes (one per component count, keeping the
most time-efficient among equally space-efficient designs), and the class
of time-optimal indexes.  The space-optimal family tracks the lower
envelope of the full cloud — the observation Section 7 builds its knee
characterization on.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.optimize import (
    DesignPoint,
    design_space,
    enumerate_bases,
    max_components,
    pareto_front,
    space_optimal_base,
    space_optimal_bitmaps,
    time_optimal_base,
)
from repro.experiments.harness import ExperimentResult


def best_space_optimal(cardinality: int, n: int) -> DesignPoint:
    """Most time-efficient among the equally space-efficient n-component designs."""
    target = space_optimal_bitmaps(cardinality, n)
    best: DesignPoint | None = None
    for base in enumerate_bases(
        cardinality, max_space=target, exact_n=n, tight_only=False
    ):
        if costmodel.space_range(base) != target:
            continue
        point = DesignPoint.of(base)
        if best is None or point.time < best.time:
            best = point
    if best is None:  # pragma: no cover - Theorem 6.1 guarantees existence
        best = DesignPoint.of(space_optimal_base(cardinality, n))
    return best


def space_optimal_family(cardinality: int) -> list[DesignPoint]:
    """The Figure 10/11 space-optimal series, one point per component count."""
    return [
        best_space_optimal(cardinality, n)
        for n in range(1, max_components(cardinality) + 1)
    ]


def time_optimal_family(cardinality: int) -> list[DesignPoint]:
    """The Figure 10 time-optimal series."""
    return [
        DesignPoint.of(time_optimal_base(cardinality, n))
        for n in range(1, max_components(cardinality) + 1)
    ]


def run(quick: bool = True, cardinality: int | None = None) -> ExperimentResult:
    """Reproduce Figure 10's three series."""
    c = cardinality if cardinality is not None else (100 if quick else 1000)
    cloud = design_space(c, tight_only=True)
    front = pareto_front(cloud)
    space_family = space_optimal_family(c)
    time_family = time_optimal_family(c)

    result = ExperimentResult(
        "fig10",
        f"Space-time tradeoff: all vs space-optimal vs time-optimal (C={c})",
        ["series", "n", "base", "space", "time"],
    )
    result.plot_axes = ("space (bitmaps)", "time (expected scans)")
    for point in space_family:
        result.add("space-optimal", point.base.n, str(point.base), point.space, point.time)
        result.add_point("space-optimal", point.space, point.time)
    for point in time_family:
        result.add("time-optimal", point.base.n, str(point.base), point.space, point.time)
        result.add_point("time-optimal", point.space, point.time)
    for point in front:
        result.add("pareto(all)", point.base.n, str(point.base), point.space, point.time)
        result.add_point("pareto(all)", point.space, point.time)

    front_coords = {(p.space, round(p.time, 9)) for p in front}
    on_front = sum(
        1
        for p in space_family
        if (p.space, round(p.time, 9)) in front_coords
    )
    result.note(f"{len(cloud)} tight designs in the full cloud")
    result.note(
        f"{on_front}/{len(space_family)} space-optimal family points lie on "
        f"the overall Pareto front (paper: the space-optimal graph "
        f"approximates the graph for all indexes)"
    )
    return result
