"""Terminal scatter plots for the figure experiments.

The paper's figures are space-time scatter plots and per-parameter
series.  :func:`ascii_scatter` renders those as text so
``python -m repro.experiments <fig> --plot`` can show the *shape* of each
reproduced figure without any plotting dependency.
"""

from __future__ import annotations

import math

#: Marker characters assigned to series in declaration order.
MARKERS = "*o+x#@%&"


def ascii_scatter(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    xlabel: str = "x",
    ylabel: str = "y",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render named point series on one character grid.

    Later series draw over earlier ones where cells collide.  Log axes
    require strictly positive coordinates.
    """
    named = [(name, points) for name, points in series.items() if points]
    if not named:
        return "(no data to plot)"
    if len(named) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")

    def tx(value: float) -> float:
        if logx:
            if value <= 0:
                raise ValueError("log x-axis needs positive values")
            return math.log10(value)
        return value

    def ty(value: float) -> float:
        if logy:
            if value <= 0:
                raise ValueError("log y-axis needs positive values")
            return math.log10(value)
        return value

    xs = [tx(x) for _, points in named for x, _ in points]
    ys = [ty(y) for _, points in named for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, points), marker in zip(named, MARKERS):
        for x, y in points:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    top_label = f"{y_hi:.4g}" if not logy else f"{10 ** y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}" if not logy else f"{10 ** y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(ylabel))
    lines.append(f"{ylabel.rjust(margin)} ")
    for r, row_chars in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(margin)
        elif r == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    left = f"{x_lo:.4g}" if not logx else f"{10 ** x_lo:.4g}"
    right = f"{x_hi:.4g}" if not logx else f"{10 ** x_hi:.4g}"
    axis = f"{left}{xlabel.center(width - len(left) - len(right))}{right}"
    lines.append(f"{' ' * margin}  {axis}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(named, MARKERS)
    )
    lines.append(f"{' ' * margin}  legend: {legend}")
    return "\n".join(lines)


#: A colorblind-safe categorical palette for the SVG output.
SVG_COLORS = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
)


def svg_scatter(
    series: dict[str, list[tuple[float, float]]],
    width: int = 640,
    height: int = 420,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
) -> str:
    """Render named point series as a standalone SVG document.

    Dependency-free companion to :func:`ascii_scatter`, used by the
    experiment CLI to save publication-style versions of the reproduced
    figures (``--plot --out DIR``).
    """
    named = [(name, points) for name, points in series.items() if points]
    if not named:
        raise ValueError("no data to plot")
    if len(named) > len(SVG_COLORS):
        raise ValueError(f"at most {len(SVG_COLORS)} series supported")

    margin = 56
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    xs = [x for _, pts in named for x, _ in pts]
    ys = [y for _, pts in named for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def px(x: float) -> float:
        return margin + (x - x_lo) / x_span * plot_w

    def py(y: float) -> float:
        return height - margin - (y - y_lo) / y_span * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#999"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="{margin / 2}" text-anchor="middle" '
            f'font-size="14">{_esc(title)}</text>'
        )
    parts.append(
        f'<text x="{width / 2}" y="{height - 12}" text-anchor="middle">'
        f"{_esc(xlabel)}</text>"
    )
    parts.append(
        f'<text x="16" y="{height / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {height / 2})">{_esc(ylabel)}</text>'
    )
    # Axis extent labels.
    parts.append(
        f'<text x="{margin}" y="{height - margin + 16}">{x_lo:.4g}</text>'
    )
    parts.append(
        f'<text x="{width - margin}" y="{height - margin + 16}" '
        f'text-anchor="end">{x_hi:.4g}</text>'
    )
    parts.append(
        f'<text x="{margin - 4}" y="{height - margin}" '
        f'text-anchor="end">{y_lo:.4g}</text>'
    )
    parts.append(
        f'<text x="{margin - 4}" y="{margin + 10}" '
        f'text-anchor="end">{y_hi:.4g}</text>'
    )
    for (name, points), color in zip(named, SVG_COLORS):
        for x, y in points:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3.5" '
                f'fill="{color}" fill-opacity="0.8"/>'
            )
    for i, ((name, _), color) in enumerate(zip(named, SVG_COLORS)):
        ly = margin + 14 + 16 * i
        parts.append(
            f'<circle cx="{width - margin - 110}" cy="{ly - 4}" r="4" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width - margin - 100}" y="{ly}">{_esc(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
