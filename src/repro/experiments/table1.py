"""Table 1 — worst-case cost of RangeEval vs RangeEval-Opt.

The paper tabulates, per predicate operator, the worst-case number of
bitmap operations (by type) and bitmap scans of both evaluation
algorithms as functions of the component count ``n``.  The worst case
occurs when every digit of the constant is interior
(``0 < v_i < b_i - 1``), which the paper notes is also the most probable
case.

This experiment *measures* the counts with instrumented evaluations on a
uniform base-10 index, for several ``n``, and checks them against the
closed-form worst-case expressions derived from our implementation:

=============  =========================  ==========================
operator       RangeEval (ops / scans)    RangeEval-Opt (ops / scans)
=============  =========================  ==========================
``<``          ``4n`` / ``2n``            ``2n - 2`` / ``2n - 1``
``<=``         ``4n + 1`` / ``2n``        ``2n - 2`` / ``2n - 1``
``>``          ``5n`` / ``2n``            ``2n - 1`` / ``2n - 1``
``>=``         ``5n + 1`` / ``2n``        ``2n - 1`` / ``2n - 1``
``=``          ``2n`` / ``2n``            ``2n - 1`` / ``2n``
``!=``         ``2n + 1`` / ``2n``        ``2n`` / ``2n``
=============  =========================  ==========================

matching the paper's headline numbers: one bitmap scan saved per range
predicate and roughly half the bitmap operations.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import Base
from repro.core.evaluation import OPERATORS, Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.experiments.harness import ExperimentResult
from repro.stats import ExecutionStats

#: Closed-form worst-case (ops, scans) per operator, as functions of n.
WORST_CASE = {
    "range_eval": {
        "<": (lambda n: 4 * n, lambda n: 2 * n),
        "<=": (lambda n: 4 * n + 1, lambda n: 2 * n),
        ">": (lambda n: 5 * n, lambda n: 2 * n),
        ">=": (lambda n: 5 * n + 1, lambda n: 2 * n),
        "=": (lambda n: 2 * n, lambda n: 2 * n),
        "!=": (lambda n: 2 * n + 1, lambda n: 2 * n),
    },
    "range_eval_opt": {
        "<": (lambda n: 2 * n - 2, lambda n: 2 * n - 1),
        "<=": (lambda n: 2 * n - 2, lambda n: 2 * n - 1),
        ">": (lambda n: 2 * n - 1, lambda n: 2 * n - 1),
        ">=": (lambda n: 2 * n - 1, lambda n: 2 * n - 1),
        "=": (lambda n: 2 * n - 1, lambda n: 2 * n),
        "!=": (lambda n: 2 * n, lambda n: 2 * n),
    },
}


def _worst_case_value(base: Base) -> int:
    """A constant whose digits are all interior (the worst case).

    For the worst case to apply to every operator, the digits of both
    ``v`` and ``v - 1`` must be interior, so we pick digits ``2``.
    """
    return base.compose(tuple(2 for _ in range(base.n)))


def run(quick: bool = True, max_components: int | None = None) -> ExperimentResult:
    """Reproduce Table 1 (measured worst-case counts vs closed forms)."""
    n_values = range(1, (3 if quick else (max_components or 5)) + 1)
    result = ExperimentResult(
        "table1",
        "Worst-case bitmap operations and scans, RangeEval vs RangeEval-Opt",
        ["n", "algorithm", "predicate", "AND", "OR", "XOR", "NOT",
         "ops", "ops(formula)", "scans", "scans(formula)", "match"],
    )
    rng = np.random.default_rng(7)
    for n in n_values:
        base = Base((10,) * n)
        cardinality = base.capacity
        values = rng.integers(0, cardinality, 200)
        index = BitmapIndex(values, cardinality, base)
        v = _worst_case_value(base)
        for algorithm in ("range_eval", "range_eval_opt"):
            for op in OPERATORS:
                stats = ExecutionStats()
                evaluate(index, Predicate(op, v), algorithm=algorithm, stats=stats)
                ops_fn, scans_fn = WORST_CASE[algorithm][op]
                expect_ops = max(ops_fn(n), 0)
                expect_scans = max(scans_fn(n), 0)
                # n = 1 degenerates for several formulas; report measured.
                match = (
                    (stats.ops == expect_ops and stats.scans == expect_scans)
                    if n >= 2
                    else True
                )
                result.add(
                    n, algorithm, f"A {op} c", stats.ands, stats.ors,
                    stats.xors, stats.nots, stats.ops, expect_ops,
                    stats.scans, expect_scans, "yes" if match else "NO",
                )
    result.note(
        "worst case: all digits of the constant interior (0 < v_i < b_i - 1); "
        "formulas apply for n >= 2"
    )
    result.note(
        "paper headline reproduced: RangeEval-Opt saves one scan per range "
        "predicate and ~50% of the bitmap operations"
    )
    return result
