"""Table 3 — characteristics of the experimental data sets.

The paper extracts two attributes from TPC-D: Lineitem.quantity (small
cardinality) and Order.orderdate (large cardinality).  Our synthetic
generator reproduces the value domains exactly (C = 50 and C = 2406);
relation cardinalities are configurable and default to a scaled-down
size — the substitution notes in DESIGN.md explain why that preserves the
Section 9 conclusions.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.workloads.tpcd import dataset1, dataset2


def run(
    quick: bool = True,
    rows1: int | None = None,
    rows2: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 3 from the generated data."""
    n1 = rows1 if rows1 is not None else (10_000 if quick else 60_000)
    n2 = rows2 if rows2 is not None else (5_000 if quick else 15_000)
    _, spec1 = dataset1(num_rows=n1)
    _, spec2 = dataset2(num_rows=n2)
    result = ExperimentResult(
        "table3",
        "Characteristics of the TPC-D-shaped experimental data",
        ["data set", "relation", "attribute", "relation cardinality",
         "attribute cardinality C"],
    )
    for spec in (spec1, spec2):
        result.add(
            spec.name,
            spec.relation,
            spec.attribute,
            spec.relation_cardinality,
            spec.attribute_cardinality,
        )
    result.note(
        "value domains match TPC-D exactly (quantity 1..50; orderdate over "
        "2406 days); relation cardinalities are scaled for laptop runs"
    )
    return result
