"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(quick: bool = True, **params)`` returning one
or more :class:`~repro.experiments.harness.ExperimentResult` objects whose
rows reproduce the corresponding artifact of the paper.  ``quick=True``
uses scaled-down parameters suitable for CI; ``quick=False`` runs the
paper-scale configuration.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig9 --full
    python -m repro.experiments all
"""

from repro.experiments.harness import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table", "EXPERIMENTS"]

#: Registry of experiment ids to module names (import lazily to keep the
#: package import cheap).
EXPERIMENTS = (
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "fig13",
    "fig14",
    "table3",
    "table4",
    "fig16",
    "fig17",
    "crossover",
    # Extensions beyond the paper (see DESIGN.md §7):
    "ablation_encodings",
    "ablation_codecs",
    "ablation_buffering",
    "ablation_updates",
    "ablation_query_skew",
    "ablation_compressed_ops",
)
