"""Ablation — all three encodings on the space-time plane.

Extends the paper's Figure 9 with the authors' 1999 interval encoding:
for each cardinality, the Pareto fronts of range, equality, and interval
encodings are computed over the tight decompositions.  Interval encoding
stores roughly half of range encoding's bitmaps at the cost of about one
extra scan per range predicate — it extends the tradeoff curve into the
low-space region the 1998 paper leaves to deep decompositions.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.encoding import EncodingScheme
from repro.core.optimize import DesignPoint, enumerate_bases, pareto_front
from repro.experiments.harness import ExperimentResult

ENCODINGS = (
    EncodingScheme.RANGE,
    EncodingScheme.EQUALITY,
    EncodingScheme.INTERVAL,
)


def run(
    quick: bool = True, cardinalities: tuple[int, ...] | None = None
) -> list[ExperimentResult]:
    """One result per cardinality, all three encoding fronts."""
    cs = cardinalities if cardinalities is not None else (
        (25, 100) if quick else (25, 100, 1000)
    )
    results = []
    for c in cs:
        result = ExperimentResult(
            "ablation_encodings",
            f"Range vs equality vs interval encoding (C={c})",
            ["encoding", "base", "space", "time"],
        )
        result.plot_axes = ("space (bitmaps)", "time (expected scans)")
        fronts = {}
        for encoding in ENCODINGS:
            points = [
                DesignPoint(
                    base,
                    costmodel.space(base, encoding),
                    costmodel.time(base, encoding),
                )
                for base in enumerate_bases(c, tight_only=True)
            ]
            fronts[encoding] = pareto_front(points)
            for point in fronts[encoding]:
                result.add(encoding.value, str(point.base), point.space, point.time)
                result.add_point(encoding.value, point.space, point.time)

        interval_single = next(
            p for p in fronts[EncodingScheme.INTERVAL] if p.base.n == 1
        )
        range_single = next(
            p for p in fronts[EncodingScheme.RANGE] if p.base.n == 1
        )
        result.note(
            f"single-component interval index: {interval_single.space} bitmaps "
            f"({interval_single.space / range_single.space:.0%} of range "
            f"encoding's {range_single.space}) at "
            f"{interval_single.time:.3f} vs {range_single.time:.3f} expected "
            f"scans"
        )
        results.append(result)
    return results
