"""Table 4 — compressibility of the three storage schemes.

For each data set the paper builds the n-component space-optimal index
for n = 1..6, stores it under every scheme, compresses with zlib, and
reports each compressed scheme's size as a percentage of the uncompressed
BS size.  Component-level storage compresses best: its rows are sorted
runs by construction (a range-encoded row is a 1-run followed by a 0-run),
whereas a BS bitmap's bit distribution follows the data.

An optional WAH column extends the study with the bitmap-specific codec.
"""

from __future__ import annotations

from repro.core.optimize import max_components, space_optimal_base
from repro.experiments.harness import ExperimentResult
from repro.query.executor import bitmap_index_for
from repro.relation.relation import Relation
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.tpcd import dataset1, dataset2


def compressibility_rows(
    relation: Relation,
    attribute: str,
    max_n: int = 6,
    include_wah: bool = False,
) -> list[list]:
    """(base, BS bytes, cBS%, cCS%, cIS% [, wBS%]) rows for one data set."""
    cardinality = relation.column(attribute).cardinality
    rows = []
    for n in range(1, min(max_n, max_components(cardinality)) + 1):
        base = space_optimal_base(cardinality, n)
        index = bitmap_index_for(relation, attribute, base=base)
        disk = SimulatedDisk()
        bs = write_index(disk, f"bs{n}", index, "BS")
        cbs = write_index(disk, f"cbs{n}", index, "cBS")
        ccs = write_index(disk, f"ccs{n}", index, "cCS")
        cis = write_index(disk, f"cis{n}", index, "cIS")
        bs_bytes = bs.stored_bytes
        row = [
            str(base),
            bs_bytes,
            100.0 * cbs.stored_bytes / bs_bytes,
            100.0 * ccs.stored_bytes / bs_bytes,
            100.0 * cis.stored_bytes / bs_bytes,
        ]
        if include_wah:
            wbs = write_index(disk, f"wbs{n}", index, "BS", codec="wah")
            row.append(100.0 * wbs.stored_bytes / bs_bytes)
        rows.append(row)
    return rows


def run(
    quick: bool = True,
    rows1: int | None = None,
    rows2: int | None = None,
    include_wah: bool = True,
) -> list[ExperimentResult]:
    """Reproduce Table 4 for both data sets."""
    n1 = rows1 if rows1 is not None else (10_000 if quick else 60_000)
    n2 = rows2 if rows2 is not None else (5_000 if quick else 15_000)
    datasets = [dataset1(num_rows=n1), dataset2(num_rows=n2)]
    headers = ["base", "BS bytes", "cBS %", "cCS %", "cIS %"]
    if include_wah:
        headers.append("wahBS %")
    results = []
    for relation, spec in datasets:
        result = ExperimentResult(
            "table4",
            f"Compressibility of storage schemes — {spec.name} "
            f"({spec.attribute}, C={spec.attribute_cardinality}, "
            f"N={spec.relation_cardinality})",
            headers,
        )
        for row in compressibility_rows(
            relation, spec.attribute, include_wah=include_wah
        ):
            result.add(*row)
        best = min(result.rows, key=lambda r: r[3])
        result.note(
            "paper: CS-indexes give the best compression for both data sets"
        )
        result.note(
            f"best cCS ratio here: {best[3]:.1f}% of BS at base {best[0]}"
        )
        results.append(result)
    return results
