"""Figure 16 — time, space, and tradeoff of BS / cBS / cCS indexes.

The paper evaluates the restricted query space ``{<=, =} x [0, C)`` on
data set 1's space-optimal indexes (n = 1..6) under three storage
configurations and reports:

(a) average predicate evaluation time vs component count — BS ≈ cBS,
    both far cheaper than cCS, whose cost is dominated by decompressing
    every component file on every query;
(b) index size vs component count — cCS smallest, and compression's
    benefit shrinking once the index is decomposed (n >= 2);
(c) the resulting space-time tradeoff — BS and cBS comparable, both
    better than cCS.

We measure the real decompression + bitmap-operation work in wall-clock
seconds and add modeled I/O seconds from exact byte/file accounting (see
DESIGN.md on the timing substitution).
"""

from __future__ import annotations

from repro.core.optimize import max_components, space_optimal_base
from repro.experiments.harness import ExperimentResult
from repro.experiments.measure import aggregate_costs
from repro.query.executor import bitmap_index_for
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.queries import restricted_query_space
from repro.workloads.tpcd import dataset1, dataset2

#: Storage configurations of the paper's Figure 16.
SCHEMES = ("BS", "cBS", "cCS")


def run(
    quick: bool = True,
    num_rows: int | None = None,
    max_n: int = 6,
    schemes: tuple[str, ...] = SCHEMES,
    dataset: int = 1,
    max_queries: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 16's series.

    ``dataset=1`` is the paper's figure; ``dataset=2`` produces the
    large-cardinality variant the paper omitted "due to space limitation"
    (its shape: the same orderings, amplified — the single-component
    index has 2400+ bitmaps, so cCS's compression advantage and
    decompression penalty are both extreme).  ``max_queries`` evaluates an
    evenly strided sample of the ``2C`` restricted queries — useful for
    data set 2, where the full space is ~4,800 queries.
    """
    n_rows = num_rows if num_rows is not None else (30_000 if quick else 60_000)
    if dataset == 1:
        relation, spec = dataset1(num_rows=n_rows)
    elif dataset == 2:
        relation, spec = dataset2(num_rows=n_rows)
    else:
        raise ValueError(f"dataset must be 1 or 2, got {dataset}")
    cardinality = spec.attribute_cardinality
    disk_model = DiskModel()

    result = ExperimentResult(
        "fig16",
        f"Storage schemes on {spec.name} (N={n_rows}, C={cardinality})",
        ["n", "scheme", "space bytes", "eval ms (1998 model)", "io ms",
         "inflate ms", "inflate %", "modern cpu ms", "avg bytes read"],
    )
    result.plot_axes = ("number of components", "avg eval ms (1998 model)")
    queries = list(restricted_query_space(cardinality))
    if max_queries is not None and len(queries) > max_queries:
        stride = len(queries) / max_queries
        queries = [queries[int(k * stride)] for k in range(max_queries)]
    for n in range(1, min(max_n, max_components(cardinality)) + 1):
        base = space_optimal_base(cardinality, n)
        index = bitmap_index_for(relation, spec.attribute, base=base)
        for scheme_name in schemes:
            disk = SimulatedDisk(disk_model)
            scheme = write_index(disk, "x", index, scheme_name)
            totals, count, cpu_seconds = aggregate_costs(
                scheme,
                queries,
                algorithm="range_eval_opt",
                reset_cache=True,
                timed=True,
            )
            io_seconds = disk_model.seconds(totals.files_opened, totals.bytes_read)
            inflated = totals.decompressed_bytes if scheme.codec.name != "none" else 0
            inflate_seconds = disk_model.decompress_seconds(inflated)
            era_total = io_seconds + inflate_seconds
            result.add_point(scheme_name, n, 1000.0 * era_total / count)
            result.add(
                n,
                scheme_name,
                scheme.stored_bytes,
                1000.0 * era_total / count,
                1000.0 * io_seconds / count,
                1000.0 * inflate_seconds / count,
                100.0 * inflate_seconds / era_total if era_total else 0.0,
                1000.0 * cpu_seconds / count,
                totals.bytes_read // count,
            )
    result.note(
        "eval ms (1998 model) = modeled I/O (10 ms/file + 10 MB/s) plus "
        "era-modeled zlib inflate (6 MB/s); 'modern cpu ms' is the measured "
        "wall time of today's decompression + bitmap operations"
    )
    _annotate_shape(result)
    return result


def _annotate_shape(result: ExperimentResult) -> None:
    """Check the paper's Figure 16(a) ordering on the era-modeled times."""
    by_key = {(row[0], row[1]): row[3] for row in result.rows}
    ns = sorted({row[0] for row in result.rows})
    ccs_slower = sum(
        1
        for n in ns
        if ("cCS" in {r[1] for r in result.rows if r[0] == n})
        and by_key.get((n, "cCS"), 0) > by_key.get((n, "BS"), 0)
    )
    comparable = sum(
        1
        for n in ns
        if abs(by_key.get((n, "cBS"), 0) - by_key.get((n, "BS"), 0))
        <= 0.35 * max(by_key.get((n, "BS"), 1e-9), 1e-9)
    )
    result.note(
        f"paper shape check: cCS slower than BS for {ccs_slower}/{len(ns)} "
        f"component counts; BS and cBS within 35% for {comparable}/{len(ns)}"
    )
