"""Figure 8 — RangeEval vs RangeEval-Opt across uniform bases.

The paper generates, for ``C = 100``, every uniform base-``b``
range-encoded index with ``b`` from 2 to ``C``, evaluates all ``6C``
selection queries with both algorithms, and plots the average number of
bitmap scans (Figure 8a) and bitmap operations (Figure 8b) against the
base number.  RangeEval-Opt dominates everywhere; the gap is widest for
multi-component (small-base) indexes.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import Base
from repro.core.index import BitmapIndex
from repro.experiments.harness import ExperimentResult
from repro.experiments.measure import average_scans_and_ops
from repro.workloads.queries import full_query_space


def run(
    quick: bool = True,
    cardinality: int | None = None,
    num_rows: int = 128,
    base_step: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 8's two series.

    ``quick`` mode uses ``C = 50`` and samples every third base; the full
    run is the paper's ``C = 100`` with every base.
    """
    c = cardinality if cardinality is not None else (50 if quick else 100)
    step = base_step if base_step is not None else (3 if quick else 1)
    rng = np.random.default_rng(42)
    values = rng.integers(0, c, num_rows)

    result = ExperimentResult(
        "fig8",
        f"Average scans and operations vs base number (C={c})",
        ["base", "n", "scans(RangeEval)", "scans(RangeEval-Opt)",
         "ops(RangeEval)", "ops(RangeEval-Opt)"],
    )
    result.plot_axes = ("base number", "avg per query")
    for b in range(2, c + 1, step):
        base = Base.uniform(b, c)
        index = BitmapIndex(values, c, base)
        scans_re, ops_re = average_scans_and_ops(
            index, full_query_space(c), "range_eval"
        )
        scans_opt, ops_opt = average_scans_and_ops(
            index, full_query_space(c), "range_eval_opt"
        )
        result.add(b, base.n, scans_re, scans_opt, ops_re, ops_opt)
        result.add_point("scans RangeEval", b, scans_re)
        result.add_point("scans RangeEval-Opt", b, scans_opt)
        result.add_point("ops RangeEval", b, ops_re)
        result.add_point("ops RangeEval-Opt", b, ops_opt)

    worse = sum(
        1
        for row in result.rows
        if row[3] > row[2] + 1e-9 or row[5] > row[4] + 1e-9
    )
    result.note(
        f"RangeEval-Opt is at least as cheap as RangeEval on "
        f"{len(result.rows) - worse}/{len(result.rows)} bases "
        f"(paper: dominates everywhere)"
    )
    return result
