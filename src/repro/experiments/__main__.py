"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments table2 --full
    python -m repro.experiments all --out results/
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import ExperimentResult, format_table, save_results


def run_experiment(exp_id: str, quick: bool) -> list[ExperimentResult]:
    """Import and run one experiment module, normalizing the return shape."""
    module = importlib.import_module(f"repro.experiments.{exp_id}")
    outcome = module.run(quick=quick)
    if isinstance(outcome, ExperimentResult):
        return [outcome]
    return list(outcome)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', 'list', or 'report' (claim audit)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of the quick configuration",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to also save formatted tables into",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII scatter of each result's plot series",
    )
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from repro.experiments.claims import format_report, verify_all

        checks = verify_all(quick=not args.full)
        report = format_report(checks)
        print(report)
        if args.out:
            import os

            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "claim_report.md")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
            print(f"\nsaved {path}")
        return 0 if all(c.passed for c in checks) else 1

    if args.experiment == "list":
        for exp_id in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{exp_id}")
            first_line = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:10s} {first_line}")
        return 0

    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; try 'list'", file=sys.stderr)
            return 2

    all_results: list[ExperimentResult] = []
    for exp_id in targets:
        start = time.perf_counter()
        results = run_experiment(exp_id, quick=not args.full)
        elapsed = time.perf_counter() - start
        for result in results:
            print(format_table(result))
            print()
            if args.plot and result.series:
                from repro.experiments.plotting import ascii_scatter

                xlabel, ylabel = result.plot_axes
                print(
                    ascii_scatter(result.series, xlabel=xlabel, ylabel=ylabel)
                )
                print()
                if args.out:
                    import os

                    from repro.experiments.plotting import svg_scatter

                    os.makedirs(args.out, exist_ok=True)
                    svg_path = os.path.join(args.out, f"{result.exp_id}.svg")
                    with open(svg_path, "w", encoding="utf-8") as handle:
                        handle.write(
                            svg_scatter(
                                result.series,
                                xlabel=xlabel,
                                ylabel=ylabel,
                                title=result.title,
                            )
                        )
                    print(f"saved {svg_path}\n")
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        all_results.extend(results)

    if args.out:
        for path in save_results(all_results, args.out):
            print(f"saved {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
