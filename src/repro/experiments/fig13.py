"""Figure 13 — bounds on the component count of the constrained optimum.

Algorithm ``TimeOptAlg`` narrows its search to component counts
``n <= k < n'``: ``n`` is the smallest count whose *space-optimal* index
fits the budget (no fewer components can fit at all, by Theorem 6.1(2)),
and ``n'`` the smallest count whose *time-optimal* index fits (no more
components can help, by Theorem 6.1(4)).  The paper illustrates the two
bounding cases schematically; this experiment computes the actual window
for a sweep of budgets and verifies both bounding arguments hold.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.optimize import (
    max_components,
    space_optimal_bitmaps,
    time_optimal_base,
    time_optimal_under_space,
)
from repro.experiments.harness import ExperimentResult


def _window(budget: int, cardinality: int) -> tuple[int, int]:
    """The (n, n') bounds of TimeOptAlg's search for one budget."""
    n0 = next(
        n
        for n in range(1, max_components(cardinality) + 1)
        if space_optimal_bitmaps(cardinality, n) <= budget
    )
    n1 = next(
        n
        for n in range(n0, max_components(cardinality) + 1)
        if costmodel.space_range(time_optimal_base(cardinality, n)) <= budget
    )
    return n0, n1


def run(
    quick: bool = True,
    cardinality: int | None = None,
    budgets: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """The search window per budget, with the optimum's position in it."""
    c = cardinality if cardinality is not None else (50 if quick else 100)
    if budgets is None:
        lo = max_components(c)
        budgets = tuple(
            sorted({lo, lo + 2, lo + 5, (lo + c) // 4, (lo + c) // 2, c - 1})
        )
    result = ExperimentResult(
        "fig13",
        f"TimeOptAlg search-window bounds (C={c})",
        ["M", "n (lower bound)", "n' (upper bound)", "window size",
         "optimum base", "optimum n", "in window"],
    )
    violations = 0
    for budget in budgets:
        n0, n1 = _window(budget, c)
        optimum = time_optimal_under_space(budget, c)
        in_window = n0 <= optimum.n <= n1
        if not in_window:
            violations += 1
        result.add(
            budget, n0, n1, max(n1 - n0, 0) + 1, str(optimum), optimum.n,
            "yes" if in_window else "NO",
        )
    result.note(
        f"the constrained optimum fell inside [n, n'] for "
        f"{len(budgets) - violations}/{len(budgets)} budgets (the paper's "
        f"Theorem 6.1 bounding argument)"
    )
    return result
