"""Figure 17 — space-time tradeoff under optimal bitmap buffering.

With ``m`` bitmaps of buffer memory and the Theorem 10.1 optimal
assignment, every index's expected scan count drops (Eq. 5); the paper
plots the resulting tradeoff graphs for several ``m`` and observes the
tradeoff improving with ``m``, with the time-optimal index following
Theorem 10.2's ``m``-component characterization.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.buffering import buffered_time, time_optimal_base_buffered
from repro.core.optimize import (
    DesignPoint,
    enumerate_bases,
    find_knee,
    pareto_front,
)
from repro.experiments.harness import ExperimentResult

#: Buffer sizes of the reproduced figure.
DEFAULT_BUFFERS = (0, 1, 2, 4, 8, 16)


def buffered_front(cardinality: int, m: int) -> list[DesignPoint]:
    """Pareto front of (space, buffered time) over all tight designs."""
    points = [
        DesignPoint(
            base, costmodel.space_range(base), buffered_time(base, m)
        )
        for base in enumerate_bases(cardinality, tight_only=True)
    ]
    return pareto_front(points)


def run(
    quick: bool = True,
    cardinality: int | None = None,
    buffers: tuple[int, ...] = DEFAULT_BUFFERS,
) -> ExperimentResult:
    """Reproduce Figure 17: per-m Pareto summaries."""
    c = cardinality if cardinality is not None else (100 if quick else 1000)
    result = ExperimentResult(
        "fig17",
        f"Space-time tradeoff under optimal buffering (C={c})",
        ["m", "time-optimal base", "min time", "knee base", "knee space",
         "knee time", "pareto size"],
    )
    previous_best = float("inf")
    monotone = True
    result.plot_axes = ("space (bitmaps)", "time (expected scans)")
    for m in buffers:
        front = buffered_front(c, m)
        for p in front:
            result.add_point(f"m={m}", p.space, p.time)
        best_time = min(p.time for p in front)
        knee = find_knee(front) if len(front) >= 3 else front[0]
        theorem_base = time_optimal_base_buffered(c, m)
        result.add(
            m,
            str(theorem_base),
            best_time,
            str(knee.base),
            knee.space,
            knee.time,
            len(front),
        )
        if best_time > previous_best + 1e-12:
            monotone = False
        previous_best = best_time
    result.note(
        f"minimum achievable time is {'monotonically non-increasing' if monotone else 'NOT monotone'} "
        f"in m (paper: the tradeoff improves as m increases)"
    )
    result.note(
        "time-optimal base column is Theorem 10.2's m-component "
        "characterization <2, ..., 2, ceil(C/2^(m-1))>"
    )
    return result
