"""Figure 14 — size of TimeOptAlg's candidate set vs the space constraint.

The exact algorithm's cost is driven by the candidate set
``I = {k-component indexes, n <= k < n', with coverage and space <= M}``;
the paper plots ``|I|`` against ``M`` for ``C = 1000`` to motivate the
heuristic.  The shape is a hump: tiny for very small budgets (few bases
fit), collapsing to 1 once the early exit triggers (the n-component
time-optimal index fits), and large in between.
"""

from __future__ import annotations

from repro.core.optimize import candidate_set_size, max_components
from repro.experiments.harness import ExperimentResult


def run(
    quick: bool = True,
    cardinality: int | None = None,
    budgets: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Reproduce Figure 14: ``|I|`` as a function of ``M``."""
    c = cardinality if cardinality is not None else (100 if quick else 1000)
    if budgets is None:
        lo = max_components(c)
        hi = c - 1
        count = 12 if quick else 24
        span = max(hi - lo, 1)
        budgets = tuple(
            sorted({lo + (span * i) // (count - 1) for i in range(count)})
        )
    result = ExperimentResult(
        "fig14",
        f"Candidate-set size |I| vs space constraint M (C={c})",
        ["M", "|I|"],
    )
    result.plot_axes = ("space constraint M", "|I|")
    for m in budgets:
        size = candidate_set_size(m, c)
        result.add(m, size)
        result.add_point("|I|", m, size)
    peak = max(result.rows, key=lambda row: row[1])
    result.note(
        f"peak |I| = {peak[1]} at M = {peak[0]}; |I| = 1 wherever the "
        f"early exit (time-optimal index fits) triggers"
    )
    return result
