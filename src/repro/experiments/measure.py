"""Instrumented measurement helpers shared by the experiments."""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapSource
from repro.stats import ExecutionStats


def aggregate_costs(
    source: BitmapSource,
    queries: Iterable[Predicate],
    algorithm: str = "auto",
    reset_cache: bool = False,
    timed: bool = False,
) -> tuple[ExecutionStats, int, float]:
    """Evaluate every query, returning (total stats, query count, seconds).

    ``reset_cache=True`` clears the source's per-query decode cache between
    queries (required for the CS/IS storage schemes).  ``timed=True``
    additionally records wall-clock evaluation time.
    """
    total = ExecutionStats()
    count = 0
    elapsed = 0.0
    for predicate in queries:
        stats = ExecutionStats()
        if timed:
            start = time.perf_counter()
            evaluate(source, predicate, algorithm=algorithm, stats=stats)
            elapsed += time.perf_counter() - start
        else:
            evaluate(source, predicate, algorithm=algorithm, stats=stats)
        total.merge(stats)
        count += 1
        if reset_cache:
            reset = getattr(source, "reset_cache", None)
            if callable(reset):
                reset()
    return total, count, elapsed


def average_scans_and_ops(
    source: BitmapSource,
    queries: Iterable[Predicate],
    algorithm: str = "auto",
) -> tuple[float, float]:
    """Average (scans, bitmap operations) per query over ``queries``."""
    total, count, _ = aggregate_costs(source, queries, algorithm)
    if count == 0:
        return 0.0, 0.0
    return total.scans / count, total.ops / count
