"""Section 1 cost analysis — the bitmap vs RID-list crossover.

With 4-byte RIDs and one bitmap scanned per predicate, evaluating a
predicate through a bitmap index reads ``N / 8`` bytes while the RID-list
index reads ``4 n`` bytes (``n`` = result cardinality), so bitmaps win for
selectivities above ``1 / 32`` — the paper's ``N <= 32 n`` threshold.

This experiment measures both access paths on a uniform column, sweeping
selectivity through ``A <= v`` predicates, and locates the empirical
crossover.
"""

from __future__ import annotations


from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.experiments.harness import ExperimentResult
from repro.query.plans import ridlist_crossover_selectivity
from repro.relation.rid_index import RIDListIndex
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.generators import uniform_values


def _sweep_values(cardinality: int) -> list[int]:
    """Predicate constants: dense near the crossover region, sparse after.

    With uniform values, ``A <= v`` selects ``(v+1)/C`` of the rows; the
    crossover sits near ``C/32``, so the sweep is value-by-value up to
    ``C/10`` and strided beyond.
    """
    dense = list(range(0, max(2, cardinality // 10)))
    sparse = list(range(max(2, cardinality // 10), cardinality,
                        max(1, cardinality // 20)))
    return dense + sparse


def run(
    quick: bool = True,
    num_rows: int | None = None,
    cardinality: int = 1000,
) -> ExperimentResult:
    """Reproduce the introduction's crossover analysis."""
    n_rows = num_rows if num_rows is not None else (20_000 if quick else 100_000)
    values = uniform_values(n_rows, cardinality, seed=5)
    index = BitmapIndex(values, cardinality)  # single-component Bit-Sliced
    disk = SimulatedDisk()
    stored = write_index(disk, "x", index, "BS")
    rid = RIDListIndex(values)

    result = ExperimentResult(
        "crossover",
        f"Bitmap vs RID-list bytes read (N={n_rows}, C={cardinality})",
        ["selectivity", "result rows", "bitmap bytes", "rid-list bytes",
         "winner"],
    )
    result.plot_axes = ("selectivity", "bytes read")
    crossover_seen = None
    sweep = _sweep_values(cardinality)
    display = set(sweep[:: max(1, len(sweep) // 20)])
    previous_winner = None
    for v in sweep:
        predicate = Predicate("<=", v)
        stats = ExecutionStats()
        bitmap_result = evaluate(stored, predicate, stats=stats)
        stored.reset_cache()
        matched = bitmap_result.count()
        rid_bytes = rid.bytes_for("<=", v)
        winner = "bitmap" if stats.bytes_read <= rid_bytes else "rid-list"
        if winner == "bitmap" and crossover_seen is None:
            crossover_seen = matched / n_rows
        if v in display or winner != previous_winner:
            result.add(
                round(matched / n_rows, 4), matched, stats.bytes_read,
                rid_bytes, winner,
            )
            result.add_point("bitmap", matched / n_rows, stats.bytes_read)
            result.add_point("rid-list", matched / n_rows, rid_bytes)
        previous_winner = winner
    theory = ridlist_crossover_selectivity()
    result.note(
        f"theoretical crossover at selectivity {theory:.4f} (= 1/32) per "
        f"scanned bitmap; first bitmap win observed at "
        f"{crossover_seen if crossover_seen is not None else 'n/a'}"
    )
    result.note(
        "bitmap bytes include the fixed per-file header of the storage "
        "format, so the empirical crossover sits marginally above 1/32"
    )
    return result
