"""Ablation — maintenance cost across the design space.

The paper restricts itself to read-mostly environments because bitmap
maintenance is expensive, and notes that multi-index designs "might be
offset by the high update cost in OLTP applications".  This ablation
quantifies that: the average number of bitmaps touched by one random
value update, for each encoding, across the space-optimal family — next
to the RID-list baseline, which touches exactly two lists.

Expected shape: the Value-List (1-component equality) index touches 2
bitmaps like a RID list; range encoding pays ~b/3 touches per component
(every bitmap between the old and the new digit); decomposition shrinks
update cost along with space.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.core.optimize import max_components, space_optimal_base
from repro.experiments.harness import ExperimentResult
from repro.workloads.generators import uniform_values

ENCODINGS = (
    EncodingScheme.EQUALITY,
    EncodingScheme.RANGE,
    EncodingScheme.INTERVAL,
)


def average_update_touches(
    index: BitmapIndex, updates: int, seed: int = 0
) -> float:
    """Mean bitmaps touched over random (rid, new value) updates."""
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(updates):
        rid = int(rng.integers(0, index.nbits))
        value = int(rng.integers(0, index.cardinality))
        total += index.update(rid, value)
    return total / updates


def run(
    quick: bool = True,
    cardinality: int | None = None,
    num_rows: int = 400,
    updates: int | None = None,
) -> ExperimentResult:
    """Average bitmaps touched per update, per encoding and base."""
    c = cardinality if cardinality is not None else (50 if quick else 100)
    n_updates = updates if updates is not None else (300 if quick else 2000)
    values = uniform_values(num_rows, c, seed=21)

    result = ExperimentResult(
        "ablation_updates",
        f"Bitmaps touched per value update (C={c}; RID-list baseline "
        f"touches 2 lists)",
        ["n", "base", "encoding", "stored bitmaps", "avg touches/update"],
    )
    for n in range(1, min(4, max_components(c)) + 1):
        base = space_optimal_base(c, n)
        for encoding in ENCODINGS:
            index = BitmapIndex(values.copy(), c, base, encoding)
            touches = average_update_touches(index, n_updates)
            result.add(
                n, str(base), encoding.value, index.num_bitmaps, touches
            )
    equality_single = next(
        row for row in result.rows if row[0] == 1 and row[2] == "equality"
    )
    result.note(
        f"the Value-List index touches {equality_single[4]:.2f} bitmaps per "
        f"update on average — the same order as the RID-list baseline's 2 "
        f"list edits; range encoding pays for its query speed at update time"
    )
    return result
