"""Figure 11 — the knee of the space-optimal tradeoff graph.

The paper labels each point of the space-optimal tradeoff graph with its
component count and observes that the knee — by the Section 7 gradient
definition — always falls on the 2-component index, motivating the
Theorem 7.1 characterization.  This experiment reproduces the labelled
series, computes the definition-based knee, and checks it coincides with
the closed-form knee index.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.optimize import find_knee, knee_base
from repro.experiments.fig10 import space_optimal_family
from repro.experiments.harness import ExperimentResult


def run(quick: bool = True, cardinality: int | None = None) -> ExperimentResult:
    """Reproduce Figure 11 and validate Theorem 7.1 against the definition."""
    c = cardinality if cardinality is not None else (100 if quick else 1000)
    family = space_optimal_family(c)
    knee_by_definition = find_knee(family)
    knee_by_theorem = knee_base(c)

    result = ExperimentResult(
        "fig11",
        f"Space-optimal tradeoff labelled by component count (C={c})",
        ["n", "base", "space", "time", "knee"],
    )
    result.plot_axes = ("space (bitmaps)", "time (expected scans)")
    for point in family:
        marker = ""
        if point is knee_by_definition:
            marker = "knee (definition)"
        result.add(point.base.n, str(point.base), point.space, point.time, marker)
        result.add_point("knee" if marker else "space-optimal", point.space, point.time)

    theorem_time = costmodel.time_range(knee_by_theorem)
    theorem_space = costmodel.space_range(knee_by_theorem)
    result.note(
        f"Theorem 7.1 knee: {knee_by_theorem} "
        f"(space={theorem_space}, time={theorem_time:.4f})"
    )
    same_point = (
        knee_by_definition.space == theorem_space
        and abs(knee_by_definition.time - theorem_time) < 1e-9
    )
    result.note(
        "definition-based knee has n="
        f"{knee_by_definition.base.n} and "
        f"{'matches' if same_point else 'DIFFERS FROM'} the Theorem 7.1 "
        f"characterization (paper: they match exactly in all compared cases)"
    )
    return result
