"""Ablation — compressed-domain algebra vs decompress-then-operate.

The paper's Section 9 pays full decompression on every compressed-bitmap
access (zlib can do nothing else).  Word-aligned codecs changed that
economics: AND/OR run directly on the WAH runs.  This ablation measures,
per value distribution, the wall time of

- ``compressed``: ``wah_and`` on the compressed payloads;
- ``decode+op``: WAH-decode both operands, then one uncompressed AND;
- ``uncompressed``: the plain in-memory AND (the lower bound).

Expected shape: on run-structured bitmaps the compressed-domain AND works
on a handful of runs and beats full decode by a wide margin; on random
bitmaps every group is a literal, so staying compressed saves nothing
(in this pure-Python substrate it is slower than numpy's word AND —
noted, as with the codec ablation, as an implementation bias).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.experiments.harness import ExperimentResult
from repro.workloads.generators import clustered_values, uniform_values


def _time(func, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        func()
    return 1000.0 * (time.perf_counter() - start) / repeats


def run(
    quick: bool = True,
    num_rows: int | None = None,
    repeats: int | None = None,
) -> ExperimentResult:
    """Per-distribution timings of the three AND strategies."""
    n_rows = num_rows if num_rows is not None else (100_000 if quick else 500_000)
    n_repeats = repeats if repeats is not None else (20 if quick else 50)

    distributions = {
        "uniform": uniform_values(n_rows, 100, seed=1),
        "clustered": clustered_values(n_rows, 100, run_length=128, seed=1),
        "sorted": np.sort(uniform_values(n_rows, 100, seed=1)),
    }

    result = ExperimentResult(
        "ablation_compressed_ops",
        f"Compressed-domain AND vs decode+AND (N={n_rows})",
        ["distribution", "wah words", "compressed ms", "decode+op ms",
         "uncompressed ms", "result count ok"],
    )
    for name, values in distributions.items():
        a = BitVector.from_bools(values <= 40)
        b = BitVector.from_bools(values <= 70)
        ca = WahBitVector.from_bitvector(a)
        cb = WahBitVector.from_bitvector(b)

        compressed_ms = _time(lambda: ca & cb, n_repeats)
        decode_ms = _time(
            lambda: ca.to_bitvector() & cb.to_bitvector(), n_repeats
        )
        plain_ms = _time(lambda: a & b, n_repeats)
        correct = (ca & cb).count() == (a & b).count()
        result.add(
            name, ca.num_words, compressed_ms, decode_ms, plain_ms,
            "yes" if correct else "NO",
        )

    by_name = {row[0]: row for row in result.rows}
    result.note(
        f"run-structured bitmaps: compressed AND touches "
        f"{by_name['sorted'][1]} words instead of "
        f"{(n_rows + 30) // 31} and runs "
        f"{by_name['sorted'][3] / max(by_name['sorted'][2], 1e-9):.0f}x "
        f"faster than decode+op"
    )
    result.note(
        "uniform bitmaps are all literals: staying compressed saves "
        "nothing there (and this pure-Python run loop is slower than "
        "numpy's uncompressed AND — an implementation bias, as with the "
        "codec ablation)"
    )
    return result
