"""Figure 9 — space-time tradeoff: range vs equality encoding.

For each attribute cardinality the paper plots every index's
(space, time) under both encodings; range encoding dominates equality
encoding almost everywhere (only for small regions of very low space do
they touch), which motivates restricting the rest of the paper to
range-encoded indexes.

This experiment enumerates all tight decompositions, computes the
Theorem 5.1 metrics for both encodings, reports the two Pareto fronts,
and quantifies dominance: the fraction of the equality front that is
dominated by some range-encoded design.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.encoding import EncodingScheme
from repro.core.optimize import DesignPoint, enumerate_bases, pareto_front
from repro.experiments.harness import ExperimentResult


def _points(cardinality: int, encoding: EncodingScheme) -> list[DesignPoint]:
    return [
        DesignPoint(
            base,
            costmodel.space(base, encoding),
            costmodel.time(base, encoding),
        )
        for base in enumerate_bases(cardinality, tight_only=True)
    ]


def run(
    quick: bool = True, cardinalities: tuple[int, ...] | None = None
) -> list[ExperimentResult]:
    """Reproduce Figure 9(a-c): one result per cardinality."""
    cs = cardinalities if cardinalities is not None else (
        (25, 100) if quick else (25, 100, 1000)
    )
    results = []
    for c in cs:
        range_points = _points(c, EncodingScheme.RANGE)
        equality_points = _points(c, EncodingScheme.EQUALITY)
        range_front = pareto_front(range_points)
        equality_front = pareto_front(equality_points)

        result = ExperimentResult(
            "fig9",
            f"Space-time tradeoff, range vs equality encoding (C={c})",
            ["encoding", "base", "space", "time"],
        )
        result.plot_axes = ("space (bitmaps)", "time (expected scans)")
        for point in range_front:
            result.add("range", str(point.base), point.space, point.time)
            result.add_point("range", point.space, point.time)
        for point in equality_front:
            result.add("equality", str(point.base), point.space, point.time)
            result.add_point("equality", point.space, point.time)

        dominated = 0
        for eq in equality_front:
            if any(
                r.space <= eq.space and r.time <= eq.time + 1e-12
                for r in range_front
            ):
                dominated += 1
        result.note(
            f"{len(range_points)} tight designs enumerated per encoding; "
            f"Pareto sizes: range={len(range_front)}, "
            f"equality={len(equality_front)}"
        )
        result.note(
            f"{dominated}/{len(equality_front)} equality-front designs are "
            f"matched-or-beaten by a range-encoded design (paper: range "
            f"encoding offers the better tradeoff in most cases)"
        )
        results.append(result)
    return results
