"""Ablation — the paper's pinned-optimal buffering vs LRU.

Section 10 assumes the buffer pins a fixed, optimally chosen set of
bitmaps (Theorem 10.1).  A real system would more likely run LRU.  This
ablation measures both policies' average scan counts on the same index
and uniform query workload, next to the Eq. 5 prediction.  Under a
uniform reference pattern there is no recency signal for LRU to exploit,
so the pinned-optimal policy matches or beats it — which is exactly why
the paper can reason analytically about assignments.
"""

from __future__ import annotations

from repro.core import costmodel
from repro.core.buffering import optimal_assignment
from repro.core.evaluation import evaluate
from repro.core.index import BitmapIndex
from repro.core.optimize import knee_base
from repro.experiments.harness import ExperimentResult
from repro.stats import ExecutionStats
from repro.storage.buffer import BufferPool
from repro.workloads.generators import uniform_values
from repro.workloads.queries import full_query_space


def _average_scans(pool: BufferPool, cardinality: int, repeats: int) -> float:
    total = 0
    count = 0
    for _ in range(repeats):
        for predicate in full_query_space(cardinality):
            stats = ExecutionStats()
            evaluate(pool, predicate, stats=stats)
            total += stats.scans
            count += 1
    return total / count


def run(
    quick: bool = True,
    cardinality: int | None = None,
    buffers: tuple[int, ...] = (0, 2, 4, 8, 16),
    repeats: int = 2,
) -> ExperimentResult:
    """Average scans per query: pinned-optimal vs LRU vs the Eq. 5 model."""
    c = cardinality if cardinality is not None else (50 if quick else 100)
    base = knee_base(c)
    values = uniform_values(400, c, seed=13)
    index = BitmapIndex(values, c, base)

    result = ExperimentResult(
        "ablation_buffering",
        f"Pinned-optimal vs LRU buffering (C={c}, base {base})",
        ["m", "pinned scans", "lru scans", "Eq.5 model", "pinned <= lru"],
    )
    for m in buffers:
        pinned = BufferPool(index, capacity=m)
        lru = BufferPool(index, capacity=m, policy="lru")
        pinned_scans = _average_scans(pinned, c, repeats)
        lru_scans = _average_scans(lru, c, repeats)
        model = costmodel.time_range_buffered(
            base, optimal_assignment(base, m).counts
        )
        result.add(
            m, pinned_scans, lru_scans, model,
            "yes" if pinned_scans <= lru_scans + 0.05 else "no",
        )
    result.note(
        "uniform queries have no recency locality, so the analytically "
        "chosen pinned set is the right policy — the paper's Section 10 "
        "model assumption holds"
    )
    return result
