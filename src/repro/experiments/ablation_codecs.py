"""Ablation — zlib (the paper's codec) vs WAH across data distributions.

The paper compresses bitmap files with zlib; the later bitmap literature
settled on word-aligned run-length codecs (WAH and descendants).  This
ablation stores the knee index of each synthetic column under BS with
both codecs and compares compressed size and decode cost.  The expected
shape: on clustered (run-structured) columns WAH competes with or beats
deflate at a fraction of the decode cost; on uniform random columns
deflate wins on ratio because WAH's literals carry a 1/32 overhead and
random bitmaps have few long runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bitmaps.compression import get_codec
from repro.core.index import BitmapIndex
from repro.core.optimize import knee_base
from repro.experiments.harness import ExperimentResult
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.generators import (
    clustered_values,
    uniform_values,
    zipf_values,
)

CODECS = ("zlib", "wah")


def _decode_seconds(scheme, disk: SimulatedDisk) -> float:
    """Wall time to decode every bitmap file of a scheme once."""
    codec = get_codec(scheme.codec.name)
    start = time.perf_counter()
    from repro.storage.schemes import _unframe  # file framing helper

    for path in scheme.data_files():
        payload, _, _, _ = _unframe(disk.read(path), path)
        codec.decode(payload)
    return time.perf_counter() - start


def run(
    quick: bool = True,
    num_rows: int | None = None,
    cardinality: int = 100,
) -> ExperimentResult:
    """Compressed size and decode time per codec per distribution."""
    n_rows = num_rows if num_rows is not None else (20_000 if quick else 100_000)
    distributions = {
        "uniform": uniform_values(n_rows, cardinality, seed=1),
        "zipf(1.2)": zipf_values(n_rows, cardinality, skew=1.2, seed=1),
        "clustered": clustered_values(n_rows, cardinality, run_length=64, seed=1),
        "sorted": np.sort(uniform_values(n_rows, cardinality, seed=1)),
    }
    base = knee_base(cardinality)

    result = ExperimentResult(
        "ablation_codecs",
        f"zlib vs WAH bitmap compression (N={n_rows}, C={cardinality}, "
        f"knee base {base})",
        ["distribution", "codec", "bytes", "% of raw", "decode ms"],
    )
    for name, values in distributions.items():
        index = BitmapIndex(values, cardinality, base)
        disk = SimulatedDisk()
        raw = write_index(disk, f"{name}/raw", index, "BS").stored_bytes
        for codec in CODECS:
            scheme = write_index(disk, f"{name}/{codec}", index, "BS", codec=codec)
            decode_ms = 1000.0 * _decode_seconds(scheme, disk)
            result.add(
                name,
                codec,
                scheme.stored_bytes,
                100.0 * scheme.stored_bytes / raw,
                decode_ms,
            )
    result.note(
        "ratio shape: WAH approaches deflate only on run-structured "
        "columns (clustered/sorted) and pays its 1/32 literal overhead on "
        "random ones — deflate wins on ratio, which is why the paper's "
        "zlib choice is sound for its uniform TPC-D columns"
    )
    result.note(
        "decode times compare a pure-Python WAH against C-implemented "
        "zlib, so they understate WAH; in C implementations WAH decodes "
        "an order of magnitude faster (it can even operate on compressed "
        "form directly)"
    )
    return result
