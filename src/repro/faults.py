"""Deterministic fault injection and cooperative deadlines.

A serving system's failure handling is only trustworthy if every failure
class can be reproduced on demand.  This module is the harness: a
:class:`FaultPlan` holds a list of :class:`FaultSpec` injectors, each
armed at one named *seam* of the query path and firing on the Nth call
through that seam.  Determinism is the design constraint — given the
same plan and the same call sequence, the same faults fire at the same
places, so a chaos test can assert bit-identical recovery against the
no-fault run.

Seams and the fault kinds they accept:

================  ====================================================
seam              kinds
================  ====================================================
``disk.read``     ``error`` (read raises), ``torn`` (short read),
                  ``corrupt`` (one byte flipped before verification)
``disk.write``    ``error`` (write fails after the temp file is
                  written, before the atomic rename — a simulated
                  mid-write crash)
``shm.attach``    ``error`` (worker raises
                  :class:`~repro.errors.ShmAttachError`), ``corrupt``
                  (one published payload byte flipped, caught by the
                  manifest checksum)
``worker.execute``  ``crash`` (worker process exits hard, breaking the
                  pool), ``error`` (worker raises
                  :class:`~repro.errors.InjectedFaultError`)
``cache.get``     ``miss`` (lookup is forced to miss and refetch)
================  ====================================================

Injection *sites* consult the plan by calling :meth:`FaultPlan.check`
with their seam name and a call identifier (a file path, a shard label,
a cache key); a returned spec means "fire this fault now".  Sites that
never see a plan pay one ``is None`` test — the no-fault hot path is
untouched.

:class:`Deadline` is the cooperative-cancellation companion: a
wall-clock budget created from ``QueryOptions(deadline_ms=...)`` and
threaded through :class:`~repro.stats.ExecutionStats` so the evaluator,
storage, and shard seams can abort a query that has outlived its budget
with a typed :class:`~repro.errors.QueryTimeoutError` instead of
serving late (or hanging a pool).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import EngineConfigError, QueryTimeoutError

#: Seam name -> the fault kinds an injector there may request.
SEAM_KINDS: dict[str, tuple[str, ...]] = {
    "disk.read": ("error", "torn", "corrupt"),
    "disk.write": ("error",),
    "shm.attach": ("error", "corrupt"),
    "worker.execute": ("crash", "error"),
    "cache.get": ("miss",),
}

#: The seams a plan can arm (fixed; sites are compiled in).
SEAMS = tuple(SEAM_KINDS)


@dataclass(frozen=True)
class FaultSpec:
    """One armed injector: fire ``kind`` at ``seam`` on the Nth call.

    ``nth`` is 1-based over the calls through the seam that satisfy
    ``match`` (a substring filter on the call identifier; ``None``
    matches every call).  ``count`` is how many consecutive matching
    calls fire from ``nth`` on; ``-1`` fires forever — the knob for
    "this fault does not go away" scenarios that must end in
    degradation rather than a successful retry.
    """

    seam: str
    kind: str
    nth: int = 1
    count: int = 1
    match: str | None = None

    def __post_init__(self):
        kinds = SEAM_KINDS.get(self.seam)
        if kinds is None:
            known = ", ".join(SEAMS)
            raise EngineConfigError(
                f"unknown fault seam {self.seam!r}; expected one of: {known}"
            )
        if self.kind not in kinds:
            raise EngineConfigError(
                f"seam {self.seam!r} does not support kind {self.kind!r}; "
                f"it accepts: {', '.join(kinds)}"
            )
        if self.nth < 1:
            raise EngineConfigError(f"nth must be >= 1, got {self.nth}")
        if self.count < -1 or self.count == 0:
            raise EngineConfigError(
                f"count must be >= 1 or -1 (forever), got {self.count}"
            )


@dataclass(frozen=True)
class Injection:
    """A record of one fault that actually fired (for assertions/metrics)."""

    seam: str
    kind: str
    ident: str


class FaultPlan:
    """A seeded, deterministic set of armed fault injectors.

    Each spec keeps its own call counter (calls through its seam whose
    identifier satisfies its ``match`` filter), so firing is a pure
    function of the call sequence — no randomness decides *whether* a
    fault fires.  The ``seed`` only parameterizes *payload details* of a
    fired fault (which byte to flip), keeping those deterministic too.

    Thread-safe: sites on worker threads may consult the plan
    concurrently.  A plan does **not** cross process boundaries — the
    engine evaluates worker-affecting seams at dispatch time in the
    parent and ships plain directives to the workers, so counters stay
    in one place and retries observe the fired state.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 0):
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise EngineConfigError(
                    f"FaultPlan takes FaultSpec instances, got {spec!r}"
                )
        self.seed = seed
        self._lock = threading.Lock()
        self._calls = [0] * len(self.specs)
        self._rng = random.Random(seed)
        self.injections: list[Injection] = []

    def check(self, seam: str, ident: str = "") -> FaultSpec | None:
        """Count one call through ``seam``; the spec to fire, or ``None``.

        At most one spec fires per call (the first armed one in plan
        order); every matching spec's counter advances regardless, so
        two injectors at one seam see the same call stream.
        """
        fired = None
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.seam != seam:
                    continue
                if spec.match is not None and spec.match not in ident:
                    continue
                self._calls[i] += 1
                calls = self._calls[i]
                in_window = calls >= spec.nth and (
                    spec.count == -1 or calls < spec.nth + spec.count
                )
                if fired is None and in_window:
                    fired = spec
            if fired is not None:
                self.injections.append(Injection(seam, fired.kind, ident))
        return fired

    def byte_offset(self, length: int) -> int:
        """A deterministic (seeded) byte offset into a payload of ``length``."""
        if length <= 0:
            return 0
        with self._lock:
            return self._rng.randrange(length)

    def snapshot(self) -> dict:
        """Fired injections and per-seam call counts (JSON-friendly)."""
        with self._lock:
            by_seam: dict[str, int] = {}
            for injection in self.injections:
                by_seam[injection.seam] = by_seam.get(injection.seam, 0) + 1
            return {
                "seed": self.seed,
                "fired": len(self.injections),
                "by_seam": by_seam,
                "injections": [
                    {"seam": i.seam, "kind": i.kind, "ident": i.ident}
                    for i in self.injections
                ],
            }

    def reset(self) -> None:
        """Re-arm every spec and clear the fired log (same seed)."""
        with self._lock:
            self._calls = [0] * len(self.specs)
            self._rng = random.Random(self.seed)
            self.injections.clear()

    def __repr__(self) -> str:
        return (
            f"FaultPlan(specs={len(self.specs)}, seed={self.seed}, "
            f"fired={len(self.injections)})"
        )


@dataclass
class Deadline:
    """A cooperative wall-clock budget for one query (or one batch).

    Created from ``QueryOptions(deadline_ms=...)`` and threaded through
    the :class:`~repro.stats.ExecutionStats` object every layer already
    receives; seams call :meth:`check` and a typed
    :class:`~repro.errors.QueryTimeoutError` aborts the evaluation as
    soon as the budget is gone.  Uses ``time.monotonic()``, which on this
    platform is system-wide, so a remaining budget shipped to a worker
    process stays meaningful.
    """

    deadline_ms: float
    expires_at: float = field(default=0.0)

    def __post_init__(self):
        if self.deadline_ms < 0:
            raise EngineConfigError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if not self.expires_at:
            self.expires_at = time.monotonic() + self.deadline_ms / 1e3

    @property
    def remaining_seconds(self) -> float:
        """Seconds left before expiry (negative once overdue)."""
        return self.expires_at - time.monotonic()

    @property
    def remaining_ms(self) -> float:
        return 1e3 * self.remaining_seconds

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, where: str = "query") -> None:
        """Raise :class:`QueryTimeoutError` if the budget is exhausted."""
        if time.monotonic() >= self.expires_at:
            raise QueryTimeoutError(
                f"deadline of {self.deadline_ms:g} ms exceeded at {where}"
            )
