"""Query-space enumerators and samplers.

The paper's cost model assumes queries drawn uniformly from
``Q = {A op v : op in {<, <=, =, !=, >=, >}, 0 <= v < C}`` (Section 4);
its Section 9 experiments restrict the space to ``{<=, =}`` "to limit the
number of queries".  Both spaces are provided, plus a seeded sampler for
experiments that cannot afford full enumeration.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.evaluation import OPERATORS, Predicate
from repro.errors import ValueOutOfRangeError

#: The Section 9.2 restricted operator set.
RESTRICTED_OPERATORS = ("<=", "=")


def full_query_space(cardinality: int) -> Iterator[Predicate]:
    """All ``6 * C`` predicates of the paper's query space ``Q``."""
    _check(cardinality)
    for op in OPERATORS:
        for v in range(cardinality):
            yield Predicate(op, v)


def restricted_query_space(cardinality: int) -> Iterator[Predicate]:
    """The Section 9 space: ``{A <= v, A = v : 0 <= v < C}`` (``2C`` queries)."""
    _check(cardinality)
    for op in RESTRICTED_OPERATORS:
        for v in range(cardinality):
            yield Predicate(op, v)


def sample_queries(
    cardinality: int,
    count: int,
    operators: tuple[str, ...] = OPERATORS,
    seed: int = 0,
) -> list[Predicate]:
    """``count`` predicates drawn uniformly from ``operators x [0, C)``."""
    _check(cardinality)
    if count < 0:
        raise ValueOutOfRangeError(f"count must be >= 0, got {count}")
    for op in operators:
        if op not in OPERATORS:
            raise ValueOutOfRangeError(f"unknown operator {op!r}")
    rng = np.random.default_rng(seed)
    ops = rng.integers(0, len(operators), count)
    values = rng.integers(0, cardinality, count)
    return [Predicate(operators[int(o)], int(v)) for o, v in zip(ops, values)]


def _check(cardinality: int) -> None:
    if cardinality < 2:
        raise ValueOutOfRangeError(
            f"cardinality must be >= 2, got {cardinality}"
        )
