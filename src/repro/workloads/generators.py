"""Seeded synthetic value generators.

All generators return ``int64`` arrays of attribute values in
``[0, cardinality)`` and take an explicit seed, so every experiment in the
repository is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValueOutOfRangeError


def _check(num_rows: int, cardinality: int) -> None:
    if num_rows < 0:
        raise ValueOutOfRangeError(f"num_rows must be >= 0, got {num_rows}")
    if cardinality < 1:
        raise ValueOutOfRangeError(
            f"cardinality must be >= 1, got {cardinality}"
        )


def uniform_values(num_rows: int, cardinality: int, seed: int = 0) -> np.ndarray:
    """Values drawn uniformly from ``[0, cardinality)``."""
    _check(num_rows, cardinality)
    rng = np.random.default_rng(seed)
    return rng.integers(0, cardinality, num_rows, dtype=np.int64)


def zipf_values(
    num_rows: int, cardinality: int, skew: float = 1.0, seed: int = 0
) -> np.ndarray:
    """Zipf-distributed values: value ``k`` has weight ``1 / (k+1)^skew``.

    ``skew = 0`` degenerates to uniform; larger skews concentrate mass on
    the small values, the classic shape of categorical warehouse columns.
    """
    _check(num_rows, cardinality)
    if skew < 0:
        raise ValueOutOfRangeError(f"skew must be >= 0, got {skew}")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, cardinality + 1, dtype=np.float64) ** skew
    weights /= weights.sum()
    return rng.choice(cardinality, size=num_rows, p=weights).astype(np.int64)


def clustered_values(
    num_rows: int,
    cardinality: int,
    run_length: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Values arriving in runs of ~``run_length`` equal values.

    Models append-ordered columns (load dates, batch ids) whose bitmaps
    are highly run-compressible — the favourable case for the WAH codec.
    """
    _check(num_rows, cardinality)
    if run_length < 1:
        raise ValueOutOfRangeError(f"run_length must be >= 1, got {run_length}")
    rng = np.random.default_rng(seed)
    out = np.empty(num_rows, dtype=np.int64)
    filled = 0
    while filled < num_rows:
        value = int(rng.integers(0, cardinality))
        length = int(rng.integers(1, 2 * run_length + 1))
        end = min(filled + length, num_rows)
        out[filled:end] = value
        filled = end
    return out
