"""Synthetic TPC-D-shaped data for the paper's Section 9 experiments.

The paper's Table 3 uses two attributes of the TPC-D benchmark:

- **Data set 1** — ``Lineitem.l_quantity``: 50 distinct integer values
  (1..50, uniform), small attribute cardinality.
- **Data set 2** — ``Order.o_orderdate``: dates uniform over the TPC-D
  order-date range (1992-01-01 through 1998-08-02, 2406 distinct days),
  large attribute cardinality.

We do not have the TPC-D generator, so this module synthesizes columns
with the same value domains and distributions (the quantities the Section
9 results actually depend on).  Row counts default to a laptop-friendly
scale and can be raised to the full TPC-D scale-factor counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.relation.column import Column
from repro.relation.relation import Relation

#: TPC-D order dates span STARTDATE..ENDDATE - 151 days; 2406 distinct days.
ORDERDATE_FIRST = date(1992, 1, 1)
ORDERDATE_DAYS = 2406

#: l_quantity is a random integer in [1, 50].
QUANTITY_CARDINALITY = 50

#: Full TPC-D scale-factor-1 row counts, for reference/scaling.
LINEITEM_ROWS_SF1 = 6_001_215
ORDER_ROWS_SF1 = 1_500_000


@dataclass(frozen=True)
class DatasetSpec:
    """Characteristics of one experimental dataset (the paper's Table 3)."""

    name: str
    relation: str
    attribute: str
    relation_cardinality: int
    attribute_cardinality: int


def lineitem_relation(num_rows: int = 60_000, seed: int = 17) -> Relation:
    """A Lineitem-shaped relation: ``quantity`` uniform over 1..50."""
    rng = np.random.default_rng(seed)
    quantity = rng.integers(1, QUANTITY_CARDINALITY + 1, num_rows, dtype=np.int64)
    extended_price = np.round(
        quantity * rng.uniform(900.0, 105_000.0 / 50, num_rows), 2
    )
    return Relation(
        "lineitem",
        [
            Column("quantity", quantity),
            Column("extendedprice", extended_price),
        ],
    )


def order_relation(num_rows: int = 15_000, seed: int = 23) -> Relation:
    """An Order-shaped relation: ``orderdate`` uniform over 2406 days.

    Dates are stored as day offsets from 1992-01-01 (``int64``); use
    :func:`orderdate_to_date` to decode.
    """
    rng = np.random.default_rng(seed)
    orderdate = rng.integers(0, ORDERDATE_DAYS, num_rows, dtype=np.int64)
    totalprice = np.round(rng.uniform(850.0, 550_000.0, num_rows), 2)
    return Relation(
        "order",
        [
            Column("orderdate", orderdate),
            Column("totalprice", totalprice),
        ],
    )


def orderdate_to_date(offset: int) -> date:
    """Decode an ``orderdate`` day offset into a calendar date."""
    return ORDERDATE_FIRST + timedelta(days=int(offset))


def dataset1(num_rows: int = 60_000, seed: int = 17) -> tuple[Relation, DatasetSpec]:
    """The paper's data set 1 (small cardinality): Lineitem.quantity."""
    rel = lineitem_relation(num_rows, seed)
    spec = DatasetSpec(
        name="data set 1",
        relation="lineitem",
        attribute="quantity",
        relation_cardinality=rel.num_rows,
        attribute_cardinality=rel.column("quantity").cardinality,
    )
    return rel, spec


def dataset2(num_rows: int = 15_000, seed: int = 23) -> tuple[Relation, DatasetSpec]:
    """The paper's data set 2 (large cardinality): Order.orderdate."""
    rel = order_relation(num_rows, seed)
    spec = DatasetSpec(
        name="data set 2",
        relation="order",
        attribute="orderdate",
        relation_cardinality=rel.num_rows,
        attribute_cardinality=rel.column("orderdate").cardinality,
    )
    return rel, spec
