"""Workload substrate: value generators, TPC-D-shaped data, query spaces."""

from repro.workloads.generators import (
    clustered_values,
    uniform_values,
    zipf_values,
)
from repro.workloads.tpcd import (
    DatasetSpec,
    dataset1,
    dataset2,
    lineitem_relation,
    order_relation,
)
from repro.workloads.queries import (
    full_query_space,
    restricted_query_space,
    sample_queries,
)

__all__ = [
    "DatasetSpec",
    "clustered_values",
    "dataset1",
    "dataset2",
    "full_query_space",
    "lineitem_relation",
    "order_relation",
    "restricted_query_space",
    "sample_queries",
    "uniform_values",
    "zipf_values",
]
