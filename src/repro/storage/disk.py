"""An in-memory simulated disk with byte/IO accounting.

The paper's Section 9 measures predicate evaluation time as the sum of
(1) bitmap file reads, (2) in-memory decompression, and (3) bitmap
operations.  We cannot reproduce a 1998 disk, so the substitution is a
byte-accurate in-memory store plus an explicit :class:`DiskModel` that
converts (files opened, bytes transferred) into estimated I/O seconds.
Relative costs between storage schemes — the quantity the paper's
conclusions rest on — are preserved exactly because the byte volumes and
file-scan counts are exact.

The disk also supports *failure injection*: the direct helpers
(truncation, byte corruption) and, via an optional
:class:`repro.faults.FaultPlan`, deterministic read faults at the
``disk.read`` seam — so the test suite and the chaos harness can
exercise the storage layer's integrity checks on either disk backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import FileMissingError, InjectedFaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan


@dataclass(frozen=True)
class DiskModel:
    """Converts IO/decompression counters into estimated seconds.

    Defaults approximate the paper's late-90s hardware: ~10 ms per file
    open (seek + rotational delay), ~10 MB/s sequential disk bandwidth,
    and ~6 MB/s zlib inflate throughput.  The inflate figure matters for
    reproducing Figure 16's shape: on 1998 CPUs decompression dominated
    compressed-component-storage queries (>70% of evaluation time),
    whereas a modern CPU inflates two orders of magnitude faster — so the
    experiments report measured modern CPU time *and* the era-modeled
    cost side by side.
    """

    seek_seconds: float = 0.010
    bandwidth_bytes_per_second: float = 10e6
    inflate_bytes_per_second: float = 6e6

    def seconds(self, files_opened: int, bytes_read: int) -> float:
        """Estimated wall-clock seconds for the given IO volume."""
        return (
            files_opened * self.seek_seconds
            + bytes_read / self.bandwidth_bytes_per_second
        )

    # ------------------------------------------------------------------
    # Storage protocol (see repro.storage.Storage)
    # ------------------------------------------------------------------
    #
    # A DiskModel is the degenerate storage backend: it holds no bytes,
    # serves no bitmaps, and exists purely to charge modeled latency.

    def read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """Modeled latency of one read (alias of :meth:`seconds`)."""
        return self.seconds(files_opened, bytes_read)

    def bitmap_source(self, relation: str, attribute: str):
        """A latency model holds no index payloads."""
        return None

    def io_snapshot(self) -> dict:
        """The model's parameters (a latency model has no counters)."""
        out = self.as_dict()
        out["backend"] = "model"
        return out

    def decompress_seconds(self, decompressed_bytes: int) -> float:
        """Era-modeled CPU seconds to inflate ``decompressed_bytes``."""
        return decompressed_bytes / self.inflate_bytes_per_second

    def as_dict(self) -> dict:
        """The model's parameters as a plain dict (for EXPLAIN reports)."""
        return {
            "seek_seconds": self.seek_seconds,
            "bandwidth_bytes_per_second": self.bandwidth_bytes_per_second,
            "inflate_bytes_per_second": self.inflate_bytes_per_second,
        }


@dataclass
class DiskStats:
    """Cumulative IO counters of one simulated disk."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class SimulatedDisk:
    """A dictionary-of-files disk with exact transfer accounting."""

    def __init__(
        self,
        model: DiskModel | None = None,
        *,
        fault_plan: "FaultPlan | None" = None,
    ):
        self._files: dict[str, bytes] = {}
        self.model = model if model is not None else DiskModel()
        self.stats = DiskStats()
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        """Create or replace a file."""
        self._files[path] = bytes(data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        """Read a whole file, recording the transfer."""
        try:
            data = self._files[path]
        except KeyError:
            raise FileMissingError(f"no such bitmap file: {path}") from None
        if self.fault_plan is not None:
            spec = self.fault_plan.check("disk.read", ident=path)
            if spec is not None:
                if spec.kind == "error":
                    raise InjectedFaultError(f"injected read error on {path}")
                if spec.kind == "torn":
                    data = data[: len(data) // 2]
                elif spec.kind == "corrupt" and data:
                    mutated = bytearray(data)
                    offset = self.fault_plan.byte_offset(len(mutated))
                    mutated[offset] ^= 0xFF
                    data = bytes(mutated)
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        try:
            del self._files[path]
        except KeyError:
            raise FileMissingError(f"no such bitmap file: {path}") from None

    def list_files(self, prefix: str = "") -> list[str]:
        """Paths on the disk, optionally filtered by prefix, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def size_of(self, path: str) -> int:
        """File size in bytes (no transfer recorded)."""
        try:
            return len(self._files[path])
        except KeyError:
            raise FileMissingError(f"no such bitmap file: {path}") from None

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under a path prefix."""
        return sum(
            len(data) for path, data in self._files.items() if path.startswith(prefix)
        )

    # ------------------------------------------------------------------
    # Failure injection (for tests)
    # ------------------------------------------------------------------

    def truncate(self, path: str, nbytes: int) -> None:
        """Cut a file down to its first ``nbytes`` bytes."""
        data = self._files.get(path)
        if data is None:
            raise FileMissingError(f"no such bitmap file: {path}")
        self._files[path] = data[:nbytes]

    def corrupt_byte(self, path: str, offset: int, xor_with: int = 0xFF) -> None:
        """Flip bits of one byte of a file."""
        data = self._files.get(path)
        if data is None:
            raise FileMissingError(f"no such bitmap file: {path}")
        if not 0 <= offset < len(data):
            raise IndexError(f"offset {offset} outside file of {len(data)} bytes")
        mutated = bytearray(data)
        mutated[offset] ^= xor_with
        self._files[path] = bytes(mutated)

    # ------------------------------------------------------------------

    def estimated_read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """Apply this disk's :class:`DiskModel` to an IO volume."""
        return self.model.seconds(files_opened, bytes_read)

    # ------------------------------------------------------------------
    # Storage protocol (see repro.storage.Storage)
    # ------------------------------------------------------------------

    def read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """A simulated disk moves no real bytes, so reads are modeled."""
        return self.model.seconds(files_opened, bytes_read)

    def bitmap_source(self, relation: str, attribute: str):
        """Scheme files are opened via ``open_scheme``, not per attribute."""
        return None

    def io_snapshot(self) -> dict:
        return {
            "backend": "simulated",
            "reads": self.stats.reads,
            "writes": self.stats.writes,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
        }
