"""A real-directory disk backend with the SimulatedDisk interface.

The experiments run on :class:`~repro.storage.disk.SimulatedDisk` for
exact, repeatable accounting; this backend persists the same bitmap files
to an actual directory so indexes survive the process — the storage
schemes work against either interchangeably.

Logical paths (``"myindex/c1_s0"``) map to files under the root
directory; path components are validated so a hostile manifest cannot
escape the root.

Durability and integrity
------------------------
Writes are **crash-atomic**: data lands in a temporary file in the same
directory, is fsynced, and is moved into place with ``os.replace`` — a
crash mid-write can leave a stray temp file but never a torn bitmap
file.  Every file is framed with a CRC-32 checksum header (``checksums``
constructor flag, default on); reads verify the frame and raise
:class:`~repro.errors.CorruptFileError` on a torn or bit-flipped
payload instead of handing corrupt bytes to a codec.  :meth:`scrub`
sweeps a
prefix for corruption and :meth:`quarantine` moves a bad file aside (to
``.quarantine/`` under the root) so a rebuild can proceed while the
evidence survives for inspection.

Fault injection
---------------
Beyond the direct ``truncate``/``corrupt_byte`` helpers, the backend
accepts a :class:`repro.faults.FaultPlan` and consults its
``disk.read``/``disk.write`` seams, so chaos tests can inject read
errors, torn reads, bit flips, and mid-write crashes deterministically.
"""

from __future__ import annotations

import logging
import os
import struct
import tempfile
import zlib

from repro.errors import (
    CorruptFileError,
    FileMissingError,
    InjectedFaultError,
    StorageError,
)
from repro.faults import FaultPlan
from repro.storage.disk import DiskModel, DiskStats

log = logging.getLogger("repro.storage.fsdisk")

#: Frame header: magic + CRC-32 of the payload + payload length.
_MAGIC = b"\x89RBF"
_HEADER = struct.Struct("<4sIQ")
_QUARANTINE_DIR = ".quarantine"


class FileSystemDisk:
    """Stores bitmap files under a root directory.

    Implements the same surface as :class:`SimulatedDisk` (write / read /
    exists / delete / list_files / size_of / total_bytes plus the
    failure-injection helpers), so :func:`repro.storage.schemes.write_index`
    and :func:`~repro.storage.schemes.open_scheme` accept either.

    ``stats`` and ``size_of``/``total_bytes`` account *logical* payload
    bytes (what the caller wrote), not the physical frame, matching the
    simulated disk's semantics exactly.
    """

    def __init__(
        self,
        root: str,
        model: DiskModel | None = None,
        *,
        checksums: bool = True,
        fault_plan: FaultPlan | None = None,
    ):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.model = model if model is not None else DiskModel()
        self.stats = DiskStats()
        self.checksums = checksums
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------

    def _resolve(self, path: str) -> str:
        parts = path.split("/")
        for part in parts:
            if part in ("", ".", "..") or os.sep in part:
                raise StorageError(f"illegal path component in {path!r}")
        return os.path.join(self.root, *parts)

    @staticmethod
    def _frame(data: bytes) -> bytes:
        return _HEADER.pack(_MAGIC, zlib.crc32(data), len(data)) + data

    def _unframe(self, path: str, raw: bytes) -> bytes:
        """Verify and strip the checksum frame.

        With ``checksums`` off the disk is a raw store and bytes pass
        through untouched.  With it on, every file must carry an intact
        frame — a missing or mangled header is indistinguishable from
        header corruption and is reported as such (directories written
        with ``checksums=False`` must be opened the same way).
        """
        if not self.checksums:
            return raw
        if len(raw) < _HEADER.size or raw[:4] != _MAGIC:
            raise CorruptFileError(
                f"{path}: missing or corrupt checksum frame header"
            )
        try:
            _, crc, length = _HEADER.unpack_from(raw)
        except struct.error as exc:  # pragma: no cover - len checked above
            raise CorruptFileError(f"{path}: unreadable frame header") from exc
        payload = raw[_HEADER.size :]
        if length > len(raw):
            # The declared payload extends past EOF — a torn or mangled
            # header.  Reject with the typed error before any consumer
            # slices (or mmaps) past the end of the file.
            raise CorruptFileError(
                f"{path}: frame header promises {length} payload bytes "
                f"but the file holds only {len(raw) - _HEADER.size}"
            )
        if len(payload) != length:
            raise CorruptFileError(
                f"{path}: torn file — header promises {length} payload "
                f"bytes, found {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptFileError(f"{path}: checksum mismatch")
        return payload

    def write(self, path: str, data: bytes) -> None:
        """Atomically create or replace a file (temp + fsync + rename)."""
        full = self._resolve(path)
        directory = os.path.dirname(full)
        os.makedirs(directory, exist_ok=True)
        blob = self._frame(data) if self.checksums else bytes(data)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            if self.fault_plan is not None:
                spec = self.fault_plan.check("disk.write", ident=path)
                if spec is not None:
                    # A simulated crash after the temp write, before the
                    # rename: the previous contents must stay intact.
                    raise InjectedFaultError(
                        f"injected write failure before rename of {path}"
                    )
            os.replace(tmp, full)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        try:
            # Persist the rename itself; without the directory fsync a
            # power loss can forget the replace while keeping the data.
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        full = self._resolve(path)
        try:
            with open(full, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None
        if self.fault_plan is not None:
            spec = self.fault_plan.check("disk.read", ident=path)
            if spec is not None:
                if spec.kind == "error":
                    raise InjectedFaultError(f"injected read error on {path}")
                if spec.kind == "torn":
                    raw = raw[: len(raw) // 2]
                elif spec.kind == "corrupt" and raw:
                    mutated = bytearray(raw)
                    offset = self.fault_plan.byte_offset(len(mutated))
                    mutated[offset] ^= 0xFF
                    raw = bytes(mutated)
        data = self._unframe(path, raw)
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def delete(self, path: str) -> None:
        try:
            os.remove(self._resolve(path))
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None

    def list_files(self, prefix: str = "") -> list[str]:
        found = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = [d for d in dirnames if d != _QUARANTINE_DIR]
            for name in filenames:
                if name.startswith(".tmp-"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                logical = rel.replace(os.sep, "/")
                if logical.startswith(prefix):
                    found.append(logical)
        return sorted(found)

    def size_of(self, path: str) -> int:
        full = self._resolve(path)
        try:
            physical = os.path.getsize(full)
            with open(full, "rb") as handle:
                head = handle.read(len(_MAGIC))
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None
        if physical >= _HEADER.size and head == _MAGIC:
            return physical - _HEADER.size
        return physical

    def total_bytes(self, prefix: str = "") -> int:
        return sum(self.size_of(p) for p in self.list_files(prefix))

    # ------------------------------------------------------------------
    # Corruption quarantine
    # ------------------------------------------------------------------

    def verify(self, path: str) -> bool:
        """Does the file read back intact?  (No transfer is recorded.)"""
        full = self._resolve(path)
        try:
            with open(full, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None
        try:
            self._unframe(path, raw)
        except CorruptFileError:
            return False
        except (ValueError, struct.error):  # pragma: no cover - belt and braces
            # Any parse failure on stored bytes is corruption, whatever
            # exception a lower layer chose to raise.
            return False
        return True

    def quarantine(self, path: str) -> str:
        """Move a (presumably corrupt) file into ``.quarantine/``.

        The original path stops existing — a rebuild can rewrite it —
        while the bad bytes survive for inspection.  Returns the
        filesystem path of the quarantined copy.
        """
        full = self._resolve(path)
        if not os.path.isfile(full):
            raise FileMissingError(f"no such bitmap file: {path}")
        shelter = os.path.join(self.root, _QUARANTINE_DIR)
        os.makedirs(shelter, exist_ok=True)
        target = os.path.join(shelter, path.replace("/", "__"))
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(
                shelter, f"{path.replace('/', '__')}.{suffix}"
            )
        os.replace(full, target)
        log.warning("quarantined corrupt bitmap file %s -> %s", path, target)
        return target

    def scrub(self, prefix: str = "", quarantine: bool = True) -> list[str]:
        """Verify every file under ``prefix``; returns the corrupt ones.

        With ``quarantine=True`` (default) each corrupt file is moved to
        ``.quarantine/`` as it is found, so the paths in the returned
        list no longer exist and can be rebuilt from source.
        """
        corrupt = []
        for path in self.list_files(prefix):
            if not self.verify(path):
                corrupt.append(path)
                if quarantine:
                    self.quarantine(path)
        return corrupt

    # ------------------------------------------------------------------
    # Failure injection (parity with SimulatedDisk, used by tests)
    # ------------------------------------------------------------------

    def truncate(self, path: str, nbytes: int) -> None:
        """Cut the *physical* file to ``nbytes`` (simulates a torn write
        from a pre-atomic-rename era; checksummed reads detect it)."""
        full = self._resolve(path)
        if not os.path.isfile(full):
            raise FileMissingError(f"no such bitmap file: {path}")
        with open(full, "rb+") as handle:
            handle.truncate(nbytes)

    def corrupt_byte(self, path: str, offset: int, xor_with: int = 0xFF) -> None:
        """Flip bits of one byte of the physical file (media corruption)."""
        full = self._resolve(path)
        if not os.path.isfile(full):
            raise FileMissingError(f"no such bitmap file: {path}")
        size = os.path.getsize(full)
        if not 0 <= offset < size:
            raise IndexError(f"offset {offset} outside file of {size} bytes")
        with open(full, "rb+") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ xor_with]))

    # ------------------------------------------------------------------

    def estimated_read_seconds(self, files_opened: int, bytes_read: int) -> float:
        return self.model.seconds(files_opened, bytes_read)

    # ------------------------------------------------------------------
    # Storage protocol (see repro.storage.Storage)
    # ------------------------------------------------------------------

    def read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """A real disk pays real wall-clock time; nothing is modeled."""
        return 0.0

    def bitmap_source(self, relation: str, attribute: str):
        """Scheme files are opened via ``open_scheme``, not per attribute."""
        return None

    def io_snapshot(self) -> dict:
        return {
            "backend": "filesystem",
            "root": self.root,
            "reads": self.stats.reads,
            "writes": self.stats.writes,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
        }
