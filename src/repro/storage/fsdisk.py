"""A real-directory disk backend with the SimulatedDisk interface.

The experiments run on :class:`~repro.storage.disk.SimulatedDisk` for
exact, repeatable accounting; this backend persists the same bitmap files
to an actual directory so indexes survive the process — the storage
schemes work against either interchangeably.

Logical paths (``"myindex/c1_s0"``) map to files under the root
directory; path components are validated so a hostile manifest cannot
escape the root.
"""

from __future__ import annotations

import os

from repro.errors import FileMissingError, StorageError
from repro.storage.disk import DiskModel, DiskStats


class FileSystemDisk:
    """Stores bitmap files under a root directory.

    Implements the same surface as :class:`SimulatedDisk` (write / read /
    exists / delete / list_files / size_of / total_bytes plus the
    failure-injection helpers), so :func:`repro.storage.schemes.write_index`
    and :func:`~repro.storage.schemes.open_scheme` accept either.
    """

    def __init__(self, root: str, model: DiskModel | None = None):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.model = model if model is not None else DiskModel()
        self.stats = DiskStats()

    # ------------------------------------------------------------------

    def _resolve(self, path: str) -> str:
        parts = path.split("/")
        for part in parts:
            if part in ("", ".", "..") or os.sep in part:
                raise StorageError(f"illegal path component in {path!r}")
        return os.path.join(self.root, *parts)

    def write(self, path: str, data: bytes) -> None:
        full = self._resolve(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "wb") as handle:
            handle.write(data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        full = self._resolve(path)
        try:
            with open(full, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def delete(self, path: str) -> None:
        try:
            os.remove(self._resolve(path))
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None

    def list_files(self, prefix: str = "") -> list[str]:
        found = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                logical = rel.replace(os.sep, "/")
                if logical.startswith(prefix):
                    found.append(logical)
        return sorted(found)

    def size_of(self, path: str) -> int:
        try:
            return os.path.getsize(self._resolve(path))
        except FileNotFoundError:
            raise FileMissingError(f"no such bitmap file: {path}") from None

    def total_bytes(self, prefix: str = "") -> int:
        return sum(self.size_of(p) for p in self.list_files(prefix))

    # ------------------------------------------------------------------
    # Failure injection (parity with SimulatedDisk, used by tests)
    # ------------------------------------------------------------------

    def truncate(self, path: str, nbytes: int) -> None:
        full = self._resolve(path)
        if not os.path.isfile(full):
            raise FileMissingError(f"no such bitmap file: {path}")
        with open(full, "rb+") as handle:
            handle.truncate(nbytes)

    def corrupt_byte(self, path: str, offset: int, xor_with: int = 0xFF) -> None:
        full = self._resolve(path)
        if not os.path.isfile(full):
            raise FileMissingError(f"no such bitmap file: {path}")
        size = os.path.getsize(full)
        if not 0 <= offset < size:
            raise IndexError(f"offset {offset} outside file of {size} bytes")
        with open(full, "rb+") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ xor_with]))

    # ------------------------------------------------------------------

    def estimated_read_seconds(self, files_opened: int, bytes_read: int) -> float:
        return self.model.seconds(files_opened, bytes_read)
