"""Persistent on-disk index store with mmap lazy loading (RBIX format).

One file per relation (``<relation>.rbix``) holds every bitmap index of
that relation.  The layout is dictionary-up-front so a cold open parses
only the metadata; individual bitmap payloads are materialized lazily
from an ``mmap`` view the first time a query touches them:

.. code-block:: text

    offset 0   +----------------------------------------------+
               | header (30 bytes, fixed)                     |
               |   magic "RBIX" | version | flags             |
               |   dict_offset | dict_length | dict_crc       |
               |   header_crc (CRC-32 of the preceding bytes) |
    dict_off   +----------------------------------------------+
               | dictionary (JSON, CRC-framed by the header)  |
               |   per attribute: cardinality, base, encoding,|
               |   codec, value dictionary, and per-slot      |
               |   [offset, length, crc] payload entries      |
    payload    +----------------------------------------------+
               | bitmap payloads, one per stored slot         |
               |   dense -> padded 64-bit words (zero-copy)   |
               |   wah   -> WAH blob    roaring -> ROAR blob  |
               +----------------------------------------------+

Payload offsets in the dictionary are relative to the payload region and
validated against the physical file size at open — an entry extending
past EOF is reported as :class:`~repro.errors.CorruptFileError` before
anything slices (or page-faults) past the end of the map.  Every region
is independently checksummed: the header over itself, the dictionary by
the header, and each payload by its dictionary entry (verified on first
materialization).

Incremental appends go to a CRC-framed JSON *delta sidecar*
(``<relation>.rbix.delta``) holding the appended rank rows; reads serve
base + delta merged, and an explicit :meth:`IndexStore.compact` folds the
delta into a rewritten base file.  All writes are crash-atomic (temp file
+ fsync + ``os.replace`` + directory fsync), reusing the discipline of
:class:`~repro.storage.fsdisk.FileSystemDisk`; the delta records the base
file's row count so a sidecar orphaned by a crash *between* compaction's
rename and its delta unlink is detected as stale and ignored instead of
being applied twice.

:class:`IndexStore` implements the :class:`repro.storage.Storage`
protocol: ``read_seconds`` is ``0.0`` (real I/O pays real wall-clock
time), ``bitmap_source`` hands out lazy per-attribute
:class:`StoreBitmapSource` views, and ``io_snapshot`` exposes the real
counters (dictionary bytes parsed, payload bytes read, bitmaps
materialized, a page-touch proxy for mmap faults) that EXPLAIN reports
alongside the cost model's predictions.
"""

from __future__ import annotations

import json
import logging
import mmap
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.errors import (
    CorruptFileError,
    EngineConfigError,
    FileMissingError,
    InjectedFaultError,
    StorageError,
    ValueOutOfRangeError,
)
from repro.faults import FaultPlan
from repro.relation.column import Column
from repro.relation.relation import Relation

log = logging.getLogger("repro.storage.store")

_MAGIC = b"RBIX"
_VERSION = 1
#: magic, version, flags, dict_offset, dict_length, dict_crc, header_crc.
_HEADER = struct.Struct("<4sHHQQII")
_DELTA_MAGIC = b"\x89RBD"
_DELTA_HEADER = struct.Struct("<4sIQ")
_SUFFIX = ".rbix"
_DELTA_SUFFIX = ".rbix.delta"
_QUARANTINE_DIR = ".quarantine"

_CODECS = ("dense", "wah", "roaring")


def _pages(nbytes: int, page_size: int) -> int:
    """Pages spanned by ``nbytes`` (the mmap-fault proxy counter)."""
    return (nbytes + page_size - 1) // page_size if nbytes else 0


def _serialize_bitmap(bitmap, codec: str) -> bytes:
    if codec == "dense":
        return bitmap.to_word_bytes()
    if codec == "wah":
        return bitmap.blob
    return bitmap.serialize()


def _encode_dense(vector: BitVector, codec: str):
    """A dense bitmap re-represented in ``codec``."""
    if codec == "dense":
        return vector
    if codec == "wah":
        return WahBitVector.from_bitvector(vector)
    return RoaringBitmap.from_bitvector(vector)


def _to_dense(bitmap) -> BitVector:
    return bitmap if isinstance(bitmap, BitVector) else bitmap.to_bitvector()


def _dictionary_to_json(arr: np.ndarray | None) -> dict | None:
    if arr is None:
        return None
    kind = arr.dtype.kind
    if kind in "iu":
        values = [int(x) for x in arr]
    elif kind == "f":
        values = [float(x) for x in arr]
    elif kind == "b":
        values = [bool(x) for x in arr]
    else:
        # Strings, datetimes, and anything else orderable round-trip
        # through their string form and the recorded dtype.
        values = [str(x) for x in arr]
    return {"dtype": str(arr.dtype), "values": values}


def _dictionary_from_json(obj: dict | None, path: str) -> np.ndarray | None:
    if obj is None:
        return None
    try:
        return np.array(obj["values"], dtype=np.dtype(obj["dtype"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptFileError(
            f"{path}: malformed value dictionary: {exc}"
        ) from exc


@dataclass
class StoreStats:
    """Cumulative real-I/O counters of one :class:`IndexStore`.

    ``pages_touched`` is a proxy for mmap page faults: the 4 KiB pages
    spanned by every region actually read (dictionary at open, payloads
    at materialization).  The OS may fault fewer pages on a warm cache,
    but the proxy is deterministic and byte-accurate, which is what the
    lazy-loading tests and EXPLAIN need.
    """

    opens: int = 0
    dict_bytes: int = 0
    payload_bytes_read: int = 0
    bitmaps_materialized: int = 0
    delta_bitmaps: int = 0
    pages_touched: int = 0
    appends: int = 0
    compactions: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict:
        return {
            "opens": self.opens,
            "dict_bytes": self.dict_bytes,
            "payload_bytes_read": self.payload_bytes_read,
            "bitmaps_materialized": self.bitmaps_materialized,
            "delta_bitmaps": self.delta_bitmaps,
            "pages_touched": self.pages_touched,
            "appends": self.appends,
            "compactions": self.compactions,
            "bytes_written": self.bytes_written,
        }


@dataclass
class _AttrMeta:
    """Parsed dictionary entry for one indexed attribute."""

    name: str
    cardinality: int
    base: Base
    encoding: EncodingScheme
    codec: str
    value_size_bytes: int
    dictionary: np.ndarray | None
    #: (component, slot) -> (relative offset, length, crc32).
    slots: dict[tuple[int, int], tuple[int, int, int]]
    nonnull: tuple[int, int, int] | None


class _RelationFile:
    """One opened ``.rbix`` file: mmap + parsed dictionary + delta."""

    def __init__(self, store: "IndexStore", relation: str):
        self.store = store
        self.relation = relation
        self.path = os.path.join(store.root, relation + _SUFFIX)
        try:
            self._fh = open(self.path, "rb")
        except FileNotFoundError:
            raise FileMissingError(
                f"no stored index for relation {relation!r}"
            ) from None
        try:
            self.size = os.fstat(self._fh.fileno()).st_size
            if self.size < _HEADER.size:
                raise CorruptFileError(
                    f"{self.path}: {self.size} bytes is too small to hold "
                    f"an index header"
                )
            self._mm = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
        except BaseException:
            self._fh.close()
            raise
        try:
            self._parse_header_and_dictionary()
            self._load_delta()
        except BaseException:
            self.close()
            raise
        self._delta_indexes: dict[str, BitmapIndex] = {}
        self._verified: set[tuple[int, int]] = set()
        store.stats.opens += 1

    # ------------------------------------------------------------------

    def _parse_header_and_dictionary(self) -> None:
        head = bytes(self._mm[: _HEADER.size])
        magic, version, _flags, dict_off, dict_len, dict_crc, header_crc = (
            _HEADER.unpack(head)
        )
        if magic != _MAGIC:
            raise CorruptFileError(
                f"{self.path}: bad magic {magic!r}; not an index store file"
            )
        if zlib.crc32(head[: _HEADER.size - 4]) != header_crc:
            raise CorruptFileError(f"{self.path}: header checksum mismatch")
        if version != _VERSION:
            raise CorruptFileError(
                f"{self.path}: unsupported format version {version}"
            )
        if dict_off + dict_len > self.size:
            raise CorruptFileError(
                f"{self.path}: dictionary region [{dict_off}, "
                f"{dict_off + dict_len}) extends past EOF at {self.size}"
            )
        dict_bytes = bytes(self._mm[dict_off : dict_off + dict_len])
        if zlib.crc32(dict_bytes) != dict_crc:
            raise CorruptFileError(
                f"{self.path}: dictionary checksum mismatch"
            )
        try:
            meta = json.loads(dict_bytes)
        except ValueError as exc:
            raise CorruptFileError(
                f"{self.path}: dictionary is not valid JSON: {exc}"
            ) from exc
        self.payload_start = dict_off + dict_len
        payload_room = self.size - self.payload_start
        try:
            self.nbits = int(meta["nbits"])
            stored_name = meta["relation"]
            attr_metas = meta["attributes"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptFileError(
                f"{self.path}: malformed dictionary: {exc}"
            ) from exc
        if stored_name != self.relation:
            raise CorruptFileError(
                f"{self.path}: file claims relation {stored_name!r}"
            )
        self.attrs: dict[str, _AttrMeta] = {}
        for name, m in attr_metas.items():
            self.attrs[name] = self._parse_attr(name, m, payload_room)
        self.store.stats.dict_bytes += _HEADER.size + dict_len
        self.store.stats.pages_touched += _pages(
            _HEADER.size + dict_len, self.store.page_size
        )

    def _parse_attr(self, name: str, m: dict, payload_room: int) -> _AttrMeta:
        def entry(raw, what: str) -> tuple[int, int, int]:
            try:
                off, length, crc = (int(raw[0]), int(raw[1]), int(raw[2]))
            except (TypeError, ValueError, IndexError) as exc:
                raise CorruptFileError(
                    f"{self.path}: malformed payload entry for {what}"
                ) from exc
            if off < 0 or length < 0 or off + length > payload_room:
                # The EOF bounds check: reject before any consumer slices
                # (or mmap-faults) past the end of the file.
                raise CorruptFileError(
                    f"{self.path}: payload entry for {what} spans "
                    f"[{off}, {off + length}) but the payload region holds "
                    f"only {payload_room} bytes"
                )
            return off, length, crc

        try:
            cardinality = int(m["cardinality"])
            base = Base(tuple(int(b) for b in m["base"]))
            encoding = EncodingScheme(m["encoding"])
            codec = m["codec"]
            value_size = int(m.get("value_size_bytes", 8))
            components = m["components"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptFileError(
                f"{self.path}: malformed dictionary entry for attribute "
                f"{name!r}: {exc}"
            ) from exc
        if codec not in _CODECS:
            raise CorruptFileError(
                f"{self.path}: attribute {name!r} stored with unknown "
                f"codec {codec!r}"
            )
        if len(components) != base.n:
            raise CorruptFileError(
                f"{self.path}: attribute {name!r} has {len(components)} "
                f"component tables for a {base.n}-component base"
            )
        slots: dict[tuple[int, int], tuple[int, int, int]] = {}
        for i, comp in enumerate(components, start=1):
            try:
                slot_map = comp["slots"]
            except (KeyError, TypeError) as exc:
                raise CorruptFileError(
                    f"{self.path}: malformed component {i} of {name!r}"
                ) from exc
            for slot_str, raw in slot_map.items():
                try:
                    slot = int(slot_str)
                except ValueError as exc:
                    raise CorruptFileError(
                        f"{self.path}: non-integer slot {slot_str!r}"
                    ) from exc
                slots[(i, slot)] = entry(raw, f"{name}/c{i}_s{slot}")
        nonnull = m.get("nonnull")
        return _AttrMeta(
            name=name,
            cardinality=cardinality,
            base=base,
            encoding=encoding,
            codec=codec,
            value_size_bytes=value_size,
            dictionary=_dictionary_from_json(m.get("dictionary"), self.path),
            slots=slots,
            nonnull=entry(nonnull, f"{name}/nonnull") if nonnull else None,
        )

    # ------------------------------------------------------------------
    # Delta sidecar
    # ------------------------------------------------------------------

    def _load_delta(self) -> None:
        self.delta_rows = 0
        self.delta_values: dict[str, np.ndarray] = {}
        self.delta_nulls: dict[str, np.ndarray] = {}
        delta_path = os.path.join(
            self.store.root, self.relation + _DELTA_SUFFIX
        )
        try:
            with open(delta_path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return
        payload = _unframe_delta(delta_path, raw)
        try:
            delta = json.loads(payload)
            base_nbits = int(delta["base_nbits"])
            rows = int(delta["rows"])
            per_attr = delta["attributes"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptFileError(
                f"{delta_path}: malformed delta sidecar: {exc}"
            ) from exc
        if base_nbits != self.nbits:
            # A compact() crash window leaves the *old* delta next to the
            # *new* (already folded) base file; the recorded base size
            # tells them apart.  Applying it again would double-count.
            log.warning(
                "%s: stale delta (base had %d rows, file has %d); ignoring",
                delta_path,
                base_nbits,
                self.nbits,
            )
            return
        if set(per_attr) != set(self.attrs):
            raise CorruptFileError(
                f"{delta_path}: delta attributes {sorted(per_attr)} do not "
                f"match stored attributes {sorted(self.attrs)}"
            )
        values: dict[str, np.ndarray] = {}
        nulls: dict[str, np.ndarray] = {}
        for name, cols in per_attr.items():
            ranks = np.asarray(cols["values"], dtype=np.int64)
            meta = self.attrs[name]
            if len(ranks) != rows:
                raise CorruptFileError(
                    f"{delta_path}: attribute {name!r} has {len(ranks)} "
                    f"delta rows; header promises {rows}"
                )
            if ranks.size and (
                ranks.min() < 0 or ranks.max() >= meta.cardinality
            ):
                raise CorruptFileError(
                    f"{delta_path}: attribute {name!r} delta ranks outside "
                    f"[0, {meta.cardinality})"
                )
            values[name] = ranks
            mask = cols.get("nulls")
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if len(mask) != rows:
                    raise CorruptFileError(
                        f"{delta_path}: attribute {name!r} null mask length "
                        f"mismatch"
                    )
                nulls[name] = mask
        self.delta_rows = rows
        self.delta_values = values
        self.delta_nulls = nulls

    def delta_index(self, attribute: str) -> BitmapIndex:
        """The delta rows of one attribute as an in-memory index (memoized)."""
        idx = self._delta_indexes.get(attribute)
        if idx is None:
            meta = self.attrs[attribute]
            idx = BitmapIndex(
                self.delta_values[attribute],
                meta.cardinality,
                base=meta.base,
                encoding=meta.encoding,
                nulls=self.delta_nulls.get(attribute),
                keep_values=False,
            )
            self._delta_indexes[attribute] = idx
            self.store.stats.delta_bitmaps += idx.num_bitmaps
        return idx

    # ------------------------------------------------------------------
    # Payload materialization
    # ------------------------------------------------------------------

    def materialize(
        self, meta: _AttrMeta, entry: tuple[int, int, int], ident: str
    ):
        """Decode one payload entry in its stored codec, verifying its CRC.

        The dense path hands the mmap pages straight to numpy
        (zero-copy); the compressed codecs copy their (already small)
        blobs out of the map.  Returns the bitmap and the payload length
        actually read.
        """
        off, length, crc = entry
        start = self.payload_start + off
        data: bytes | memoryview = memoryview(self._mm)[start : start + length]
        plan = self.store.fault_plan
        faulted = False
        if plan is not None:
            spec = plan.check("disk.read", ident=ident)
            if spec is not None:
                if spec.kind == "error":
                    raise InjectedFaultError(
                        f"injected read error on {ident}"
                    )
                if spec.kind == "torn":
                    data = bytes(data[: length // 2])
                    faulted = True
                elif spec.kind == "corrupt" and length:
                    mutated = bytearray(data)
                    mutated[plan.byte_offset(length)] ^= 0xFF
                    data = bytes(mutated)
                    faulted = True
        key = (start, length)
        if faulted or key not in self._verified:
            if zlib.crc32(data) != crc:
                raise CorruptFileError(
                    f"{self.path}: payload checksum mismatch for {ident}"
                )
            self._verified.add(key)
        stats = self.store.stats
        stats.payload_bytes_read += length
        stats.bitmaps_materialized += 1
        stats.pages_touched += _pages(length, self.store.page_size)
        if meta.codec == "dense":
            expected = 8 * ((self.nbits + 63) // 64)
            if length != expected:
                raise CorruptFileError(
                    f"{self.path}: dense payload for {ident} holds "
                    f"{length} bytes; {expected} expected for "
                    f"{self.nbits} bits"
                )
            if faulted:
                words = np.frombuffer(data, dtype="<u8")
            else:
                words = np.frombuffer(
                    self._mm, dtype="<u8", count=length // 8, offset=start
                )
            try:
                return BitVector.from_words(words, self.nbits), length
            except ValueError as exc:
                raise CorruptFileError(
                    f"{self.path}: dense payload for {ident}: {exc}"
                ) from exc
        try:
            if meta.codec == "wah":
                return WahBitVector(bytes(data), self.nbits), length
            return RoaringBitmap.deserialize(bytes(data)), length
        except (CorruptFileError, ValueError, struct.error) as exc:
            raise CorruptFileError(
                f"{self.path}: undecodable {meta.codec} payload for "
                f"{ident}: {exc}"
            ) from exc

    def verify_payloads(self) -> list[str]:
        """CRC-check every payload entry; returns problem descriptions."""
        problems = []
        for name, meta in self.attrs.items():
            entries = dict(meta.slots)
            if meta.nonnull is not None:
                entries[(0, 0)] = meta.nonnull
            for (comp, slot), entry in sorted(entries.items()):
                off, length, crc = entry
                start = self.payload_start + off
                view = memoryview(self._mm)[start : start + length]
                if zlib.crc32(view) != crc:
                    ident = (
                        f"{name}/nonnull"
                        if comp == 0
                        else f"{name}/c{comp}_s{slot}"
                    )
                    problems.append(
                        f"{self.path}: payload checksum mismatch for {ident}"
                    )
        return problems

    def close(self) -> None:
        try:
            self._mm.close()
        except BufferError:  # pragma: no cover - live zero-copy views
            # A zero-copy BitVector still references the map; the OS
            # keeps the pages alive until the arrays are released.
            pass
        except ValueError:
            pass
        self._fh.close()


def _unframe_delta(path: str, raw: bytes) -> bytes:
    """Verify and strip a delta sidecar's CRC frame."""
    if len(raw) < _DELTA_HEADER.size or raw[:4] != _DELTA_MAGIC:
        raise CorruptFileError(
            f"{path}: missing or corrupt delta frame header"
        )
    _, crc, length = _DELTA_HEADER.unpack_from(raw)
    payload = raw[_DELTA_HEADER.size :]
    if len(payload) != length:
        raise CorruptFileError(
            f"{path}: torn delta — header promises {length} payload bytes, "
            f"found {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise CorruptFileError(f"{path}: delta checksum mismatch")
    return payload


class StoreBitmapSource:
    """A lazy :class:`~repro.core.index.BitmapSource` over one attribute.

    Handed out by :meth:`IndexStore.bitmap_source`.  ``fetch`` reads the
    touched payload from the mmap (verifying its checksum on first
    materialization), merges any pending delta rows, and serves the
    bitmap in ``serve_codec`` (defaults to the codec the attribute was
    stored with, so the zero-copy/compressed-algebra path is the
    default).  Nothing is memoized here — the engine's shared cache (or
    a buffer pool) owns retention, so the store's I/O counters reflect
    bytes actually read.
    """

    def __init__(
        self,
        rfile: _RelationFile,
        attribute: str,
        serve_codec: str | None = None,
    ):
        self._rfile = rfile
        self._meta = rfile.attrs[attribute]
        self.attribute = attribute
        self.relation = rfile.relation
        codec = serve_codec if serve_codec is not None else self._meta.codec
        if codec not in _CODECS:
            raise EngineConfigError(f"unknown bitmap codec {codec!r}")
        self.bitmap_codec = codec

    # -- BitmapSource surface ------------------------------------------

    @property
    def nbits(self) -> int:
        return self._rfile.nbits + self._rfile.delta_rows

    @property
    def cardinality(self) -> int:
        return self._meta.cardinality

    @property
    def base(self) -> Base:
        return self._meta.base

    @property
    def encoding(self) -> EncodingScheme:
        return self._meta.encoding

    @property
    def compressed(self) -> bool:
        return self.bitmap_codec != "dense"

    @property
    def stored_codec(self) -> str:
        """The codec the payloads are persisted in."""
        return self._meta.codec

    @property
    def num_bitmaps(self) -> int:
        return len(self._meta.slots)

    def stored_slots(self, component: int) -> tuple[int, ...]:
        return tuple(
            sorted(s for (c, s) in self._meta.slots if c == component)
        )

    def as_compressed(self, codec: str = "wah") -> "StoreBitmapSource":
        """A view of the same payloads serving ``codec`` bitmaps."""
        return self.with_codec(codec)

    def with_codec(self, codec: str) -> "StoreBitmapSource":
        if codec == self.bitmap_codec:
            return self
        return StoreBitmapSource(self._rfile, self.attribute, codec)

    @property
    def nonnull(self):
        rf = self._rfile
        meta = self._meta
        base_part = None
        if meta.nonnull is not None:
            base_part, _ = rf.materialize(
                meta, meta.nonnull, f"{self.attribute}/nonnull"
            )
        if rf.delta_rows == 0:
            if base_part is None:
                return None
            return self._represent(_to_dense(base_part))
        delta_nn = rf.delta_index(self.attribute).nonnull
        if base_part is None and delta_nn is None:
            return None
        base_bools = (
            _to_dense(base_part).to_bools()
            if base_part is not None
            else np.ones(rf.nbits, dtype=bool)
        )
        delta_bools = (
            delta_nn.to_bools()
            if delta_nn is not None
            else np.ones(rf.delta_rows, dtype=bool)
        )
        return self._represent(
            BitVector.from_bools(np.concatenate([base_bools, delta_bools]))
        )

    def fetch(
        self,
        component: int,
        slot: int,
        stats,
        compressed: bool = False,
        codec: str | None = None,
    ):
        """Materialize one stored bitmap, recording the real bytes read."""
        if codec is None:
            codec = "wah" if compressed else self.bitmap_codec
        rf = self._rfile
        if stats.deadline is not None:
            stats.deadline.check("storage")
        try:
            entry = self._meta.slots[(component, slot)]
        except KeyError:
            raise StorageError(
                f"store holds no bitmap for {self.relation}.{self.attribute}"
                f" component {component} slot {slot}"
            ) from None
        ident = f"{self.relation}/{self.attribute}/c{component}_s{slot}"
        bitmap, length = rf.materialize(self._meta, entry, ident)
        if rf.delta_rows:
            delta = rf.delta_index(self.attribute)
            combined = np.concatenate(
                [
                    _to_dense(bitmap).to_bools(),
                    delta.components[component - 1].bitmap(slot).to_bools(),
                ]
            )
            bitmap = _encode_dense(BitVector.from_bools(combined), codec)
        elif codec != self._meta.codec:
            bitmap = _encode_dense(_to_dense(bitmap), codec)
        stats.record_scan(nbytes=length)
        trace = stats.trace
        if trace is not None:
            trace.event(
                "store.fetch",
                kind="fetch",
                component=component,
                slot=slot,
                nbytes=length,
                source=f"store.{self._meta.codec}",
                relation=self.relation,
                attribute=self.attribute,
                delta_rows=rf.delta_rows,
            )
        return bitmap

    def _represent(self, vector: BitVector):
        return _encode_dense(vector, self.bitmap_codec)

    def __repr__(self) -> str:
        return (
            f"StoreBitmapSource({self.relation}.{self.attribute}, "
            f"{self.nbits} bits, codec={self.bitmap_codec!r})"
        )


class StoredColumn(Column):
    """A :class:`Column` reconstructed from a store's value dictionary.

    Holds no row values — only the sorted dictionary — which is exactly
    what predicate translation (:meth:`Column.code_bounds`) needs.  Any
    path that requires the raw rows (full scans, verification) must go
    to the original relation.
    """

    def __init__(
        self,
        name: str,
        dictionary: np.ndarray,
        num_rows: int,
        value_size_bytes: int,
    ):
        self.name = name
        self.values = None
        self.dictionary = dictionary
        self.codes = None
        self.value_size_bytes = value_size_bytes
        self._stored_rows = num_rows

    @property
    def num_rows(self) -> int:
        return self._stored_rows

    def __repr__(self) -> str:
        return (
            f"StoredColumn({self.name!r}, rows={self.num_rows}, "
            f"cardinality={self.cardinality})"
        )


class StoreRelation(Relation):
    """A relation view reconstructed from a store's dictionaries.

    Enough surface for the engine to register and translate predicates
    against a persisted index without the original data: column
    dictionaries, row counts, and value widths.  :meth:`scan` raises —
    there are no raw rows to scan, so verification and scan-based plans
    are unavailable on store-backed relations.
    """

    def __init__(self, name: str, columns: list[StoredColumn], num_rows: int):
        self.name = name
        self.columns = {col.name: col for col in columns}
        self._rows = num_rows

    def scan(self, attribute: str, op: str, value) -> np.ndarray:
        raise StorageError(
            f"relation {self.name!r} is store-backed; raw rows are not "
            f"persisted, so full scans (and scan verification) need the "
            f"original relation"
        )


class IndexStore:
    """A directory of persistent, mmap-backed bitmap index files.

    One ``.rbix`` file per relation; see the module docstring for the
    format.  Implements the :class:`repro.storage.Storage` protocol, so
    a :class:`~repro.engine.QueryEngine` constructed with
    ``storage=IndexStore(...)`` serves queries straight off the files.

    Parameters
    ----------
    root:
        Directory holding the index files (created if missing).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; the store consults the
        ``disk.read`` seam per payload materialization and ``disk.write``
        before every atomic rename, so chaos tests can inject torn reads,
        bit flips, and mid-write crashes.
    page_size:
        Page granularity of the ``pages_touched`` counter.
    """

    def __init__(
        self,
        root: str,
        *,
        fault_plan: FaultPlan | None = None,
        page_size: int = 4096,
    ):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.fault_plan = fault_plan
        self.page_size = page_size
        self.stats = StoreStats()
        self._files: dict[str, _RelationFile] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every open mmap and file handle."""
        self.invalidate()

    def invalidate(self, relation: str | None = None) -> None:
        """Drop open file state; the next access reopens from disk."""
        if relation is None:
            for rfile in self._files.values():
                rfile.close()
            self._files.clear()
            return
        rfile = self._files.pop(relation, None)
        if rfile is not None:
            rfile.close()

    def __enter__(self) -> "IndexStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def relations(self) -> list[str]:
        """Names of relations with a stored index file."""
        out = []
        for name in os.listdir(self.root):
            if name.endswith(_SUFFIX) and not name.startswith(".tmp-"):
                out.append(name[: -len(_SUFFIX)])
        return sorted(out)

    def attributes(self, relation: str) -> list[str]:
        """Indexed attributes of one stored relation."""
        return list(self._file(relation).attrs)

    def has(self, relation: str, attribute: str | None = None) -> bool:
        if not os.path.isfile(self._main_path(relation)):
            return False
        if attribute is None:
            return True
        return attribute in self._file(relation).attrs

    def delta_rows(self, relation: str) -> int:
        """Rows pending in the delta sidecar (0 when compacted)."""
        return self._file(relation).delta_rows

    def total_bytes(self, relation: str | None = None) -> int:
        """Physical bytes on disk (index files + delta sidecars)."""
        names = [relation] if relation is not None else self.relations()
        total = 0
        for name in names:
            for path in (self._main_path(name), self._delta_path(name)):
                try:
                    total += os.path.getsize(path)
                except FileNotFoundError:
                    pass
        return total

    # ------------------------------------------------------------------
    # Storage protocol (see repro.storage.Storage)
    # ------------------------------------------------------------------

    def read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """Real I/O pays real wall-clock time; nothing is modeled."""
        return 0.0

    def bitmap_source(
        self, relation: str, attribute: str
    ) -> StoreBitmapSource | None:
        """A lazy source for one attribute, or ``None`` if not stored.

        A missing file or attribute returns ``None`` (the caller builds
        in memory); a *corrupt* file raises
        :class:`~repro.errors.CorruptFileError` — silently falling back
        would mask data loss.
        """
        if not os.path.isfile(self._main_path(relation)):
            return None
        rfile = self._file(relation)
        if attribute not in rfile.attrs:
            return None
        return StoreBitmapSource(rfile, attribute)

    def io_snapshot(self) -> dict:
        out = self.stats.as_dict()
        out["backend"] = "store"
        out["root"] = self.root
        return out

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(
        self,
        relation: Relation,
        attributes: list[str] | None = None,
        *,
        codec: str | dict = "wah",
        base: Base | dict | None = None,
        encoding: EncodingScheme | dict = EncodingScheme.RANGE,
    ) -> dict:
        """Index ``attributes`` of ``relation`` and persist them in one file.

        ``codec`` / ``base`` / ``encoding`` apply to every attribute, or
        may be dicts keyed by attribute name for per-attribute choices.
        Replaces any existing file for the relation atomically (and
        discards a pending delta — the new file supersedes it).  Returns
        a summary dict (per-attribute bitmap counts and payload bytes).
        """
        if attributes is None:
            attributes = list(relation.columns)
        if not attributes:
            raise ValueOutOfRangeError("build needs at least one attribute")

        def per_attr(option, attr, what):
            if isinstance(option, dict):
                try:
                    return option[attr]
                except KeyError:
                    raise EngineConfigError(
                        f"no {what} given for attribute {attr!r}"
                    ) from None
            return option

        payload_attrs: dict[str, dict] = {}
        summary: dict[str, dict] = {}
        for attr in attributes:
            column = relation.column(attr)
            attr_codec = per_attr(codec, attr, "codec")
            if attr_codec not in _CODECS:
                raise EngineConfigError(
                    f"unknown bitmap codec {attr_codec!r}"
                )
            index = BitmapIndex(
                column.codes,
                column.cardinality,
                base=per_attr(base, attr, "base"),
                encoding=per_attr(encoding, attr, "encoding"),
                keep_values=False,
            )
            bitmaps = {}
            for comp in range(1, index.base.n + 1):
                for slot in index.stored_slots(comp):
                    dense = index.components[comp - 1].bitmap(slot)
                    bitmaps[(comp, slot)] = _encode_dense(dense, attr_codec)
            payload_attrs[attr] = {
                "cardinality": column.cardinality,
                "base": index.base,
                "encoding": index.encoding,
                "codec": attr_codec,
                "value_size_bytes": column.value_size_bytes,
                "dictionary": column.dictionary,
                "bitmaps": bitmaps,
                "nonnull": index.nonnull,
            }
            summary[attr] = {
                "codec": attr_codec,
                "num_bitmaps": len(bitmaps),
                "payload_bytes": sum(
                    len(_serialize_bitmap(b, attr_codec))
                    for b in bitmaps.values()
                ),
            }
        blob = _pack_relation_file(relation.name, relation.num_rows, payload_attrs)
        self._atomic_write(
            self._main_path(relation.name), blob, relation.name + _SUFFIX
        )
        delta = self._delta_path(relation.name)
        if os.path.exists(delta):
            os.unlink(delta)
        self.invalidate(relation.name)
        return {
            "relation": relation.name,
            "rows": relation.num_rows,
            "file_bytes": len(blob),
            "attributes": summary,
        }

    # ------------------------------------------------------------------
    # Incremental append + compaction
    # ------------------------------------------------------------------

    def append(
        self,
        relation: str,
        rows: dict,
        *,
        nulls: dict | None = None,
    ) -> int:
        """Append rows to the delta sidecar; returns the new total row count.

        ``rows`` maps every stored attribute to its new values (actual
        values when the attribute has a value dictionary, ranks
        otherwise); ``nulls`` optionally maps attributes to boolean NULL
        masks.  Values must already exist in the stored dictionary — a
        new distinct value changes the attribute's cardinality and
        therefore needs a rebuild.  The write is crash-atomic: a crash
        mid-append leaves the previous delta (and the base file) intact.
        """
        rfile = self._file(relation)
        if set(rows) != set(rfile.attrs):
            raise ValueOutOfRangeError(
                f"append must cover every stored attribute; expected "
                f"{sorted(rfile.attrs)}, got {sorted(rows)}"
            )
        nulls = nulls or {}
        lengths = {len(np.asarray(v)) for v in rows.values()}
        if len(lengths) != 1 or 0 in lengths:
            raise ValueOutOfRangeError(
                "append needs the same nonzero number of rows per attribute"
            )
        (nrows,) = lengths
        new_values: dict[str, np.ndarray] = {}
        new_nulls: dict[str, np.ndarray] = {}
        for attr, meta in rfile.attrs.items():
            mask = nulls.get(attr)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if len(mask) != nrows:
                    raise ValueOutOfRangeError(
                        f"null mask for {attr!r} has {len(mask)} entries; "
                        f"{nrows} rows appended"
                    )
            new_values[attr] = _ranks_for(meta, rows[attr], mask)
            if mask is not None and mask.any():
                new_nulls[attr] = mask
        # Merge with the existing delta and rewrite the sidecar whole —
        # appends are small relative to the base, and a single framed
        # file keeps recovery trivial.
        merged_values = {}
        merged_nulls = {}
        old_rows = rfile.delta_rows
        for attr in rfile.attrs:
            old_vals = (
                rfile.delta_values.get(attr, np.empty(0, dtype=np.int64))
                if old_rows
                else np.empty(0, dtype=np.int64)
            )
            merged_values[attr] = np.concatenate(
                [old_vals, new_values[attr]]
            )
            old_mask = rfile.delta_nulls.get(attr)
            new_mask = new_nulls.get(attr)
            if old_mask is not None or new_mask is not None:
                merged_nulls[attr] = np.concatenate(
                    [
                        old_mask
                        if old_mask is not None
                        else np.zeros(old_rows, dtype=bool),
                        new_mask
                        if new_mask is not None
                        else np.zeros(nrows, dtype=bool),
                    ]
                )
        total_delta = old_rows + nrows
        payload = json.dumps(
            {
                "relation": relation,
                "base_nbits": rfile.nbits,
                "rows": total_delta,
                "attributes": {
                    attr: {
                        "values": [int(v) for v in merged_values[attr]],
                        "nulls": (
                            [bool(b) for b in merged_nulls[attr]]
                            if attr in merged_nulls
                            else None
                        ),
                    }
                    for attr in rfile.attrs
                },
            },
            separators=(",", ":"),
        ).encode("utf-8")
        blob = (
            _DELTA_HEADER.pack(_DELTA_MAGIC, zlib.crc32(payload), len(payload))
            + payload
        )
        self._atomic_write(
            self._delta_path(relation), blob, relation + _DELTA_SUFFIX
        )
        total = rfile.nbits + total_delta
        self.invalidate(relation)
        self.stats.appends += 1
        return total

    def compact(self, relation: str | None = None) -> dict:
        """Fold delta rows into the base file(s); returns a summary.

        Rewrites each touched ``.rbix`` atomically, then deletes the
        sidecar.  A crash between the two steps leaves a *stale* delta
        next to the new file; opens detect it via the recorded base row
        count and ignore it, so compaction is idempotent and never
        double-applies.
        """
        if relation is None:
            return {
                name: self.compact(name)
                for name in self.relations()
            }
        rfile = self._file(relation)
        if rfile.delta_rows == 0:
            return {"relation": relation, "compacted": False, "rows": rfile.nbits}
        new_nbits = rfile.nbits + rfile.delta_rows
        payload_attrs: dict[str, dict] = {}
        for attr, meta in rfile.attrs.items():
            delta = rfile.delta_index(attr)
            bitmaps = {}
            for (comp, slot), entry in sorted(meta.slots.items()):
                base_bits, _ = rfile.materialize(
                    meta, entry, f"{relation}/{attr}/c{comp}_s{slot}"
                )
                combined = np.concatenate(
                    [
                        _to_dense(base_bits).to_bools(),
                        delta.components[comp - 1].bitmap(slot).to_bools(),
                    ]
                )
                bitmaps[(comp, slot)] = _encode_dense(
                    BitVector.from_bools(combined), meta.codec
                )
            nonnull = None
            base_nn = (
                rfile.materialize(meta, meta.nonnull, f"{attr}/nonnull")[0]
                if meta.nonnull is not None
                else None
            )
            if base_nn is not None or delta.nonnull is not None:
                nonnull = BitVector.from_bools(
                    np.concatenate(
                        [
                            _to_dense(base_nn).to_bools()
                            if base_nn is not None
                            else np.ones(rfile.nbits, dtype=bool),
                            delta.nonnull.to_bools()
                            if delta.nonnull is not None
                            else np.ones(rfile.delta_rows, dtype=bool),
                        ]
                    )
                )
            payload_attrs[attr] = {
                "cardinality": meta.cardinality,
                "base": meta.base,
                "encoding": meta.encoding,
                "codec": meta.codec,
                "value_size_bytes": meta.value_size_bytes,
                "dictionary": meta.dictionary,
                "bitmaps": bitmaps,
                "nonnull": nonnull,
            }
        folded = rfile.delta_rows
        blob = _pack_relation_file(relation, new_nbits, payload_attrs)
        self._atomic_write(
            self._main_path(relation), blob, relation + _SUFFIX
        )
        # Crash window: the new base is live but the delta still exists.
        # Its recorded base_nbits no longer matches, so reopens ignore it
        # (stale) and this unlink is safely re-runnable.
        try:
            os.unlink(self._delta_path(relation))
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._fsync_dir()
        self.invalidate(relation)
        self.stats.compactions += 1
        return {
            "relation": relation,
            "compacted": True,
            "rows": new_nbits,
            "delta_rows_folded": folded,
            "file_bytes": len(blob),
        }

    # ------------------------------------------------------------------
    # Relation views
    # ------------------------------------------------------------------

    def relation_view(self, relation: str) -> StoreRelation:
        """A :class:`StoreRelation` for registering with a query engine.

        Columns carry the persisted value dictionaries, so predicate
        translation works without the original data; raw-row paths
        (scans, verification) raise.
        """
        rfile = self._file(relation)
        nbits = rfile.nbits + rfile.delta_rows
        columns = []
        for name, meta in rfile.attrs.items():
            dictionary = meta.dictionary
            if dictionary is None:
                dictionary = np.arange(meta.cardinality, dtype=np.int64)
            columns.append(
                StoredColumn(
                    name, dictionary, nbits, meta.value_size_bytes
                )
            )
        return StoreRelation(relation, columns, nbits)

    # ------------------------------------------------------------------
    # Integrity: verify / quarantine / scrub
    # ------------------------------------------------------------------

    def verify(self, relation: str) -> list[str]:
        """Deep-check one relation's files; returns problem descriptions.

        Validates the header, dictionary, every payload entry's bounds
        and checksum, and the delta sidecar's frame.  An empty list means
        the files read back intact.
        """
        try:
            rfile = _RelationFile(self, relation)
        except FileMissingError:
            raise
        except CorruptFileError as exc:
            return [str(exc)]
        try:
            return rfile.verify_payloads()
        finally:
            rfile.close()

    def quarantine(self, relation: str) -> list[str]:
        """Move a relation's files into ``.quarantine/`` for inspection.

        The live paths stop existing — a rebuild can rewrite them — while
        the bad bytes survive.  Returns the sheltered filesystem paths.
        """
        shelter = os.path.join(self.root, _QUARANTINE_DIR)
        os.makedirs(shelter, exist_ok=True)
        self.invalidate(relation)
        moved = []
        for path in (self._main_path(relation), self._delta_path(relation)):
            if not os.path.isfile(path):
                continue
            target = os.path.join(shelter, os.path.basename(path))
            suffix = 0
            while os.path.exists(target):
                suffix += 1
                target = os.path.join(
                    shelter, f"{os.path.basename(path)}.{suffix}"
                )
            os.replace(path, target)
            log.warning("quarantined corrupt index file %s -> %s", path, target)
            moved.append(target)
        if not moved:
            raise FileMissingError(
                f"no stored index for relation {relation!r}"
            )
        return moved

    def scrub(self, quarantine: bool = True) -> list[str]:
        """Verify every relation; returns the names of corrupt ones.

        With ``quarantine=True`` (default) each corrupt relation's files
        are moved to ``.quarantine/`` as found, so the returned relations
        no longer exist in the store and can be rebuilt from source.
        """
        corrupt = []
        for relation in self.relations():
            problems = self.verify(relation)
            if problems:
                for problem in problems:
                    log.warning("scrub: %s", problem)
                corrupt.append(relation)
                if quarantine:
                    self.quarantine(relation)
        return corrupt

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_name(self, relation: str) -> str:
        if (
            not relation
            or relation in (".", "..")
            or "/" in relation
            or os.sep in relation
            or relation.startswith(".tmp-")
        ):
            raise StorageError(f"illegal relation name {relation!r}")
        return relation

    def _main_path(self, relation: str) -> str:
        return os.path.join(self.root, self._check_name(relation) + _SUFFIX)

    def _delta_path(self, relation: str) -> str:
        return os.path.join(
            self.root, self._check_name(relation) + _DELTA_SUFFIX
        )

    def _file(self, relation: str) -> _RelationFile:
        self._check_name(relation)
        rfile = self._files.get(relation)
        if rfile is None:
            rfile = _RelationFile(self, relation)
            self._files[relation] = rfile
        return rfile

    def _atomic_write(self, path: str, blob: bytes, ident: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            if self.fault_plan is not None:
                spec = self.fault_plan.check("disk.write", ident=ident)
                if spec is not None:
                    # Simulated crash after the temp write, before the
                    # rename: the previous contents must stay intact.
                    raise InjectedFaultError(
                        f"injected write failure before rename of {ident}"
                    )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self._fsync_dir()
        self.stats.bytes_written += len(blob)

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def __repr__(self) -> str:
        return f"IndexStore({self.root!r}, relations={self.relations()})"


def _ranks_for(meta: _AttrMeta, values, mask: np.ndarray | None) -> np.ndarray:
    """Translate appended values to ranks against the stored dictionary."""
    if meta.dictionary is None:
        ranks = np.asarray(values, dtype=np.int64).copy()
        if mask is not None:
            ranks[mask] = 0
        if ranks.size and (ranks.min() < 0 or ranks.max() >= meta.cardinality):
            raise ValueOutOfRangeError(
                f"appended ranks for {meta.name!r} outside "
                f"[0, {meta.cardinality})"
            )
        return ranks
    try:
        arr = np.asarray(values, dtype=meta.dictionary.dtype)
    except (TypeError, ValueError) as exc:
        raise ValueOutOfRangeError(
            f"appended values for {meta.name!r} do not fit dtype "
            f"{meta.dictionary.dtype}: {exc}"
        ) from exc
    pos = np.searchsorted(meta.dictionary, arr)
    clipped = np.minimum(pos, len(meta.dictionary) - 1)
    known = meta.dictionary[clipped] == arr
    if mask is not None:
        known = known | mask
    if not known.all():
        missing = np.asarray(values)[~known][:5]
        raise ValueOutOfRangeError(
            f"appended values for {meta.name!r} are not in the stored "
            f"dictionary (new distinct values need a rebuild): "
            f"{missing.tolist()}"
        )
    ranks = clipped.astype(np.int64)
    if mask is not None:
        ranks[mask] = 0
    return ranks


def _pack_relation_file(name: str, nbits: int, attrs: dict[str, dict]) -> bytes:
    """Assemble one complete ``.rbix`` file image.

    ``attrs[attr]`` carries ``cardinality``, ``base`` (:class:`Base`),
    ``encoding`` (:class:`EncodingScheme`), ``codec``,
    ``value_size_bytes``, ``dictionary`` (array or ``None``),
    ``bitmaps`` (``{(component, slot): bitmap}`` in the codec's type),
    and ``nonnull`` (dense :class:`BitVector` or ``None``).
    """
    chunks: list[bytes] = []
    offset = 0

    def add(payload: bytes) -> tuple[int, int, int]:
        nonlocal offset
        entry = (offset, len(payload), zlib.crc32(payload))
        chunks.append(payload)
        offset += len(payload)
        return entry

    meta_attrs: dict[str, dict] = {}
    for attr, spec in attrs.items():
        base: Base = spec["base"]
        components: list[dict] = [
            {"base": base.component(i), "slots": {}}
            for i in range(1, base.n + 1)
        ]
        for (comp, slot), bitmap in sorted(spec["bitmaps"].items()):
            entry = add(_serialize_bitmap(bitmap, spec["codec"]))
            components[comp - 1]["slots"][str(slot)] = list(entry)
        nonnull = spec.get("nonnull")
        nonnull_entry = (
            list(add(_serialize_bitmap(
                _encode_dense(nonnull, spec["codec"])
                if isinstance(nonnull, BitVector)
                else nonnull,
                spec["codec"],
            )))
            if nonnull is not None
            else None
        )
        meta_attrs[attr] = {
            "cardinality": spec["cardinality"],
            "base": list(base.bases),
            "encoding": spec["encoding"].value,
            "codec": spec["codec"],
            "value_size_bytes": spec["value_size_bytes"],
            "dictionary": _dictionary_to_json(spec.get("dictionary")),
            "components": components,
            "nonnull": nonnull_entry,
        }
    dictionary = json.dumps(
        {"relation": name, "nbits": nbits, "attributes": meta_attrs},
        separators=(",", ":"),
    ).encode("utf-8")
    header_wo_crc = _HEADER.pack(
        _MAGIC,
        _VERSION,
        0,
        _HEADER.size,
        len(dictionary),
        zlib.crc32(dictionary),
        0,
    )[: _HEADER.size - 4]
    header = header_wo_crc + struct.pack("<I", zlib.crc32(header_wo_crc))
    return header + dictionary + b"".join(chunks)
