"""The paper's three physical bitmap-index organizations (Section 9.1).

A ``k``-component index over an ``N``-record relation is an
``N x n`` bit-matrix (``n`` = total stored bitmaps).  The three schemes
serialize it differently:

- :class:`BitmapLevelStorage` (**BS**) — each bitmap (column) in its own
  ``N``-bit file; a query reads only the bitmaps it needs.
- :class:`ComponentLevelStorage` (**CS**) — each component's
  ``N x n_i`` sub-matrix in one row-major file; any query touching a
  component scans that whole file and extracts the needed columns.
- :class:`IndexLevelStorage` (**IS**) — the whole matrix in one row-major
  file.  With all base numbers equal to 2 this is exactly the projection
  index.

Every scheme accepts a codec; the compressed variants are the paper's
cBS/cCS/cIS.  Each scheme implements the bitmap-source protocol of
:mod:`repro.core.index`, so the Section 3 evaluation algorithms run
directly against physical storage.  Row-major schemes keep a per-query
decode cache — call :meth:`StorageScheme.reset_cache` between queries so a
file is charged exactly one physical scan per query, as the paper assumes.

On-disk format: every bitmap file carries a 32-byte header (magic,
version, row/width geometry, codec name, payload length) that is verified
on read; corrupt or truncated files raise
:class:`~repro.errors.CorruptFileError`.
"""

from __future__ import annotations

import abc
import json
import struct

import numpy as np

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.compression import Codec, get_codec
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme, stored_bitmap_count
from repro.core.index import BitmapIndex
from repro.errors import CorruptFileError, StorageError
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk

_MAGIC = b"RBF1"
# magic(4) version(B) reserved(B) nbits(Q) width(I) payload_len(Q) codec(10s)
_HEADER = struct.Struct("<4sBBQIQ10s")
_VERSION = 1

#: Size in bytes of the verified per-file header.
HEADER_SIZE = _HEADER.size


def _pack_matrix(matrix: np.ndarray) -> bytes:
    """Serialize a boolean ``N x w`` matrix row-major, bits little-endian."""
    return np.packbits(matrix.reshape(-1), bitorder="little").tobytes()


def _unpack_matrix(raw: bytes, nbits: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_matrix`."""
    expected = (nbits * width + 7) // 8
    if len(raw) != expected:
        raise CorruptFileError(
            f"bit-matrix payload is {len(raw)} bytes; expected {expected}"
        )
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[: nbits * width].reshape(nbits, width).astype(bool)


def _frame(data: bytes, nbits: int, width: int, codec: Codec) -> bytes:
    """Wrap an encoded payload in the verified file header."""
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        0,
        nbits,
        width,
        len(data),
        codec.name.encode("ascii")[:10].ljust(10, b"\0"),
    )
    return header + data


def _unframe(blob: bytes, path: str) -> tuple[bytes, int, int, str]:
    """Verify a file header; return (payload, nbits, width, codec_name)."""
    if len(blob) < _HEADER.size:
        raise CorruptFileError(f"{path}: shorter than its header")
    magic, version, _, nbits, width, payload_len, codec_raw = _HEADER.unpack_from(
        blob
    )
    if magic != _MAGIC:
        raise CorruptFileError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise CorruptFileError(f"{path}: unsupported version {version}")
    payload = blob[_HEADER.size :]
    if len(payload) != payload_len:
        raise CorruptFileError(
            f"{path}: payload is {len(payload)} bytes, header says {payload_len}"
        )
    return payload, nbits, width, codec_raw.rstrip(b"\0").decode("ascii")


#: Compressed serving representations, by codec name.
_SERVE_CLASSES: dict[str, type] = {
    "wah": WahBitVector,
    "roaring": RoaringBitmap,
}


def _normalize_serving(compressed: bool | str) -> str:
    """Resolve a ``compressed=`` argument to a serving-codec name.

    Accepts the legacy booleans (``True`` means WAH, the original
    compressed execution mode) or an explicit codec name
    (``"dense"``/``"wah"``/``"roaring"``).
    """
    if compressed is False:
        return "dense"
    if compressed is True:
        return "wah"
    if compressed == "dense" or compressed in _SERVE_CLASSES:
        return compressed
    known = ", ".join(["dense", *sorted(_SERVE_CLASSES)])
    raise StorageError(
        f"unknown serving codec {compressed!r}; expected one of: {known}"
    )


class StorageScheme(abc.ABC):
    """Common machinery of the three physical organizations.

    With ``compressed=True`` (or a codec name, ``"wah"``/``"roaring"``)
    the scheme serves compressed bitmaps — the compressed execution modes
    of :mod:`repro.core.evaluation`.  When the file codec matches the
    serving codec, :class:`BitmapLevelStorage` hands the stored payload
    out *without decoding* — the whole read path stays in the compressed
    domain; other codecs and the row-major schemes decode and re-encode,
    which still lets downstream operations run compressed.
    """

    kind: str

    def __init__(
        self,
        disk: SimulatedDisk,
        name: str,
        base: Base,
        encoding: EncodingScheme,
        nbits: int,
        cardinality: int,
        codec: Codec,
        nonnull: BitVector | None = None,
        compressed: bool | str = False,
    ):
        self.disk = disk
        self.name = name
        self.base = base
        self.encoding = encoding
        self.nbits = nbits
        self.cardinality = cardinality
        self.codec = codec
        self._nonnull = nonnull
        self._nonnull_compressed: WahBitVector | RoaringBitmap | None = None
        self.bitmap_codec = _normalize_serving(compressed)
        self.compressed = self.bitmap_codec != "dense"
        self._cache: dict[str, np.ndarray] = {}

    @property
    def nonnull(self) -> BitVector | WahBitVector | RoaringBitmap | None:
        """The existence bitmap, in the representation the scheme serves."""
        if self._nonnull is None:
            return None
        if self.compressed:
            if self._nonnull_compressed is None:
                self._nonnull_compressed = _SERVE_CLASSES[
                    self.bitmap_codec
                ].from_bitvector(self._nonnull)
            return self._nonnull_compressed
        return self._nonnull

    def _serve(self, bitmap: BitVector) -> BitVector | WahBitVector | RoaringBitmap:
        """Convert a decoded bitmap to the representation being served."""
        if self.compressed:
            return _SERVE_CLASSES[self.bitmap_codec].from_bitvector(bitmap)
        return bitmap

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @classmethod
    def write(
        cls,
        disk: SimulatedDisk,
        name: str,
        index: BitmapIndex,
        codec: str | Codec | None = None,
    ) -> "StorageScheme":
        """Serialize ``index`` under path prefix ``name`` and return a reader."""
        codec_obj = get_codec(codec)
        scheme = cls(
            disk,
            name,
            index.base,
            index.encoding,
            index.nbits,
            index.cardinality,
            codec_obj,
            nonnull=index.nonnull,
        )
        scheme._write_payload(index)
        if index.nonnull is not None:
            disk.write(
                f"{name}/nn",
                _frame(index.nonnull.to_bytes(), index.nbits, 1, get_codec(None)),
            )
        disk.write(f"{name}/manifest", scheme._manifest_bytes())
        return scheme

    def _manifest_bytes(self) -> bytes:
        manifest = {
            "kind": self.kind,
            "codec": self.codec.name,
            "nbits": self.nbits,
            "cardinality": self.cardinality,
            "base": list(self.base.bases),
            "encoding": self.encoding.value,
            "has_nulls": self.nonnull is not None,
        }
        return json.dumps(manifest, sort_keys=True).encode("ascii")

    @abc.abstractmethod
    def _write_payload(self, index: BitmapIndex) -> None:
        """Write the bitmap files of the concrete scheme."""

    # ------------------------------------------------------------------
    # Reading (bitmap-source protocol)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector | WahBitVector | RoaringBitmap:
        """Read stored bitmap ``slot`` of ``component`` from disk."""

    def reset_cache(self) -> None:
        """Drop per-query decoded file caches (call between queries)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def data_files(self) -> list[str]:
        """Bitmap data files of this scheme (manifest and nn excluded)."""
        skip = {f"{self.name}/manifest", f"{self.name}/nn"}
        return [p for p in self.disk.list_files(self.name + "/") if p not in skip]

    @property
    def stored_bytes(self) -> int:
        """Total on-disk bytes of the bitmap data files."""
        return sum(self.disk.size_of(p) for p in self.data_files())

    @property
    def file_count(self) -> int:
        return len(self.data_files())

    def _slot_layout(self, component: int) -> tuple[int, ...]:
        """Stored slots of a component, in file column order."""
        b = self.base.component(component)
        if self.encoding is EncodingScheme.EQUALITY and b == 2:
            return (1,)
        return tuple(range(stored_bitmap_count(b, self.encoding)))

    def _read_matrix(
        self, path: str, width: int, stats: ExecutionStats
    ) -> np.ndarray:
        """Read + decode a row-major file, caching the result per query."""
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        trace = stats.trace
        blob = self.disk.read(path)
        stats.files_opened += 1
        stats.bytes_read += len(blob)
        if trace is not None:
            trace.event(
                "storage.read",
                kind="fetch",
                file=path,
                scheme=self.kind,
                nbytes=len(blob),
            )
        payload, nbits, file_width, codec_name = _unframe(blob, path)
        if nbits != self.nbits or file_width != width:
            raise CorruptFileError(
                f"{path}: geometry {nbits}x{file_width} does not match the "
                f"manifest ({self.nbits}x{width})"
            )
        if trace is not None:
            with trace.span(
                "decode", kind="decode", codec=codec_name, encoded=len(payload)
            ) as span:
                raw = get_codec(codec_name).decode(payload)
                span.attrs["decoded"] = len(raw)
        else:
            raw = get_codec(codec_name).decode(payload)
        stats.decompressed_bytes += len(raw)
        matrix = _unpack_matrix(raw, nbits, width)
        self._cache[path] = matrix
        return matrix


class BitmapLevelStorage(StorageScheme):
    """BS: one file per bitmap — reads exactly the bitmaps a query needs."""

    kind = "BS"

    def _bitmap_path(self, component: int, slot: int) -> str:
        return f"{self.name}/c{component}_s{slot}"

    def _write_payload(self, index: BitmapIndex) -> None:
        roaring = self.codec.name == "roaring"
        for i in range(1, self.base.n + 1):
            comp = index.components[i - 1]
            for slot in comp.stored_slots():
                bitmap = comp.bitmap(slot)
                if roaring:
                    # Serialize at the exact bit length (the byte-stream
                    # codec API would round nbits up to a whole byte),
                    # so the compressed-serving read path can hand the
                    # payload out as-is.
                    data = RoaringBitmap.from_bitvector(bitmap).serialize()
                else:
                    data = self.codec.encode(bitmap.to_bytes())
                self.disk.write(
                    self._bitmap_path(i, slot),
                    _frame(data, self.nbits, 1, self.codec),
                )

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector | WahBitVector | RoaringBitmap:
        path = self._bitmap_path(component, slot)
        trace = stats.trace
        blob = self.disk.read(path)
        stats.record_scan(nbytes=len(blob))
        stats.files_opened += 1
        if trace is not None:
            trace.event(
                "storage.read",
                kind="fetch",
                file=path,
                scheme=self.kind,
                component=component,
                slot=slot,
                nbytes=len(blob),
                codec=self.codec.name,
            )
        payload, nbits, width, codec_name = _unframe(blob, path)
        if nbits != self.nbits or width != 1:
            raise CorruptFileError(f"{path}: unexpected geometry")
        if self.compressed and codec_name == self.bitmap_codec:
            # The stored payload already *is* the serving representation's
            # wire format: serve it as-is.  No decode, so nothing is
            # charged to ``decompressed_bytes`` — the defining economy of
            # compressed execution over codec-matched storage.
            if codec_name == "wah":
                return WahBitVector(payload, self.nbits)
            bitmap = RoaringBitmap.deserialize(payload)
            if bitmap.nbits != self.nbits:
                raise CorruptFileError(
                    f"{path}: roaring payload is {bitmap.nbits} bits; "
                    f"expected {self.nbits}"
                )
            return bitmap
        if trace is not None:
            with trace.span(
                "decode", kind="decode", codec=codec_name, encoded=len(payload)
            ) as span:
                raw = get_codec(codec_name).decode(payload)
                span.attrs["decoded"] = len(raw)
        else:
            raw = get_codec(codec_name).decode(payload)
        stats.decompressed_bytes += len(raw)
        if len(raw) != (self.nbits + 7) // 8:
            raise CorruptFileError(f"{path}: bitmap payload length mismatch")
        return self._serve(BitVector.from_bytes(raw, self.nbits))


class ComponentLevelStorage(StorageScheme):
    """CS: one row-major bit-matrix file per component."""

    kind = "CS"

    def _component_path(self, component: int) -> str:
        return f"{self.name}/c{component}"

    def _write_payload(self, index: BitmapIndex) -> None:
        for i in range(1, self.base.n + 1):
            comp = index.components[i - 1]
            slots = self._slot_layout(i)
            matrix = np.column_stack(
                [comp.bitmap(slot).to_bools() for slot in slots]
            )
            data = self.codec.encode(_pack_matrix(matrix))
            self.disk.write(
                self._component_path(i),
                _frame(data, self.nbits, len(slots), self.codec),
            )

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector | WahBitVector | RoaringBitmap:
        slots = self._slot_layout(component)
        try:
            column = slots.index(slot)
        except ValueError:
            raise StorageError(
                f"slot {slot} is not stored for component {component}"
            ) from None
        matrix = self._read_matrix(
            self._component_path(component), len(slots), stats
        )
        stats.scans += 1
        if stats.trace is not None:
            stats.trace.event(
                "scheme.extract",
                kind="fetch",
                scheme=self.kind,
                component=component,
                slot=slot,
            )
        return self._serve(BitVector.from_bools(matrix[:, column]))


class IndexLevelStorage(StorageScheme):
    """IS: the whole index in one row-major bit-matrix file."""

    kind = "IS"

    def _index_path(self) -> str:
        return f"{self.name}/index"

    def _total_width(self) -> int:
        return sum(len(self._slot_layout(i)) for i in range(1, self.base.n + 1))

    def _column_of(self, component: int, slot: int) -> int:
        offset = 0
        for i in range(1, component):
            offset += len(self._slot_layout(i))
        slots = self._slot_layout(component)
        try:
            return offset + slots.index(slot)
        except ValueError:
            raise StorageError(
                f"slot {slot} is not stored for component {component}"
            ) from None

    def _write_payload(self, index: BitmapIndex) -> None:
        matrix = index.bit_matrix()
        data = self.codec.encode(_pack_matrix(matrix))
        self.disk.write(
            self._index_path(),
            _frame(data, self.nbits, matrix.shape[1], self.codec),
        )

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector | WahBitVector | RoaringBitmap:
        column = self._column_of(component, slot)
        matrix = self._read_matrix(self._index_path(), self._total_width(), stats)
        stats.scans += 1
        if stats.trace is not None:
            stats.trace.event(
                "scheme.extract",
                kind="fetch",
                scheme=self.kind,
                component=component,
                slot=slot,
            )
        return self._serve(BitVector.from_bools(matrix[:, column]))


_SCHEMES: dict[str, type[StorageScheme]] = {
    "BS": BitmapLevelStorage,
    "CS": ComponentLevelStorage,
    "IS": IndexLevelStorage,
}


def write_index(
    disk: SimulatedDisk,
    name: str,
    index: BitmapIndex,
    scheme: str = "BS",
    codec: str | Codec | None = None,
) -> StorageScheme:
    """Serialize ``index`` to ``disk`` under the named scheme.

    ``scheme`` is ``'BS'``, ``'CS'``, or ``'IS'`` (case-insensitive; a
    leading ``c`` selects zlib compression, matching the paper's
    cBS/cCS/cIS shorthand unless an explicit codec is given).
    """
    label = scheme
    if scheme and scheme[0] == "c":
        if codec is None:
            codec = "zlib"
        label = scheme[1:]
    label = label.upper()
    try:
        cls = _SCHEMES[label]
    except KeyError:
        known = ", ".join(sorted(_SCHEMES))
        raise StorageError(
            f"unknown storage scheme {scheme!r}; expected one of {known} "
            f"(optionally c-prefixed)"
        ) from None
    return cls.write(disk, name, index, codec)


def open_scheme(
    disk: SimulatedDisk, name: str, compressed: bool | str = False
) -> StorageScheme:
    """Re-open a previously written index from its manifest.

    ``compressed=True`` (or ``compressed="wah"``/``"roaring"``) opens the
    scheme in compressed-serving mode: every fetched bitmap is a
    :class:`~repro.bitmaps.compressed.WahBitVector` or
    :class:`~repro.bitmaps.roaring.RoaringBitmap` (for a BS index whose
    file codec matches, served without decoding).
    """
    try:
        manifest = json.loads(disk.read(f"{name}/manifest"))
    except ValueError as exc:
        raise CorruptFileError(f"{name}/manifest is not valid JSON") from exc
    try:
        cls = _SCHEMES[manifest["kind"]]
        base = Base(tuple(manifest["base"]))
        encoding = EncodingScheme(manifest["encoding"])
        codec = get_codec(manifest["codec"])
        nbits = int(manifest["nbits"])
        cardinality = int(manifest["cardinality"])
        has_nulls = bool(manifest["has_nulls"])
    except (KeyError, TypeError) as exc:
        raise CorruptFileError(f"{name}/manifest is missing fields: {exc}") from exc
    nonnull = None
    if has_nulls:
        blob = disk.read(f"{name}/nn")
        payload, file_nbits, _, _ = _unframe(blob, f"{name}/nn")
        nonnull = BitVector.from_bytes(payload, file_nbits)
    return cls(
        disk, name, base, encoding, nbits, cardinality, codec, nonnull,
        compressed=compressed,
    )
