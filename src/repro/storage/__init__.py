"""Physical storage substrate: simulated disk, real disks, index store.

Implements the paper's Section 9.1 physical organizations for a bitmap
index on an ``N``-record relation:

- **Bitmap-level storage (BS)** — one ``N``-bit file per stored bitmap.
- **Component-level storage (CS)** — one row-major ``N x n_i`` bit-matrix
  file per component.
- **Index-level storage (IS)** — a single row-major ``N x n`` bit-matrix
  file for the whole index (the projection index when every base is 2).

Each scheme is available uncompressed or with any registered codec (the
``c``-prefixed variants of the paper: cBS, cCS, cIS), and each implements
the bitmap-source protocol, so the Section 3 evaluation algorithms run
unchanged against physical storage with real byte accounting.

Section 10's bitmap buffering is provided by
:class:`repro.storage.buffer.BufferPool`.

The Storage protocol
--------------------
:class:`Storage` is the one surface the serving layer (the engine, the
buffer pool) depends on.  Three very different backends implement it:

- :class:`~repro.storage.disk.DiskModel` — a pure latency model; holds no
  bytes, charges modeled read waits (the paper's era-modeled disk).
- :class:`~repro.storage.fsdisk.FileSystemDisk` /
  :class:`~repro.storage.disk.SimulatedDisk` — CRC-framed byte stores for
  the Section 9 scheme files.
- :class:`~repro.storage.store.IndexStore` — the persistent, mmap-backed
  index format with lazy bitmap loading and real I/O counters.

The protocol asks three questions: *how long would this read take beyond
the wall clock?* (:meth:`Storage.read_seconds` — nonzero only for modeled
backends), *can you serve this attribute's bitmaps yourself?*
(:meth:`Storage.bitmap_source` — ``None`` for backends holding no index
payloads), and *what I/O happened so far?* (:meth:`Storage.io_snapshot`,
wired into EXPLAIN).
"""

from typing import Protocol, runtime_checkable

from repro.storage.disk import DiskModel, SimulatedDisk


@runtime_checkable
class Storage(Protocol):
    """The unified storage surface the serving layer depends on.

    Implemented by :class:`~repro.storage.disk.DiskModel` (latency model,
    no payloads), :class:`~repro.storage.disk.SimulatedDisk` and
    :class:`~repro.storage.fsdisk.FileSystemDisk` (byte stores), and
    :class:`~repro.storage.store.IndexStore` (persistent index files with
    lazy mmap loading).
    """

    def read_seconds(self, files_opened: int, bytes_read: int) -> float:
        """Modeled extra latency for one read.

        Backends that really move bytes (the filesystem disk, the index
        store) return ``0.0`` — their reads take the time they take; the
        pure :class:`DiskModel` returns the era-modeled seek + transfer
        estimate, which the engine sleeps on every cache miss.
        """
        ...

    def bitmap_source(self, relation: str, attribute: str):
        """A persisted lazy bitmap source for one attribute, or ``None``.

        ``None`` means this backend holds no index payloads for the
        attribute and the caller must build (or already hold) the bitmaps
        in memory.  A returned object implements the
        :class:`~repro.core.index.BitmapSource` protocol.
        """
        ...

    def io_snapshot(self) -> dict:
        """Point-in-time I/O counters (or model parameters) for EXPLAIN."""
        ...


from repro.storage.fsdisk import FileSystemDisk  # noqa: E402
from repro.storage.schemes import (  # noqa: E402
    BitmapLevelStorage,
    ComponentLevelStorage,
    IndexLevelStorage,
    StorageScheme,
    open_scheme,
    write_index,
)
from repro.storage.buffer import BufferPool  # noqa: E402
from repro.storage.store import IndexStore, StoreRelation  # noqa: E402

__all__ = [
    "BitmapLevelStorage",
    "BufferPool",
    "ComponentLevelStorage",
    "DiskModel",
    "FileSystemDisk",
    "IndexLevelStorage",
    "IndexStore",
    "SimulatedDisk",
    "Storage",
    "StorageScheme",
    "StoreRelation",
    "open_scheme",
    "write_index",
]
