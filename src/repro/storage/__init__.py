"""Physical storage substrate: simulated disk, storage schemes, buffering.

Implements the paper's Section 9.1 physical organizations for a bitmap
index on an ``N``-record relation:

- **Bitmap-level storage (BS)** — one ``N``-bit file per stored bitmap.
- **Component-level storage (CS)** — one row-major ``N x n_i`` bit-matrix
  file per component.
- **Index-level storage (IS)** — a single row-major ``N x n`` bit-matrix
  file for the whole index (the projection index when every base is 2).

Each scheme is available uncompressed or with any registered codec (the
``c``-prefixed variants of the paper: cBS, cCS, cIS), and each implements
the bitmap-source protocol, so the Section 3 evaluation algorithms run
unchanged against physical storage with real byte accounting.

Section 10's bitmap buffering is provided by
:class:`repro.storage.buffer.BufferPool`.
"""

from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.schemes import (
    BitmapLevelStorage,
    ComponentLevelStorage,
    IndexLevelStorage,
    StorageScheme,
    open_scheme,
    write_index,
)
from repro.storage.buffer import BufferPool

__all__ = [
    "BitmapLevelStorage",
    "BufferPool",
    "ComponentLevelStorage",
    "DiskModel",
    "IndexLevelStorage",
    "SimulatedDisk",
    "StorageScheme",
    "open_scheme",
    "write_index",
]
