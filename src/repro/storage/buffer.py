"""A bitmap-granularity buffer pool (paper Section 10).

Wraps any bitmap source; fetches served from memory cost no scan.  Two
policies:

- ``'pinned'`` — the paper's model: a fixed
  :class:`~repro.core.buffering.BufferAssignment` decides how many bitmaps
  of each component stay resident (Theorem 10.1's optimal assignment by
  default).  Which slots to pin is immaterial under the paper's
  uniform-reference assumption; we pin evenly spaced slots so measured hit
  rates track the ``f_i / (b_i - 1)`` model closely.
- ``'lru'`` — a classical least-recently-used pool of ``capacity``
  bitmaps, provided as an ablation against the paper's pinned-optimal
  policy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.bitmaps.bitvector import BitVector
from repro.core.buffering import BufferAssignment, optimal_assignment
from repro.core.encoding import EncodingScheme, stored_bitmap_count
from repro.core.index import BitmapSource
from repro.errors import BufferConfigError
from repro.stats import ExecutionStats


def _pinned_slots(stored: tuple[int, ...], count: int) -> set[int]:
    """Choose ``count`` evenly spaced slots out of the stored ones."""
    if count >= len(stored):
        return set(stored)
    if count == 0:
        return set()
    step = len(stored) / count
    return {stored[int(k * step)] for k in range(count)}


class BufferPool:
    """A bitmap buffer in front of a slower bitmap source.

    Parameters
    ----------
    source:
        The underlying index / storage scheme, or any
        :class:`repro.storage.Storage` backend — in that case
        ``relation`` and ``attribute`` name the persisted index the pool
        fronts (resolved via ``Storage.bitmap_source``).
    assignment:
        Pinned-policy buffer assignment; defaults to the Theorem 10.1
        optimal assignment for ``capacity`` bitmaps.
    capacity:
        Total buffered bitmaps ``m``.  Required for the LRU policy and for
        the default pinned assignment.
    policy:
        ``'pinned'`` (the paper's model, default) or ``'lru'``.

    An LRU ``capacity`` of 0 means *no caching*: every fetch is a recorded
    miss passed straight to the source and nothing is ever stored.  The
    pool is thread-safe — the LRU order and the hit/miss counters mutate
    under an internal lock, so it can back a shared engine-level cache.
    """

    def __init__(
        self,
        source: BitmapSource,
        assignment: BufferAssignment | None = None,
        capacity: int | None = None,
        policy: str = "pinned",
        *,
        relation: str | None = None,
        attribute: str | None = None,
    ):
        if policy not in ("pinned", "lru"):
            raise BufferConfigError(f"unknown buffer policy {policy!r}")
        if hasattr(source, "bitmap_source") and not hasattr(source, "fetch"):
            # A Storage backend rather than a bitmap source: resolve the
            # named persisted index (duck-typed to avoid a circular
            # import of the protocol).
            if relation is None or attribute is None:
                raise BufferConfigError(
                    "a Storage backend needs relation= and attribute= to "
                    "name the persisted index the pool should front"
                )
            resolved = source.bitmap_source(relation, attribute)
            if resolved is None:
                raise BufferConfigError(
                    f"storage backend holds no bitmaps for "
                    f"{relation}.{attribute}"
                )
            source = resolved
        self.source = source
        self.policy = policy
        self.base = source.base
        self.encoding = source.encoding
        self.nbits = source.nbits
        self.cardinality = source.cardinality
        self.nonnull = source.nonnull
        # Serve whatever representation the wrapped source serves; buffered
        # compressed bitmaps keep the pool's memory footprint proportional
        # to compressed (not dense) size.
        self.compressed = getattr(source, "compressed", False)
        self.bitmap_codec = getattr(
            source, "bitmap_codec", "wah" if self.compressed else "dense"
        )
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

        if policy == "pinned":
            if assignment is None:
                if capacity is None:
                    raise BufferConfigError(
                        "pinned policy needs an assignment or a capacity"
                    )
                assignment = optimal_assignment(source.base, capacity)
            if assignment.base != source.base:
                raise BufferConfigError(
                    "assignment base does not match the source index"
                )
            self.assignment = assignment
            self._pinned: dict[tuple[int, int], BitVector] = {}
            self._load_pinned()
        else:
            if capacity is None or capacity < 0:
                raise BufferConfigError("lru policy needs a capacity >= 0")
            self.assignment = None
            self.capacity = capacity
            self._lru: OrderedDict[tuple[int, int], BitVector] = OrderedDict()

    # ------------------------------------------------------------------

    def _stored_slots(self, component: int) -> tuple[int, ...]:
        stored = getattr(self.source, "stored_slots", None)
        if callable(stored):
            return stored(component)
        # Fall back to the encoding's canonical layout.
        b = self.base.component(component)
        if self.encoding is EncodingScheme.EQUALITY and b == 2:
            return (1,)
        return tuple(range(stored_bitmap_count(b, self.encoding)))

    def _load_pinned(self) -> None:
        loader = ExecutionStats()  # preload IO is not charged to queries
        for i in range(1, self.base.n + 1):
            f_i = self.assignment.counts[i - 1]
            for slot in sorted(_pinned_slots(self._stored_slots(i), f_i)):
                self._pinned[(i, slot)] = self.source.fetch(i, slot, loader)
        reset = getattr(self.source, "reset_cache", None)
        if callable(reset):
            reset()

    # ------------------------------------------------------------------
    # Bitmap-source protocol
    # ------------------------------------------------------------------

    def fetch(
        self, component: int, slot: int, stats: ExecutionStats
    ) -> BitVector:
        key = (component, slot)
        if self.policy == "pinned":
            # The pinned map is read-only after preload; only the counters
            # need the lock.
            bitmap = self._pinned.get(key)
            if bitmap is not None:
                with self._lock:
                    self.hits += 1
                stats.buffer_hits += 1
                if stats.trace is not None:
                    stats.trace.event(
                        "buffer.hit",
                        kind="buffer",
                        component=component,
                        slot=slot,
                        policy="pinned",
                    )
                return bitmap
            with self._lock:
                self.misses += 1
            return self.source.fetch(component, slot, stats)

        if self.capacity == 0:
            # No caching: every fetch is a miss passed through to the source.
            with self._lock:
                self.misses += 1
            return self.source.fetch(component, slot, stats)

        with self._lock:
            bitmap = self._lru.get(key)
            if bitmap is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                stats.buffer_hits += 1
                if stats.trace is not None:
                    stats.trace.event(
                        "buffer.hit",
                        kind="buffer",
                        component=component,
                        slot=slot,
                        policy="lru",
                    )
                return bitmap
            self.misses += 1
        # Fetch outside the lock so slow source reads don't serialize the
        # pool; a racing double-fetch of the same key is harmless.
        bitmap = self.source.fetch(component, slot, stats)
        with self._lock:
            self._lru[key] = bitmap
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
        return bitmap

    def reset_cache(self) -> None:
        """Propagate per-query cache resets to the underlying source."""
        reset = getattr(self.source, "reset_cache", None)
        if callable(reset):
            reset()

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from the buffer so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
