"""repro — a reproduction of *Bitmap Index Design and Evaluation*.

Chan & Ioannidis, SIGMOD 1998.

The library implements the paper's full design space of bitmap indexes for
selection queries (attribute-value decomposition × equality/range
encoding), the improved evaluation algorithm ``RangeEval-Opt``, the
analytical space/time cost model, the space-/time-optimal and knee index
characterizations, the space-constrained optimization algorithms, the
storage/compression study (BS/CS/IS schemes), and the buffering analysis —
plus the substrates they need: a packed bitvector engine, bitmap codecs, a
simulated disk, a buffer pool, a miniature column store with the
conventional RID-list baseline, and workload generators.

Quickstart
----------
>>> import numpy as np
>>> from repro import BitmapIndex, Base, Predicate, evaluate
>>> values = np.array([3, 2, 1, 2, 8, 2, 2, 0, 7, 5])  # paper Figure 1
>>> index = BitmapIndex(values, cardinality=9, base=Base((3, 3)))
>>> result = evaluate(index, Predicate("<=", 4))
>>> sorted(result.iter_indices())
[0, 1, 2, 3, 5, 6, 7]
"""

from repro.bitmaps import BitVector, get_codec
from repro.core import (
    Base,
    BitmapIndex,
    EncodingScheme,
    Predicate,
    equality_eval,
    evaluate,
    range_eval,
    range_eval_opt,
)
from repro.core.advisor import IndexDesign, recommend
from repro.engine import (
    AggregateResult,
    CircuitBreaker,
    QueryEngine,
    RetryPolicy,
    SharedBitmapCache,
)
from repro.core.aggregation import BitSlicedAggregator
from repro.core.multi import AttributeSpec, TableDesign, allocate_budget
from repro.errors import QueryTimeoutError, ReproError
from repro.faults import Deadline, FaultPlan, FaultSpec
from repro.query.expression import Threshold, Xor, parse_expression
from repro.query.options import QueryOptions
from repro.stats import ExecutionStats
from repro.storage import IndexStore, Storage
from repro.table import Table
from repro.trace import ExplainReport, QueryTrace, explain

__version__ = "1.0.0"


def open_store(path: str, **engine_opts) -> QueryEngine:
    """Open a persistent index store and serve queries from it.

    The one-call persistence entry point: opens (or creates) the
    :class:`~repro.storage.store.IndexStore` at ``path``, constructs a
    :class:`QueryEngine` with it as the storage backend (extra keyword
    arguments go to the engine), and registers every stored relation —
    so a prior session's ``engine.storage.build(relation)`` is queryable
    with nothing but the directory:

    >>> engine = open_store("/data/indexes")     # doctest: +SKIP
    >>> engine.query("region = 'east'", "sales")  # doctest: +SKIP

    Bitmaps load lazily from the mmapped files; only the dictionaries
    are parsed up front.  The store is reachable as ``engine.storage``
    for maintenance (``build`` / ``append`` / ``compact`` / ``scrub``).
    """
    store = IndexStore(path)
    engine = QueryEngine(storage=store, **engine_opts)
    for relation in store.relations():
        engine.register(store.relation_view(relation))
    return engine

__all__ = [
    "AggregateResult",
    "AttributeSpec",
    "Base",
    "BitSlicedAggregator",
    "BitVector",
    "BitmapIndex",
    "CircuitBreaker",
    "Deadline",
    "EncodingScheme",
    "ExecutionStats",
    "ExplainReport",
    "FaultPlan",
    "FaultSpec",
    "IndexDesign",
    "IndexStore",
    "Predicate",
    "QueryEngine",
    "QueryOptions",
    "QueryTimeoutError",
    "QueryTrace",
    "ReproError",
    "RetryPolicy",
    "SharedBitmapCache",
    "Storage",
    "Table",
    "TableDesign",
    "Threshold",
    "Xor",
    "allocate_budget",
    "equality_eval",
    "evaluate",
    "explain",
    "get_codec",
    "open_store",
    "parse_expression",
    "range_eval",
    "range_eval_opt",
    "recommend",
    "__version__",
]
