"""The user-facing table: columns + indexes + statistics + queries.

:class:`Table` is the adoption surface of the library — the object a
downstream user works with, wrapping the substrates the reproduction is
built from:

- columns live in a :class:`~repro.relation.relation.Relation`;
- bitmap indexes are designed by the paper's machinery (knee by default,
  or any Section 6–8 objective) and built per attribute;
- equi-depth histograms and RID-list indexes feed the cost-based plan
  optimizer;
- ``select`` accepts full boolean expressions (AND/OR/NOT/IN/BETWEEN) and
  routes them through the best machinery available: conjunctions of
  comparisons go through the P1/P2/P3 optimizer, general expressions
  through bitmap algebra;
- ``aggregate`` computes SUM/COUNT/AVG/MIN/MAX through bit slices;
- ``save``/``load`` persist everything to any disk backend (simulated or
  real filesystem).

Example
-------
>>> import numpy as np
>>> from repro.table import Table
>>> table = Table("sales", {
...     "region": np.array([0, 1, 2, 1, 0, 2, 1, 1]),
...     "amount": np.array([10, 40, 25, 5, 70, 30, 55, 15]),
... })
>>> _ = table.create_index("region")
>>> table.select("region = 1").tolist()
[1, 3, 6, 7]
>>> table.aggregate("amount", "sum", where="region = 1")
115
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.aggregation import BitSlicedAggregator
from repro.core.advisor import recommend
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.core.multi import AttributeSpec, allocate_budget
from repro.errors import ReproError
from repro.query.expression import (
    And,
    Comparison,
    Expression,
    parse_expression,
)
from repro.query.optimizer import Catalog, choose_plan, execute_plan
from repro.query.options import QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.histogram import EquiDepthHistogram
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex
from repro.stats import ExecutionStats


class TableError(ReproError):
    """A table-level operation failed."""


class Table:
    """A queryable table with paper-designed bitmap indexes."""

    def __init__(self, name: str, data: dict[str, np.ndarray]):
        self.relation = Relation.from_dict(name, data)
        self.catalog = Catalog()
        self._aggregators: dict[str, BitSlicedAggregator] = {}

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    def column_names(self) -> list[str]:
        return sorted(self.relation.columns)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def create_index(
        self,
        attribute: str,
        base: Base | None = None,
        encoding: EncodingScheme = EncodingScheme.RANGE,
        objective: str = "knee",
        space_budget: int | None = None,
    ) -> BitmapIndex:
        """Build (and register) a bitmap index over one attribute.

        Without an explicit ``base`` the advisor designs one from the
        column's cardinality: the knee by default, or any
        :func:`repro.core.advisor.recommend` objective, optionally under a
        per-attribute ``space_budget``.
        """
        column = self.relation.column(attribute)
        if base is None:
            design = recommend(
                column.cardinality,
                space_budget=space_budget,
                objective=objective,
            )
            base = design.base
        index = BitmapIndex(
            column.codes,
            cardinality=column.cardinality,
            base=base,
            encoding=encoding,
        )
        self.catalog.bitmap_indexes[attribute] = index
        return index

    def create_rid_index(self, attribute: str) -> RIDListIndex:
        """Build (and register) the conventional RID-list index."""
        index = RIDListIndex(self.relation.column(attribute).values)
        self.catalog.rid_indexes[attribute] = index
        return index

    def analyze(self, attribute: str, buckets: int = 16) -> EquiDepthHistogram:
        """Build (and register) an equi-depth histogram for the optimizer."""
        histogram = EquiDepthHistogram(
            self.relation.column(attribute).values, buckets
        )
        self.catalog.histograms[attribute] = histogram
        return histogram

    def design_indexes(
        self,
        total_bitmaps: int,
        weights: dict[str, float] | None = None,
        attributes: list[str] | None = None,
    ) -> dict[str, Base]:
        """Design and build indexes for several attributes under one budget.

        Uses the multi-attribute allocator
        (:func:`repro.core.multi.allocate_budget`); returns the chosen
        base per attribute.
        """
        names = attributes if attributes is not None else self.column_names()
        weights = weights or {}
        specs = [
            AttributeSpec(
                name,
                self.relation.column(name).cardinality,
                weights.get(name, 1.0),
            )
            for name in names
        ]
        design = allocate_budget(specs, total_bitmaps)
        for name, base in design.indexes.items():
            self.create_index(name, base=base)
        return dict(design.indexes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def select(
        self,
        expression: Expression | str,
        stats: ExecutionStats | None = None,
        verify: bool = True,
    ) -> np.ndarray:
        """RIDs satisfying a boolean expression, via the best available path.

        Conjunctions of simple comparisons go through the cost-based
        P1/P2/P3 optimizer; other expressions evaluate through bitmap
        algebra when every referenced attribute has a bitmap index, and
        fall back to a verified full scan otherwise.
        """
        if isinstance(expression, str):
            expression = parse_expression(expression)

        conjuncts = _flatten_conjunction(expression)
        if conjuncts is not None:
            predicates = [
                AttributePredicate(c.attribute, c.op, c.value)
                for c in conjuncts
            ]
            result, _ = execute_plan(
                self.relation,
                predicates,
                self.catalog,
                options=QueryOptions(verify=verify),
            )
            if stats is not None:
                stats.merge(result.stats)
            return result.rids

        covered = all(
            attr in self.catalog.bitmap_indexes
            for attr in expression.attributes()
        )
        if covered:
            from repro.query.expression import select as expression_select

            return expression_select(
                self.relation,
                expression,
                self.catalog.bitmap_indexes,
                stats=stats,
                options=QueryOptions(verify=verify),
            )
        return np.nonzero(expression.mask(self.relation))[0]

    def explain(self, expression: Expression | str) -> str:
        """A one-line description of how ``select`` would run."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        conjuncts = _flatten_conjunction(expression)
        if conjuncts is not None:
            predicates = [
                AttributePredicate(c.attribute, c.op, c.value)
                for c in conjuncts
            ]
            return str(choose_plan(self.relation, predicates, self.catalog))
        covered = all(
            attr in self.catalog.bitmap_indexes
            for attr in expression.attributes()
        )
        if covered:
            return "bitmap expression evaluation"
        return "full scan (missing bitmap indexes)"

    def aggregate(
        self,
        measure: str,
        func: str,
        where: Expression | str | None = None,
    ):
        """SUM/COUNT/AVG/MIN/MAX of a column through its bit slices."""
        aggregator = self._aggregators.get(measure)
        if aggregator is None:
            values = self.relation.column(measure).values
            if not np.issubdtype(np.asarray(values).dtype, np.integer):
                raise TableError(
                    f"bit-sliced aggregation needs an integer column; "
                    f"{measure!r} is {np.asarray(values).dtype}"
                )
            aggregator = BitSlicedAggregator.from_values(values)
            self._aggregators[measure] = aggregator

        foundset = None
        if where is not None:
            from repro.bitmaps.bitvector import BitVector

            rids = self.select(where)
            foundset = BitVector.from_indices(self.num_rows, rids)

        functions = {
            "sum": aggregator.sum,
            "count": aggregator.count,
            "avg": aggregator.average,
            "min": aggregator.minimum,
            "max": aggregator.maximum,
        }
        try:
            compute = functions[func.lower()]
        except KeyError:
            known = ", ".join(sorted(functions))
            raise TableError(
                f"unknown aggregate {func!r}; expected one of {known}"
            ) from None
        return compute(foundset)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, disk, prefix: str) -> None:
        """Persist columns and bitmap indexes under ``prefix`` on a disk.

        Works with both :class:`~repro.storage.disk.SimulatedDisk` and
        :class:`~repro.storage.fsdisk.FileSystemDisk`.
        """
        from io import BytesIO

        from repro.storage.schemes import write_index

        for cname, column in self.relation.columns.items():
            buffer = BytesIO()
            np.save(buffer, column.values, allow_pickle=False)
            disk.write(f"{prefix}/columns/{cname}.npy", buffer.getvalue())
        for attribute, index in self.catalog.bitmap_indexes.items():
            if not isinstance(index, BitmapIndex):
                raise TableError(
                    f"cannot persist non-materialized index on {attribute!r}"
                )
            write_index(disk, f"{prefix}/indexes/{attribute}", index, "cBS")
        manifest = {
            "name": self.name,
            "columns": sorted(self.relation.columns),
            "indexed": sorted(self.catalog.bitmap_indexes),
        }
        disk.write(
            f"{prefix}/table", json.dumps(manifest, sort_keys=True).encode()
        )

    @classmethod
    def load(cls, disk, prefix: str) -> "Table":
        """Inverse of :meth:`save`.

        Bitmap indexes are rebuilt from the persisted column data against
        the persisted index design (base + encoding), which both
        revalidates the stored bitmaps' geometry and keeps the in-memory
        index queryable without a disk round-trip per bitmap.
        """
        from io import BytesIO

        from repro.storage.schemes import open_scheme

        try:
            manifest = json.loads(disk.read(f"{prefix}/table"))
        except ValueError as exc:
            raise TableError(f"{prefix}/table is not valid JSON") from exc
        data = {}
        for cname in manifest["columns"]:
            raw = disk.read(f"{prefix}/columns/{cname}.npy")
            data[cname] = np.load(BytesIO(raw), allow_pickle=False)
        table = cls(manifest["name"], data)
        for attribute in manifest["indexed"]:
            stored = open_scheme(disk, f"{prefix}/indexes/{attribute}")
            table.create_index(
                attribute, base=stored.base, encoding=stored.encoding
            )
        return table

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={self.column_names()}, "
            f"indexed={sorted(self.catalog.bitmap_indexes)})"
        )


def _flatten_conjunction(expression: Expression) -> list[Comparison] | None:
    """The comparisons of a pure AND tree, or ``None`` if it is not one."""
    if isinstance(expression, Comparison):
        return [expression]
    if isinstance(expression, And):
        left = _flatten_conjunction(expression.left)
        right = _flatten_conjunction(expression.right)
        if left is not None and right is not None:
            return left + right
    return None
