"""Execution statistics shared by evaluation, storage, and buffering.

The paper's two cost metrics are the number of *bitmap scans* (I/O) and the
number of *bitmap operations* (CPU).  :class:`ExecutionStats` records both,
plus the byte-level and buffering detail used by the Section 9 and 10
experiments.  A single stats object is threaded through one query
evaluation; experiments aggregate over many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import Deadline
    from repro.trace import QueryTrace


@dataclass
class ExecutionStats:
    """Counters for one (or an aggregate of) query evaluations.

    Attributes
    ----------
    scans:
        Physical bitmap reads.  This is the paper's time metric: a read of
        one stored bitmap from disk.  Buffer hits are *not* scans.
    ands, ors, xors, nots:
        Logical bitmap operations performed (the paper's CPU metric).
    bytes_read:
        Bytes fetched from (simulated) disk.
    decompressed_bytes:
        Bytes produced by codec decompression on the read path.
    files_opened:
        Bitmap-file open/scan events at the storage layer (one per file
        read; CS/IS schemes may serve many bitmap fetches per file scan).
    buffer_hits:
        Bitmap fetches served from the buffer pool.
    trace:
        Optional :class:`~repro.trace.QueryTrace` receiving per-event
        spans from every layer the stats object passes through.  ``None``
        (the default) is the untraced hot path: each instrumentation site
        is gated on one attribute read.  The trace rides along one query
        and is never merged or copied with the counters.
    deadline:
        Optional :class:`~repro.faults.Deadline` threaded the same way as
        ``trace``: ``None`` on the unbudgeted hot path, a cooperative
        budget when the caller passed ``QueryOptions(deadline_ms=...)``.
        Seams check it and raise
        :class:`~repro.errors.QueryTimeoutError` once expired.  Like the
        trace, it rides along one query and is never merged or copied.
    """

    scans: int = 0
    ands: int = 0
    ors: int = 0
    xors: int = 0
    nots: int = 0
    bytes_read: int = 0
    decompressed_bytes: int = 0
    files_opened: int = 0
    buffer_hits: int = 0
    io_seconds: float = field(default=0.0, repr=False)
    cpu_seconds: float = field(default=0.0, repr=False)
    trace: "QueryTrace | None" = field(default=None, repr=False, compare=False)
    deadline: "Deadline | None" = field(default=None, repr=False, compare=False)

    @property
    def ops(self) -> int:
        """Total bitmap operations (AND + OR + XOR + NOT)."""
        return self.ands + self.ors + self.xors + self.nots

    def record_scan(self, nbytes: int = 0) -> None:
        """Record one physical bitmap read of ``nbytes`` bytes."""
        self.scans += 1
        self.bytes_read += nbytes

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate ``other`` into this object (for aggregation)."""
        self.scans += other.scans
        self.ands += other.ands
        self.ors += other.ors
        self.xors += other.xors
        self.nots += other.nots
        self.bytes_read += other.bytes_read
        self.decompressed_bytes += other.decompressed_bytes
        self.files_opened += other.files_opened
        self.buffer_hits += other.buffer_hits
        self.io_seconds += other.io_seconds
        self.cpu_seconds += other.cpu_seconds

    def as_dict(self) -> dict:
        """The counters as a plain dict (stable keys, JSON-serializable).

        Used by the engine's ``snapshot()`` and the benchmark result files;
        the derived ``ops`` total is included for convenience.
        """
        return {
            "scans": self.scans,
            "ands": self.ands,
            "ors": self.ors,
            "xors": self.xors,
            "nots": self.nots,
            "ops": self.ops,
            "bytes_read": self.bytes_read,
            "decompressed_bytes": self.decompressed_bytes,
            "files_opened": self.files_opened,
            "buffer_hits": self.buffer_hits,
            "io_seconds": self.io_seconds,
            "cpu_seconds": self.cpu_seconds,
        }

    def copy(self) -> "ExecutionStats":
        """An independent copy of the current counter values."""
        out = ExecutionStats()
        out.merge(self)
        return out
