"""Differential tests: every evaluator vs. a naive full scan.

Sweeps randomized decompositions (1–3 components, uniform and perturbed
non-uniform bases) crossed with the equality, range, and interval
encodings, and asserts that ``evaluate()`` — RangeEval-Opt for range
encoding, the equality/interval evaluators otherwise — agrees with a naive
scan of the raw column for all six operators, including the boundary
constants ``v = 0`` and ``v = C - 1`` and out-of-range codes the
evaluators must short-circuit.  All randomness is seeded, so the sweep is
deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmaps.compressed import WahBitVector
from repro.core.decomposition import Base, integer_nth_root_ceil
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import (
    OPERATORS,
    Predicate,
    evaluate,
    range_eval,
    range_eval_opt,
)
from repro.core.index import BitmapIndex
from repro.stats import ExecutionStats

NUM_ROWS = 400
CARDINALITIES = [7, 24, 60]
ENCODINGS = [EncodingScheme.EQUALITY, EncodingScheme.RANGE, EncodingScheme.INTERVAL]


def random_base(cardinality: int, n: int, rng: np.random.Generator) -> Base:
    """A random well-defined n-component base covering ``cardinality``."""
    root = max(2, integer_nth_root_ceil(cardinality, n))
    bases = [root] * n
    # Perturb components while preserving coverage: grow one, then try to
    # shrink another (keeping every b_i >= 2 and the product >= C).
    for _ in range(4):
        i = int(rng.integers(0, n))
        bases[i] += int(rng.integers(0, 3))
        j = int(rng.integers(0, n))
        shrunk = bases.copy()
        shrunk[j] = max(2, shrunk[j] - 1)
        if int(np.prod(shrunk)) >= cardinality:
            bases = shrunk
    assert int(np.prod(bases)) >= cardinality
    return Base(tuple(bases))


def boundary_values(cardinality: int, rng: np.random.Generator) -> list[int]:
    """Constants to probe: bounds, interior, and out-of-range on both sides."""
    interior = sorted(
        int(v) for v in rng.integers(1, max(2, cardinality - 1), size=3)
    )
    return [0, cardinality - 1, -1, -5, cardinality, cardinality + 3, *interior]


def cases():
    rng = np.random.default_rng(20260806)
    for cardinality in CARDINALITIES:
        for n in (1, 2, 3):
            base = random_base(cardinality, n, rng)
            seed = int(rng.integers(0, 2**31))
            for encoding in ENCODINGS:
                yield pytest.param(
                    cardinality,
                    base,
                    encoding,
                    seed,
                    id=f"C{cardinality}-{base}-{encoding.value}",
                )


@pytest.mark.parametrize("cardinality,base,encoding,seed", list(cases()))
def test_evaluate_matches_naive_scan(cardinality, base, encoding, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, NUM_ROWS)
    # Pin the boundary codes so v = 0 and v = C-1 actually select rows.
    values[0], values[1] = 0, cardinality - 1
    index = BitmapIndex(values, cardinality, base=base, encoding=encoding)
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            got = evaluate(index, predicate)
            expected = predicate.matches(values)
            assert np.array_equal(got.to_bools(), expected), (
                f"{encoding.value} base={base} failed on A {op} {v}"
            )


@pytest.mark.parametrize("cardinality,base,encoding,seed", list(cases()))
def test_compressed_path_matches_dense(cardinality, base, encoding, seed):
    """Compressed-domain execution is observationally identical to dense.

    Same random base x encoding sweep as the naive-scan differential:
    the compressed source must return bit-identical RIDs *and* charge the
    exact same operation counts (the evaluators share one code path over
    both algebras, so any divergence is a genericization bug).
    """
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, NUM_ROWS)
    values[0], values[1] = 0, cardinality - 1
    nulls = rng.random(NUM_ROWS) < 0.1
    index = BitmapIndex(
        values, cardinality, base=base, encoding=encoding, nulls=nulls
    )
    compressed = index.as_compressed()
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            dense_stats, comp_stats = ExecutionStats(), ExecutionStats()
            dense = evaluate(index, predicate, stats=dense_stats)
            comp = evaluate(compressed, predicate, stats=comp_stats)
            assert isinstance(comp, WahBitVector)
            assert np.array_equal(dense.indices(), comp.indices()), (
                f"{encoding.value} base={base}: RIDs diverge on A {op} {v}"
            )
            dense_ops = (
                dense_stats.ands,
                dense_stats.ors,
                dense_stats.xors,
                dense_stats.nots,
                dense_stats.scans,
            )
            comp_ops = (
                comp_stats.ands,
                comp_stats.ors,
                comp_stats.xors,
                comp_stats.nots,
                comp_stats.scans,
            )
            assert dense_ops == comp_ops, (
                f"{encoding.value} base={base}: op counts diverge on "
                f"A {op} {v}: dense={dense_ops} compressed={comp_ops}"
            )


@pytest.mark.parametrize(
    "cardinality,n", [(7, 1), (24, 2), (60, 2), (60, 3)]
)
def test_range_eval_and_opt_agree(cardinality, n):
    """The baseline RangeEval and RangeEval-Opt are observationally equal."""
    rng = np.random.default_rng(cardinality * 10 + n)
    base = random_base(cardinality, n, rng)
    values = rng.integers(0, cardinality, NUM_ROWS)
    index = BitmapIndex(values, cardinality, base=base)
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            assert range_eval(index, predicate) == range_eval_opt(index, predicate)


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_nulls_masked_out(encoding):
    """NULL rows never match any predicate, under every encoding."""
    rng = np.random.default_rng(99)
    cardinality = 24
    values = rng.integers(0, cardinality, NUM_ROWS)
    nulls = rng.random(NUM_ROWS) < 0.15
    base = Base((5, 5))
    index = BitmapIndex(values, cardinality, base=base, encoding=encoding, nulls=nulls)
    for op in OPERATORS:
        for v in (0, 3, cardinality - 1, -1, cardinality):
            predicate = Predicate(op, v)
            got = evaluate(index, predicate).to_bools()
            expected = predicate.matches(values) & ~nulls
            assert np.array_equal(got, expected), f"{encoding.value} A {op} {v}"


@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_skewed_distributions(cardinality):
    """Differential check under heavy skew (near-constant columns)."""
    rng = np.random.default_rng(cardinality)
    # 90% of rows share one value; the rest are uniform.
    hot = int(rng.integers(0, cardinality))
    values = np.where(
        rng.random(NUM_ROWS) < 0.9,
        hot,
        rng.integers(0, cardinality, NUM_ROWS),
    )
    for encoding in ENCODINGS:
        index = BitmapIndex(values, cardinality, base=Base((4, 4, 4)), encoding=encoding)
        for op in OPERATORS:
            predicate = Predicate(op, hot)
            got = evaluate(index, predicate)
            assert np.array_equal(got.to_bools(), predicate.matches(values))
