"""Differential tests: every evaluator vs. a naive full scan.

Sweeps randomized decompositions (1–3 components, uniform and perturbed
non-uniform bases) crossed with the equality, range, and interval
encodings, and asserts that ``evaluate()`` — RangeEval-Opt for range
encoding, the equality/interval evaluators otherwise — agrees with a naive
scan of the raw column for all six operators, including the boundary
constants ``v = 0`` and ``v = C - 1`` and out-of-range codes the
evaluators must short-circuit.  All randomness is seeded, so the sweep is
deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.decomposition import Base, integer_nth_root_ceil
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import (
    OPERATORS,
    Predicate,
    evaluate,
    range_eval,
    range_eval_opt,
)
from repro.core.evaluation import threshold_all
from repro.core.index import BitmapIndex
from repro.engine import QueryEngine
from repro.query.expression import parse_expression
from repro.relation.relation import Relation
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import open_scheme, write_index
from repro.workloads.generators import clustered_values, uniform_values, zipf_values

NUM_ROWS = 400
CARDINALITIES = [7, 24, 60]
ENCODINGS = [EncodingScheme.EQUALITY, EncodingScheme.RANGE, EncodingScheme.INTERVAL]


def random_base(cardinality: int, n: int, rng: np.random.Generator) -> Base:
    """A random well-defined n-component base covering ``cardinality``."""
    root = max(2, integer_nth_root_ceil(cardinality, n))
    bases = [root] * n
    # Perturb components while preserving coverage: grow one, then try to
    # shrink another (keeping every b_i >= 2 and the product >= C).
    for _ in range(4):
        i = int(rng.integers(0, n))
        bases[i] += int(rng.integers(0, 3))
        j = int(rng.integers(0, n))
        shrunk = bases.copy()
        shrunk[j] = max(2, shrunk[j] - 1)
        if int(np.prod(shrunk)) >= cardinality:
            bases = shrunk
    assert int(np.prod(bases)) >= cardinality
    return Base(tuple(bases))


def boundary_values(cardinality: int, rng: np.random.Generator) -> list[int]:
    """Constants to probe: bounds, interior, and out-of-range on both sides."""
    interior = sorted(
        int(v) for v in rng.integers(1, max(2, cardinality - 1), size=3)
    )
    return [0, cardinality - 1, -1, -5, cardinality, cardinality + 3, *interior]


def cases():
    rng = np.random.default_rng(20260806)
    for cardinality in CARDINALITIES:
        for n in (1, 2, 3):
            base = random_base(cardinality, n, rng)
            seed = int(rng.integers(0, 2**31))
            for encoding in ENCODINGS:
                yield pytest.param(
                    cardinality,
                    base,
                    encoding,
                    seed,
                    id=f"C{cardinality}-{base}-{encoding.value}",
                )


@pytest.mark.parametrize("cardinality,base,encoding,seed", list(cases()))
def test_evaluate_matches_naive_scan(cardinality, base, encoding, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, NUM_ROWS)
    # Pin the boundary codes so v = 0 and v = C-1 actually select rows.
    values[0], values[1] = 0, cardinality - 1
    index = BitmapIndex(values, cardinality, base=base, encoding=encoding)
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            got = evaluate(index, predicate)
            expected = predicate.matches(values)
            assert np.array_equal(got.to_bools(), expected), (
                f"{encoding.value} base={base} failed on A {op} {v}"
            )


#: The compressed serving codecs differentially checked against dense.
COMPRESSED_CODECS = {"wah": WahBitVector, "roaring": RoaringBitmap}


def _op_counts(stats: ExecutionStats) -> tuple[int, int, int, int, int]:
    return (stats.ands, stats.ors, stats.xors, stats.nots, stats.scans)


@pytest.mark.parametrize("codec", sorted(COMPRESSED_CODECS))
@pytest.mark.parametrize("cardinality,base,encoding,seed", list(cases()))
def test_compressed_path_matches_dense(cardinality, base, encoding, seed, codec):
    """Compressed-domain execution is observationally identical to dense.

    Same random base x encoding sweep as the naive-scan differential, once
    per compressed codec: the compressed source must return bit-identical
    RIDs *and* charge the exact same operation counts (the evaluators
    share one code path over all three algebras, so any divergence is a
    genericization bug).
    """
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, NUM_ROWS)
    values[0], values[1] = 0, cardinality - 1
    nulls = rng.random(NUM_ROWS) < 0.1
    index = BitmapIndex(
        values, cardinality, base=base, encoding=encoding, nulls=nulls
    )
    compressed = index.as_compressed(codec)
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            dense_stats, comp_stats = ExecutionStats(), ExecutionStats()
            dense = evaluate(index, predicate, stats=dense_stats)
            comp = evaluate(compressed, predicate, stats=comp_stats)
            assert isinstance(comp, COMPRESSED_CODECS[codec])
            assert comp.count() == dense.count()
            assert np.array_equal(dense.indices(), comp.indices()), (
                f"{encoding.value} base={base} {codec}: RIDs diverge on A {op} {v}"
            )
            assert _op_counts(dense_stats) == _op_counts(comp_stats), (
                f"{encoding.value} base={base} {codec}: op counts diverge on "
                f"A {op} {v}: dense={_op_counts(dense_stats)} "
                f"compressed={_op_counts(comp_stats)}"
            )


@pytest.mark.parametrize(
    "cardinality,n", [(7, 1), (24, 2), (60, 2), (60, 3)]
)
def test_range_eval_and_opt_agree(cardinality, n):
    """The baseline RangeEval and RangeEval-Opt are observationally equal."""
    rng = np.random.default_rng(cardinality * 10 + n)
    base = random_base(cardinality, n, rng)
    values = rng.integers(0, cardinality, NUM_ROWS)
    index = BitmapIndex(values, cardinality, base=base)
    for op in OPERATORS:
        for v in boundary_values(cardinality, rng):
            predicate = Predicate(op, v)
            assert range_eval(index, predicate) == range_eval_opt(index, predicate)


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_nulls_masked_out(encoding):
    """NULL rows never match any predicate, under every encoding."""
    rng = np.random.default_rng(99)
    cardinality = 24
    values = rng.integers(0, cardinality, NUM_ROWS)
    nulls = rng.random(NUM_ROWS) < 0.15
    base = Base((5, 5))
    index = BitmapIndex(values, cardinality, base=base, encoding=encoding, nulls=nulls)
    for op in OPERATORS:
        for v in (0, 3, cardinality - 1, -1, cardinality):
            predicate = Predicate(op, v)
            got = evaluate(index, predicate).to_bools()
            expected = predicate.matches(values) & ~nulls
            assert np.array_equal(got, expected), f"{encoding.value} A {op} {v}"


# ----------------------------------------------------------------------
# Three-way dense / WAH / Roaring differential harness
# ----------------------------------------------------------------------

#: Workload generators the three-way harness sweeps (name -> factory).
WORKLOADS = {
    "uniform": lambda n, c, seed: uniform_values(n, c, seed=seed),
    "zipf": lambda n, c, seed: zipf_values(n, c, skew=1.2, seed=seed),
    "clustered": lambda n, c, seed: clustered_values(n, c, run_length=40, seed=seed),
}


def _three_way_sources(index: BitmapIndex) -> dict:
    return {
        "dense": index,
        "wah": index.as_compressed("wah"),
        "roaring": index.as_compressed("roaring"),
    }


def _assert_three_way_agree(index: BitmapIndex, predicates, label: str) -> None:
    """All three codecs return identical RIDs, popcounts, and op counts."""
    sources = _three_way_sources(index)
    for predicate in predicates:
        results, ops = {}, {}
        for codec, source in sources.items():
            stats = ExecutionStats()
            out = evaluate(source, predicate, stats=stats)
            results[codec] = out
            ops[codec] = _op_counts(stats)
        dense = results["dense"]
        for codec in ("wah", "roaring"):
            assert results[codec].count() == dense.count(), (
                f"{label}: {codec} popcount diverges on {predicate}"
            )
            assert np.array_equal(results[codec].indices(), dense.indices()), (
                f"{label}: {codec} RIDs diverge on {predicate}"
            )
            assert ops[codec] == ops["dense"], (
                f"{label}: {codec} op counts diverge on {predicate}: "
                f"{ops[codec]} != {ops['dense']}"
            )


@pytest.mark.parametrize("encoding", ENCODINGS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_three_way_over_workloads(workload, encoding):
    """Dense/WAH/Roaring agree on every generated workload x encoding."""
    cardinality = 24
    values = WORKLOADS[workload](NUM_ROWS, cardinality, 7)
    rng = np.random.default_rng(101)
    index = BitmapIndex(
        values, cardinality, base=Base((5, 5)), encoding=encoding
    )
    predicates = [
        Predicate(op, v)
        for op in OPERATORS
        for v in boundary_values(cardinality, rng)
    ]
    _assert_three_way_agree(index, predicates, f"{workload}/{encoding.value}")


@pytest.mark.parametrize("algorithm", ["range_eval", "range_eval_opt"])
def test_three_way_per_evaluator(algorithm):
    """Both range evaluators stay three-way identical, not just 'auto'."""
    values = uniform_values(NUM_ROWS, 60, seed=3)
    index = BitmapIndex(values, 60, base=Base((4, 4, 4)))
    sources = _three_way_sources(index)
    rng = np.random.default_rng(11)
    for op in OPERATORS:
        for v in boundary_values(60, rng):
            outs = {
                codec: evaluate(source, Predicate(op, v), algorithm=algorithm)
                for codec, source in sources.items()
            }
            for codec in ("wah", "roaring"):
                assert np.array_equal(
                    outs[codec].indices(), outs["dense"].indices()
                ), f"{algorithm}/{codec} diverges on A {op} {v}"


@pytest.mark.parametrize("scheme", ["BS", "CS", "IS"])
@pytest.mark.parametrize("file_codec", [None, "wah", "roaring"])
def test_three_way_over_storage_schemes(scheme, file_codec):
    """Every stored scheme serves identical results under all three codecs.

    Sweeps the file codec too, so the zero-decode fast paths (wah file
    served as WAH, roaring file served as Roaring) are differentially
    pinned against the decode-and-reencode paths.
    """
    cardinality = 24
    values = clustered_values(NUM_ROWS, cardinality, run_length=25, seed=13)
    index = BitmapIndex(values, cardinality, base=Base((5, 5)))
    disk = SimulatedDisk()
    write_index(disk, "t.a", index, scheme=scheme, codec=file_codec)
    rng = np.random.default_rng(17)
    predicates = [
        Predicate(op, v)
        for op in OPERATORS
        for v in boundary_values(cardinality, rng)
    ]
    baseline = {
        str(p): evaluate(index, p).indices() for p in predicates
    }
    for serving in ("dense", "wah", "roaring"):
        reader = open_scheme(disk, "t.a", compressed=serving)
        for predicate in predicates:
            got = evaluate(reader, predicate)
            assert np.array_equal(got.indices(), baseline[str(predicate)]), (
                f"{scheme}/{file_codec or 'raw'} served as {serving} "
                f"diverges on {predicate}"
            )
            reader.reset_cache()


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_three_way_after_maintenance(encoding):
    """Insert/update/delete invalidate every codec's memo identically.

    The compressed views memoize encoded bitmaps; a maintenance write that
    failed to clear one codec's memo would silently serve stale results —
    exactly the divergence a three-way re-query catches.
    """
    cardinality = 24
    values = uniform_values(NUM_ROWS, cardinality, seed=23)
    index = BitmapIndex(values, cardinality, base=Base((5, 5)), encoding=encoding)
    rng = np.random.default_rng(29)
    predicates = [
        Predicate(op, v)
        for op in OPERATORS
        for v in (0, 7, cardinality - 1)
    ]
    # Query once through every codec to populate the encoded memos.
    _assert_three_way_agree(index, predicates, f"pre-maintenance/{encoding.value}")

    index.append(rng.integers(0, cardinality, 50))
    _assert_three_way_agree(index, predicates, f"post-append/{encoding.value}")

    for rid in (0, 5, NUM_ROWS + 10):
        index.update(rid, int(rng.integers(0, cardinality)))
    _assert_three_way_agree(index, predicates, f"post-update/{encoding.value}")

    for rid in (1, 17, NUM_ROWS + 3):
        index.delete(rid)
    _assert_three_way_agree(index, predicates, f"post-delete/{encoding.value}")


def test_three_way_under_query_skew():
    """Skewed query constants (hot values, boundaries) stay three-way equal."""
    cardinality = 60
    values = zipf_values(NUM_ROWS, cardinality, skew=1.5, seed=31)
    index = BitmapIndex(values, cardinality, base=Base((8, 8)))
    rng = np.random.default_rng(37)
    # Zipf-skewed constants concentrate on the same hot small values the
    # data does, plus the exact boundary codes.
    hot = np.minimum(
        rng.zipf(1.6, size=12) - 1, cardinality - 1
    ).astype(np.int64)
    constants = sorted({0, cardinality - 1, *[int(v) for v in hot]})
    predicates = [Predicate(op, v) for op in OPERATORS for v in constants]
    _assert_three_way_agree(index, predicates, "query-skew")


@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_skewed_distributions(cardinality):
    """Differential check under heavy skew (near-constant columns)."""
    rng = np.random.default_rng(cardinality)
    # 90% of rows share one value; the rest are uniform.
    hot = int(rng.integers(0, cardinality))
    values = np.where(
        rng.random(NUM_ROWS) < 0.9,
        hot,
        rng.integers(0, cardinality, NUM_ROWS),
    )
    for encoding in ENCODINGS:
        index = BitmapIndex(values, cardinality, base=Base((4, 4, 4)), encoding=encoding)
        for op in OPERATORS:
            predicate = Predicate(op, hot)
            got = evaluate(index, predicate)
            assert np.array_equal(got.to_bools(), predicate.matches(values))


# ---------------------------------------------------------------------------
# XOR / threshold / aggregate differential
# ---------------------------------------------------------------------------


def _assert_connectives_three_way(index: BitmapIndex, label: str) -> None:
    """XOR and k-of-N thresholds stay three-way identical over an index.

    Operands are equality bitmaps of distinct values fetched through each
    codec's own source; the oracle counts the dense operands' booleans.
    Charged op counts must also match across codecs (XOR charges one
    ``xor``, a non-trivial threshold charges ``N - 1`` ``or``s, both
    data-independent).
    """
    sources = _three_way_sources(index)
    operand_values = [0, 3, 7, 11]
    for codec, source in sources.items():
        operands = [
            evaluate(source, Predicate("=", v)) for v in operand_values
        ]
        dense_ops = [
            evaluate(sources["dense"], Predicate("=", v))
            for v in operand_values
        ]
        counts = np.sum([o.to_bools() for o in dense_ops], axis=0)

        xor_stats = ExecutionStats()
        xor_stats.xors += 1
        got = operands[0] ^ operands[1]
        want = dense_ops[0].to_bools() ^ dense_ops[1].to_bools()
        assert np.array_equal(got.to_bools(), want), f"{label}: {codec} xor"
        assert xor_stats.xors == 1

        for k in (0, 1, 2, len(operands), len(operands) + 2):
            stats = ExecutionStats()
            result = threshold_all(list(operands), k, stats)
            assert np.array_equal(result.to_bools(), counts >= k), (
                f"{label}: {codec} threshold k={k} diverges"
            )
            expected_ors = (
                len(operands) - 1 if 0 < k <= len(operands) else 0
            )
            assert stats.ors == expected_ors, (
                f"{label}: {codec} threshold k={k} charged {stats.ors} ors"
            )


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_threshold_xor_three_way_after_maintenance(encoding):
    """XOR/threshold kernels survive append/update/delete identically.

    Maintenance invalidates each codec's memoized bitmaps; the k-way
    threshold kernels then re-encode from the maintained truth — any
    stale or mis-merged container diverges from the dense counting
    oracle here.
    """
    cardinality = 24
    values = uniform_values(NUM_ROWS, cardinality, seed=47)
    index = BitmapIndex(
        values, cardinality, base=Base((5, 5)), encoding=encoding
    )
    rng = np.random.default_rng(53)
    _assert_connectives_three_way(index, f"pre-maintenance/{encoding.value}")

    index.append(rng.integers(0, cardinality, 50))
    _assert_connectives_three_way(index, f"post-append/{encoding.value}")

    for rid in (0, 5, NUM_ROWS + 10):
        index.update(rid, int(rng.integers(0, cardinality)))
    _assert_connectives_three_way(index, f"post-update/{encoding.value}")

    for rid in (1, 17, NUM_ROWS + 3):
        index.delete(rid)
    _assert_connectives_three_way(index, f"post-delete/{encoding.value}")


def _aggregate_fixture():
    rng = np.random.default_rng(59)
    n = 3000
    return Relation.from_dict(
        "sales",
        {
            "region": rng.integers(0, 5, n),
            "status": rng.integers(0, 3, n),
            "qty": rng.integers(0, 40, n),
        },
    )


AGG_EXPRS = [
    "region = 1 xor status = 2",
    "atleast(2, region = 1, status = 0, qty <= 20)",
    "atleast(1, region = 4, qty > 35)",
    "not (region = 0) and atleast(2, status = 1, qty < 10, region >= 3)",
]


@pytest.mark.parametrize("codec", ["dense", "wah", "roaring"])
def test_aggregate_counts_shard_invariant(codec):
    """count/group_count are identical across shard counts 1/2/7 vs inline.

    Shards return local popcounts and the merge is a summation; the
    merged logical op counts (shard 0's, by the stats-merge contract)
    must equal the inline run's — threshold/XOR charges are
    data-independent, so sharding cannot change them.
    """
    relation = _aggregate_fixture()
    with QueryEngine(codec=codec, backend="inline") as inline:
        inline.register(relation)
        want = {}
        for text in AGG_EXPRS:
            result = inline.count(text)
            groups = inline.group_count(text, "status")
            want[text] = (
                result.count,
                groups.groups,
                (result.stats.ors, result.stats.xors, result.stats.nots),
            )
            # The pushdown agrees with the RID-materializing path.
            assert result.count == len(inline.query(text).rids)
    for shards in (1, 2, 7):
        with QueryEngine(
            codec=codec, backend="processes", shards=shards
        ) as engine:
            engine.register(relation)
            for text in AGG_EXPRS:
                count, groups, logical_ops = want[text]
                got = engine.count(text)
                assert got.count == count, f"shards={shards}: {text}"
                got_groups = engine.group_count(text, "status")
                assert got_groups.groups == groups, f"shards={shards}: {text}"
                assert (
                    got.stats.ors,
                    got.stats.xors,
                    got.stats.nots,
                ) == logical_ops, f"shards={shards}: {text} op counts diverge"


def test_aggregates_track_maintained_values():
    """count/group_count stay truthful as the underlying rows churn.

    Simulated maintenance — append, update, delete — rebuilds the served
    relation each step; the pushed-down counts must match a numpy
    recount of the current rows every time.
    """
    rng = np.random.default_rng(61)
    region = rng.integers(0, 5, 500)
    qty = rng.integers(0, 40, 500)

    def check():
        relation = Relation.from_dict(
            "t", {"region": region, "qty": qty}
        )
        with QueryEngine(codec="roaring") as engine:
            engine.register(relation)
            for text in ("region = 2 xor qty > 30", "atleast(2, region <= 1, qty < 20)"):
                mask = parse_expression(text).mask(relation)
                assert engine.count(text).count == int(mask.sum()), text
                groups = engine.group_count(text, "region").groups
                for value, counted in groups.items():
                    assert counted == int((mask & (region == value)).sum())

    check()
    region = np.concatenate([region, rng.integers(0, 5, 80)])  # append
    qty = np.concatenate([qty, rng.integers(0, 40, 80)])
    check()
    region[[0, 17, 300]] = [4, 0, 2]  # update in place
    qty[[5, 99]] = [39, 0]
    check()
    keep = np.ones(len(region), dtype=bool)  # delete rows
    keep[[3, 250, 410]] = False
    region, qty = region[keep], qty[keep]
    check()
