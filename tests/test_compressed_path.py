"""End-to-end tests for the compressed execution path.

Covers the wiring the differential suite does not: zero-decode serving of
WAH-coded storage, the byte-budget shared cache, the engine's compressed
mode, and memo invalidation on index maintenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex, BitmapSource, CompressedBitmapSource
from repro.engine.cache import SharedBitmapCache
from repro.engine.engine import QueryEngine
from repro.errors import BufferConfigError
from repro.query.executor import AccessPath, bitmap_index_for, execute
from repro.query.options import QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import open_scheme, write_index

NUM_ROWS = 3000
CARDINALITY = 24


@pytest.fixture
def clustered_index(rng):
    values = np.sort(rng.integers(0, CARDINALITY, NUM_ROWS))
    return values, BitmapIndex(values, CARDINALITY, encoding=EncodingScheme.RANGE)


# ----------------------------------------------------------------------
# Compressed bitmap source over an in-memory index
# ----------------------------------------------------------------------


class TestCompressedBitmapSource:
    def test_satisfies_protocol(self, clustered_index):
        _, index = clustered_index
        source = index.as_compressed()
        assert isinstance(source, CompressedBitmapSource)
        assert isinstance(source, BitmapSource)
        assert source.compressed and not index.compressed

    def test_fetch_serves_wah_and_memoizes(self, clustered_index):
        _, index = clustered_index
        source = index.as_compressed()
        stats = ExecutionStats()
        first = source.fetch(1, 0, stats)
        second = source.fetch(1, 0, stats)
        assert isinstance(first, WahBitVector)
        assert first is second  # memoized on the index
        assert stats.scans == 2  # but every fetch still charges a scan

    def test_scan_charged_at_compressed_size(self, clustered_index):
        _, index = clustered_index
        dense_stats, comp_stats = ExecutionStats(), ExecutionStats()
        dense = index.fetch(1, 0, dense_stats)
        comp = index.as_compressed().fetch(1, 0, comp_stats)
        assert comp_stats.bytes_read == comp.nbytes < dense.nbytes
        assert dense_stats.bytes_read == dense.nbytes

    def test_maintenance_invalidates_memo(self, clustered_index):
        values, index = clustered_index
        source = index.as_compressed()
        pred = Predicate("=", int(values[0]))
        before = evaluate(index, pred)
        assert evaluate(source, pred) == WahBitVector.from_bitvector(before)
        index.update(0, (int(values[0]) + 1) % CARDINALITY)
        after = evaluate(source, pred)
        assert 0 not in after.indices()
        # And the dense path agrees post-maintenance.
        assert np.array_equal(after.indices(), evaluate(index, pred).indices())

    def test_delete_invalidates_nonnull(self, rng):
        values = rng.integers(0, CARDINALITY, 500)
        index = BitmapIndex(values, CARDINALITY)
        source = index.as_compressed()
        rid = int(np.flatnonzero(values == values[0])[0])
        pred = Predicate("=", int(values[0]))
        assert rid in evaluate(source, pred).indices()
        index.delete(rid)
        assert rid not in evaluate(source, pred).indices()

    def test_executor_runs_compressed(self, rng):
        rel = Relation.from_dict(
            "r", {"a": rng.integers(0, CARDINALITY, NUM_ROWS)}
        )
        source = bitmap_index_for(rel, "a", compressed=True)
        assert source.compressed
        result = execute(
            rel,
            AttributePredicate("a", "<=", 10),
            AccessPath.BITMAP,
            index=source,
            # cross-checked against the ground-truth scan
            options=QueryOptions(verify=True),
        )
        assert result.count == int((rel.column("a").values <= 10).sum())


# ----------------------------------------------------------------------
# Storage schemes serving WahBitVector
# ----------------------------------------------------------------------


class TestCompressedStorageServing:
    @pytest.mark.parametrize("scheme", ["BS", "CS", "IS"])
    @pytest.mark.parametrize("codec", ["wah", "zlib", None])
    def test_all_schemes_serve_wah_vectors(self, clustered_index, scheme, codec):
        values, index = clustered_index
        disk = SimulatedDisk()
        write_index(disk, "t", index, scheme=scheme, codec=codec)
        reader = open_scheme(disk, "t", compressed=True)
        stats = ExecutionStats()
        result = evaluate(reader, Predicate("<=", 10), stats=stats)
        assert isinstance(result, WahBitVector)
        assert np.array_equal(result.indices(), np.flatnonzero(values <= 10))

    def test_bs_wah_serves_payload_without_decoding(self, clustered_index):
        values, index = clustered_index
        disk = SimulatedDisk()
        write_index(disk, "t", index, scheme="BS", codec="wah")
        reader = open_scheme(disk, "t", compressed=True)
        stats = ExecutionStats()
        bitmap = reader.fetch(1, 3, stats)
        assert isinstance(bitmap, WahBitVector)
        # The served blob IS the stored payload: zero decode work.
        assert stats.decompressed_bytes == 0
        assert bitmap == WahBitVector.from_bitvector(index.fetch(1, 3, ExecutionStats()))

    def test_bs_wah_dense_mode_still_decodes(self, clustered_index):
        _, index = clustered_index
        disk = SimulatedDisk()
        write_index(disk, "t", index, scheme="BS", codec="wah")
        reader = open_scheme(disk, "t")  # dense mode
        stats = ExecutionStats()
        bitmap = reader.fetch(1, 3, stats)
        assert isinstance(bitmap, BitVector)
        assert stats.decompressed_bytes == (NUM_ROWS + 7) // 8

    def test_nonnull_served_compressed(self, rng):
        values = rng.integers(0, CARDINALITY, 500)
        nulls = rng.random(500) < 0.2
        index = BitmapIndex(values, CARDINALITY, nulls=nulls)
        disk = SimulatedDisk()
        write_index(disk, "t", index, scheme="BS", codec="wah")
        reader = open_scheme(disk, "t", compressed=True)
        assert isinstance(reader.nonnull, WahBitVector)
        result = evaluate(reader, Predicate("!=", 3))
        expected = (values != 3) & ~nulls
        assert np.array_equal(result.to_bools(), expected)


# ----------------------------------------------------------------------
# Byte-budget shared cache
# ----------------------------------------------------------------------


class TestByteBudgetCache:
    def test_bytes_cached_tracks_entries(self):
        cache = SharedBitmapCache(capacity=None, byte_budget=10_000)
        a = BitVector.ones(8 * 1000)  # 1000 bytes
        cache.put("a", a)
        assert cache.bytes_cached == 1000
        cache.put("a", a)  # replace: no double count
        assert cache.bytes_cached == 1000
        cache.put("b", BitVector.zeros(8 * 500))
        assert cache.bytes_cached == 1500
        snap = cache.snapshot()
        assert snap["bytes_cached"] == 1500
        assert snap["byte_budget"] == 10_000

    def test_evicts_lru_until_budget_holds(self):
        cache = SharedBitmapCache(capacity=None, byte_budget=2500)
        for key in "abc":
            cache.put(key, BitVector.ones(8 * 1000))
        assert len(cache) == 2
        assert cache.bytes_cached == 2000
        assert cache.evictions == 1
        assert cache.get("a") is None  # LRU victim
        assert cache.get("c") is not None

    def test_oversized_entry_not_cached(self):
        cache = SharedBitmapCache(capacity=None, byte_budget=100)
        cache.put("small", BitVector.ones(8 * 80))
        cache.put("huge", BitVector.ones(8 * 1000))
        assert "huge" not in cache
        assert "small" in cache  # and it did not evict the resident entry

    def test_entry_count_limit_still_enforced(self):
        cache = SharedBitmapCache(capacity=2, byte_budget=1_000_000)
        for key in "abcd":
            cache.put(key, BitVector.ones(64))
        assert len(cache) == 2

    def test_holds_many_more_compressed_entries(self, rng):
        """Same byte budget, >=4x more bitmaps when entries are compressed."""
        nbits = 64 * 1024
        bools = np.zeros(nbits, dtype=bool)
        bools[: nbits // 4] = True  # one long run: compresses to a few words
        budget = 4 * (nbits // 8)  # room for exactly 4 dense bitmaps
        dense_cache = SharedBitmapCache(capacity=None, byte_budget=budget)
        wah_cache = SharedBitmapCache(capacity=None, byte_budget=budget)
        for k in range(64):
            shifted = np.roll(bools, k)
            dense_cache.put(k, BitVector.from_bools(shifted))
            wah_cache.put(
                k, WahBitVector.from_bitvector(BitVector.from_bools(shifted))
            )
        assert len(dense_cache) == 4
        assert len(wah_cache) >= 4 * len(dense_cache)
        assert wah_cache.bytes_cached <= budget

    def test_config_validation(self):
        with pytest.raises(BufferConfigError):
            SharedBitmapCache(capacity=None, byte_budget=None)
        with pytest.raises(BufferConfigError):
            SharedBitmapCache(capacity=None, byte_budget=0)
        with pytest.raises(BufferConfigError):
            SharedBitmapCache(capacity=-1)


# ----------------------------------------------------------------------
# Engine compressed mode
# ----------------------------------------------------------------------


class TestEngineCompressedMode:
    @pytest.fixture
    def relation(self, rng):
        return Relation.from_dict(
            "sales",
            {
                "region": np.sort(rng.integers(0, 16, 8000)),
                "status": rng.integers(0, 6, 8000),
            },
        )

    def queries(self):
        return [
            AttributePredicate("region", "<=", 5),
            AttributePredicate("status", "=", 2),
            AttributePredicate("region", ">", 10),
            AttributePredicate("status", "!=", 4),
            AttributePredicate("region", ">=", 3),
        ]

    def test_compressed_engine_matches_dense(self, relation):
        dense = QueryEngine(cache_capacity=64)
        comp = QueryEngine(
            cache_capacity=None, cache_bytes=1 << 20, compressed=True
        )
        for engine in (dense, comp):
            engine.register(relation)
        dense_results = dense.query_batch(self.queries(), workers=2)
        comp_results = comp.query_batch(self.queries(), workers=2)
        for d, c in zip(dense_results, comp_results):
            assert np.array_equal(d.rids, c.rids)

    def test_cache_holds_compressed_payloads(self, relation):
        engine = QueryEngine(
            cache_capacity=None, cache_bytes=1 << 20, compressed=True
        )
        engine.register(relation)
        engine.query_batch(self.queries(), workers=1)
        snap = engine.cache.snapshot()
        assert snap["size"] > 0
        # Dense entries would be nbits/8 = 1000 bytes each; compressed
        # entries of the clustered column are far smaller in aggregate.
        assert snap["bytes_cached"] < snap["size"] * (8000 // 8)

    def test_cache_hits_on_repeat(self, relation):
        engine = QueryEngine(
            cache_capacity=None, cache_bytes=1 << 20, compressed=True
        )
        engine.register(relation)
        engine.query_batch(self.queries(), workers=1)
        misses_before = engine.cache.misses
        engine.query_batch(self.queries(), workers=1)
        assert engine.cache.misses == misses_before
        assert engine.cache.hits > 0
