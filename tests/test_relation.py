"""Tests for the column-store substrate (columns, relations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValueOutOfRangeError
from repro.relation.column import Column
from repro.relation.relation import Relation


class TestColumn:
    def test_dictionary_and_codes(self):
        col = Column("c", np.array([30, 10, 20, 10]))
        assert col.dictionary.tolist() == [10, 20, 30]
        assert col.codes.tolist() == [2, 0, 1, 0]
        assert col.cardinality == 3
        assert col.num_rows == 4

    def test_code_of(self):
        col = Column("c", np.array([30, 10, 20]))
        assert col.code_of(20) == 1
        assert col.code_of(15) is None

    def test_code_bounds_equality_absent_value(self):
        col = Column("c", np.array([30, 10, 20]))
        op, code = col.code_bounds("=", 15)
        assert op == "="
        assert code == col.cardinality  # out of range -> empty result

    def test_code_bounds_range_translation(self):
        col = Column("c", np.array([10, 20, 30]))
        # values < 25  <=>  codes < 2
        assert col.code_bounds("<", 25) == ("<", 2)
        # values <= 20  <=>  codes <= 1
        assert col.code_bounds("<=", 20) == ("<=", 1)
        # values <= 25  <=>  codes <= 1 as well (25 absent)
        assert col.code_bounds("<=", 25) == ("<=", 1)
        # values >= 20  <=>  codes >= 1
        assert col.code_bounds(">=", 20) == (">=", 1)
        # values > 20  <=>  codes > 1
        assert col.code_bounds(">", 20) == (">", 1)

    def test_code_bounds_unknown_op(self):
        col = Column("c", np.array([1, 2]))
        with pytest.raises(ValueOutOfRangeError):
            col.code_bounds("~", 1)

    def test_value_size_default_and_override(self):
        col = Column("c", np.array([1, 2], dtype=np.int64))
        assert col.value_size_bytes == 8
        assert Column("c", np.array([1, 2]), value_size_bytes=4).value_size_bytes == 4

    def test_rejects_2d(self):
        with pytest.raises(ValueOutOfRangeError):
            Column("c", np.zeros((2, 2)))

    def test_repr(self):
        assert "cardinality=2" in repr(Column("c", np.array([1, 2])))

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=60),
        op=st.sampled_from(["<", "<=", "=", "!=", ">=", ">"]),
        probe=st.integers(-55, 55),
    )
    def test_code_bounds_equivalence_property(self, values, op, probe):
        """Predicates translated to codes select exactly the same rows."""
        arr = np.array(values)
        col = Column("c", arr)
        code_op, code = col.code_bounds(op, probe)
        ops = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            ">=": lambda a, b: a >= b,
            ">": lambda a, b: a > b,
        }
        expected = ops[op](arr, probe)
        translated = ops[code_op](col.codes, code)
        assert np.array_equal(expected, translated)


class TestRelation:
    def test_from_dict(self):
        rel = Relation.from_dict(
            "r", {"a": np.array([1, 2, 3]), "b": np.array([4.0, 5.0, 6.0])}
        )
        assert rel.num_rows == 3
        assert set(rel.columns) == {"a", "b"}

    def test_row_bytes(self):
        rel = Relation.from_dict(
            "r",
            {"a": np.array([1, 2], dtype=np.int32), "b": np.array([1.0, 2.0])},
        )
        assert rel.row_bytes == 4 + 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            Relation.from_dict(
                "r", {"a": np.array([1]), "b": np.array([1, 2])}
            )

    def test_needs_columns(self):
        with pytest.raises(ValueOutOfRangeError):
            Relation("r", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            Relation("r", [Column("a", np.array([1])), Column("a", np.array([2]))])

    def test_unknown_column(self):
        rel = Relation.from_dict("r", {"a": np.array([1])})
        with pytest.raises(KeyError):
            rel.column("b")

    def test_scan_operators(self):
        rel = Relation.from_dict("r", {"a": np.array([5, 1, 3, 5])})
        assert rel.scan("a", "=", 5).tolist() == [0, 3]
        assert rel.scan("a", "<", 4).tolist() == [1, 2]
        assert rel.scan("a", "!=", 5).tolist() == [1, 2]
        assert rel.scan("a", ">=", 3).tolist() == [0, 2, 3]

    def test_scan_unknown_operator(self):
        rel = Relation.from_dict("r", {"a": np.array([1])})
        with pytest.raises(ValueOutOfRangeError):
            rel.scan("a", "~", 1)

    def test_repr(self):
        rel = Relation.from_dict("r", {"a": np.array([1])})
        assert "rows=1" in repr(rel)
