"""Tests for attribute value decomposition (mixed-radix bases)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import Base, integer_nth_root_ceil, product
from repro.errors import InvalidBaseError, ValueOutOfRangeError

base_strategy = st.lists(st.integers(2, 12), min_size=1, max_size=5).map(
    lambda bs: Base(tuple(bs))
)


class TestConstruction:
    def test_paper_notation_order(self):
        # Base <3, 3>: component 1 (least significant) is the last entry.
        base = Base((5, 3))
        assert base.component(1) == 3
        assert base.component(2) == 5

    def test_rejects_empty(self):
        with pytest.raises(InvalidBaseError):
            Base(())

    def test_rejects_base_numbers_below_two(self):
        with pytest.raises(InvalidBaseError):
            Base((3, 1))
        with pytest.raises(InvalidBaseError):
            Base((0,))

    def test_single(self):
        base = Base.single(9)
        assert base.n == 1
        assert base.capacity == 9

    def test_single_rejects_tiny_cardinality(self):
        with pytest.raises(InvalidBaseError):
            Base.single(1)

    def test_uniform_uses_minimal_components(self):
        assert Base.uniform(10, 100).n == 2
        assert Base.uniform(10, 101).n == 3
        assert Base.uniform(2, 8).n == 3
        assert Base.uniform(2, 9).n == 4

    def test_uniform_validation(self):
        with pytest.raises(InvalidBaseError):
            Base.uniform(1, 100)
        with pytest.raises(InvalidBaseError):
            Base.uniform(2, 1)

    def test_binary(self):
        base = Base.binary(100)
        assert base.is_uniform()
        assert base.component(1) == 2
        assert base.n == 7  # 2^7 = 128 >= 100

    def test_component_bounds_checked(self):
        base = Base((3, 3))
        with pytest.raises(IndexError):
            base.component(0)
        with pytest.raises(IndexError):
            base.component(3)

    def test_equality_and_hash(self):
        assert Base((3, 3)) == Base((3, 3))
        assert Base((3, 3)) == (3, 3)
        assert Base((3, 3)) != Base((3, 4))
        assert hash(Base((3, 3))) == hash(Base((3, 3)))
        assert len({Base((3, 3)), Base((3, 3)), Base((9,))}) == 2

    def test_iteration_and_len(self):
        base = Base((4, 3, 2))
        assert list(base) == [4, 3, 2]
        assert len(base) == 3

    def test_repr_uses_paper_notation(self):
        assert repr(Base((3, 3))) == "Base(<3, 3>)"

    def test_covers(self):
        assert Base((3, 3)).covers(9)
        assert not Base((3, 3)).covers(10)


class TestDigits:
    def test_paper_example(self):
        # Figure 3: value 8 in base <3,3> is digits <2, 2>.
        base = Base((3, 3))
        assert base.digits(8) == (2, 2)
        assert base.digits(5) == (2, 1)  # 5 = 1*3 + 2
        assert base.digits(0) == (0, 0)

    def test_compose_inverts_digits(self):
        base = Base((4, 3, 5))
        for v in range(base.capacity):
            assert base.compose(base.digits(v)) == v

    def test_digits_out_of_range(self):
        base = Base((3, 3))
        with pytest.raises(ValueOutOfRangeError):
            base.digits(9)
        with pytest.raises(ValueOutOfRangeError):
            base.digits(-1)

    def test_compose_validates_digit_count(self):
        with pytest.raises(ValueOutOfRangeError):
            Base((3, 3)).compose((1,))

    def test_compose_validates_digit_range(self):
        with pytest.raises(ValueOutOfRangeError):
            Base((3, 3)).compose((3, 0))

    def test_digit_arrays_matches_scalar(self, rng):
        base = Base((7, 2, 5))
        values = rng.integers(0, base.capacity, 200)
        arrays = base.digit_arrays(values)
        for row, v in enumerate(values):
            expected = base.digits(int(v))
            for i in range(base.n):
                assert arrays[i][row] == expected[i]

    def test_digit_arrays_validates_range(self):
        base = Base((3, 3))
        with pytest.raises(ValueOutOfRangeError):
            base.digit_arrays(np.array([9]))

    def test_digit_arrays_empty(self):
        base = Base((3, 3))
        arrays = base.digit_arrays(np.array([], dtype=np.int64))
        assert len(arrays) == 2
        assert len(arrays[0]) == 0


@settings(max_examples=100, deadline=None)
@given(base=base_strategy, data=st.data())
def test_round_trip_property(base, data):
    value = data.draw(st.integers(0, base.capacity - 1))
    digits = base.digits(value)
    assert len(digits) == base.n
    for i, d in enumerate(digits):
        assert 0 <= d < base.component(i + 1)
    assert base.compose(digits) == value


@settings(max_examples=50, deadline=None)
@given(base=base_strategy)
def test_capacity_is_product(base):
    assert base.capacity == product(base.bases)


class TestNthRoot:
    @pytest.mark.parametrize(
        "value,n,expected",
        [
            (1000, 2, 32),
            (1000, 3, 10),
            (1024, 10, 2),
            (1025, 10, 3),
            (2, 1, 2),
            (1, 5, 1),
            (10**12, 2, 10**6),
        ],
    )
    def test_known_values(self, value, n, expected):
        assert integer_nth_root_ceil(value, n) == expected

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(2, 10**9), n=st.integers(1, 20))
    def test_definition(self, value, n):
        b = integer_nth_root_ceil(value, n)
        assert b**n >= value
        assert (b - 1) ** n < value
