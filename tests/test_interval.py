"""Tests for the interval-encoding extension (Chan & Ioannidis 1999)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.encoding import (
    EncodingScheme,
    IntervalEncodedComponent,
    interval_window,
    stored_bitmap_count,
)
from repro.core.evaluation import OPERATORS, Predicate, evaluate, interval_eval
from repro.core.index import BitmapIndex
from repro.errors import InvalidPredicateError
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import open_scheme, write_index

CARDINALITY = 37
BASES = [Base((37,)), Base((7, 6)), Base((4, 3, 4)), Base.binary(37), Base((2, 19))]


def _index(base: Base, seed: int = 5) -> BitmapIndex:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, CARDINALITY, 200)
    return BitmapIndex(values, CARDINALITY, base, EncodingScheme.INTERVAL)


class TestComponent:
    def test_window_length(self):
        assert interval_window(2) == 1
        assert interval_window(3) == 2
        assert interval_window(4) == 2
        assert interval_window(5) == 3
        assert interval_window(10) == 5

    def test_stored_count_is_half_of_range(self):
        for b in range(4, 40):
            assert stored_bitmap_count(b, EncodingScheme.INTERVAL) == (b + 1) // 2
            assert (
                stored_bitmap_count(b, EncodingScheme.INTERVAL)
                <= stored_bitmap_count(b, EncodingScheme.RANGE)
            )

    def test_bitmap_contents_are_windows(self):
        digits = np.array([0, 1, 2, 3, 4, 4, 0, 2])
        comp = IntervalEncodedComponent.build(digits, base=5)
        m = 3
        for j in comp.stored_slots():
            expected = (digits >= j) & (digits <= j + m - 1)
            assert np.array_equal(comp.bitmap(j).to_bools(), expected)

    def test_every_digit_in_at_least_one_window(self):
        digits = np.arange(9)
        comp = IntervalEncodedComponent.build(digits, base=9)
        union = None
        for j in comp.stored_slots():
            b = comp.bitmap(j)
            union = b if union is None else union | b
        assert union.all()


@pytest.mark.parametrize("base", BASES, ids=str)
class TestCorrectness:
    def test_matches_naive_exhaustively(self, base):
        index = _index(base)
        for op in OPERATORS:
            for v in range(-2, CARDINALITY + 2):
                got = evaluate(index, Predicate(op, v))
                assert got == index.naive_eval(op, v), (op, v)

    def test_auto_dispatch(self, base):
        index = _index(base)
        got = evaluate(index, Predicate("<=", 11))
        assert got == index.naive_eval("<=", 11)


class TestScanBounds:
    def test_single_component_needs_at_most_two_scans(self):
        """The 1999 headline: any predicate, <= 2 scans per component."""
        index = _index(Base((37,)))
        for op in OPERATORS:
            for v in range(CARDINALITY):
                stats = ExecutionStats()
                evaluate(index, Predicate(op, v), stats=stats)
                assert stats.scans <= 2, (op, v)

    def test_space_half_time_higher_than_range(self):
        base = Base((37,))
        assert costmodel.space(base, EncodingScheme.INTERVAL) == 19
        assert costmodel.space(base, EncodingScheme.RANGE) == 36
        t_interval = costmodel.time(base, EncodingScheme.INTERVAL)
        t_range = costmodel.time_range(base)
        assert t_range < t_interval <= 2.0

    def test_encoding_mismatch_rejected(self):
        range_index = BitmapIndex(np.arange(10), 10)
        with pytest.raises(InvalidPredicateError):
            interval_eval(range_index, Predicate("=", 1))


class TestSimulatedCostModel:
    def test_simulation_matches_measurement(self):
        base = Base((7, 6))
        index = _index(base)
        total = count = 0
        for op in OPERATORS:
            for v in range(CARDINALITY):
                stats = ExecutionStats()
                evaluate(index, Predicate(op, v), stats=stats)
                total += stats.scans
                count += 1
        simulated = costmodel.expected_scans_simulated(
            base, CARDINALITY, EncodingScheme.INTERVAL
        )
        assert total / count == pytest.approx(simulated)

    def test_simulation_agrees_with_arithmetic_for_range(self):
        base = Base((7, 6))
        assert costmodel.expected_scans_simulated(
            base, CARDINALITY, EncodingScheme.RANGE
        ) == pytest.approx(
            costmodel.expected_scans(base, CARDINALITY, EncodingScheme.RANGE)
        )


class TestStorageIntegration:
    @pytest.mark.parametrize("scheme_name", ["BS", "cCS", "cIS"])
    def test_round_trips_through_storage(self, scheme_name):
        index = _index(Base((7, 6)))
        disk = SimulatedDisk()
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        assert reopened.encoding is EncodingScheme.INTERVAL
        for v in (0, 11, 36):
            got = evaluate(reopened, Predicate("<=", v))
            assert got == index.naive_eval("<=", v)
            reopened.reset_cache()


@settings(max_examples=60, deadline=None)
@given(
    bases=st.lists(st.integers(2, 9), min_size=1, max_size=3),
    op=st.sampled_from(OPERATORS),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_interval_matches_naive_property(bases, op, seed, data):
    base = Base(tuple(bases))
    cardinality = data.draw(st.integers(2, base.capacity))
    v = data.draw(st.integers(-2, cardinality + 1))
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, 60)
    index = BitmapIndex(values, cardinality, base, EncodingScheme.INTERVAL)
    assert evaluate(index, Predicate(op, v)) == index.naive_eval(op, v)
