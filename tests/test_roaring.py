"""Unit, property, and fuzz tests for the Roaring container codec.

Three layers, mirroring the WAH suite in ``test_wah.py``:

- container mechanics — adaptive kind selection, the 4096-element
  array<->bitmap flip, run coalescing, and the smallest-representation
  invariant after every operation;
- algebra laws — hypothesis-driven AND/OR/XOR/ANDNOT/NOT against dense
  :class:`BitVector` oracles, including commutativity and De Morgan;
- serialization — round trips plus hand-assembled and fuzzed corrupt
  payloads that must all raise :class:`CorruptFileError` (a corrupt
  stored bitmap must never decode to a silently wrong answer).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import (
    ARRAY,
    ARRAY_MAX,
    BITMAP,
    BITMAP_NBYTES,
    CHUNK_SIZE,
    RUN,
    RoaringBitmap,
    roaring_and_many,
    roaring_or_many,
)
from repro.engine.cache import SharedBitmapCache
from repro.errors import CorruptFileError, LengthMismatchError

_HEADER = struct.Struct("<4sBBQI")
_CONTAINER = struct.Struct("<HBI")


def _payload(nbits: int, containers: list[tuple[int, int, int, bytes]]) -> bytes:
    """Hand-assemble a roaring payload from (key, kind, count, body) tuples."""
    parts = [_HEADER.pack(b"ROAR", 1, 0, nbits, len(containers))]
    for key, kind, count, body in containers:
        parts.append(_CONTAINER.pack(key, kind, count))
        parts.append(body)
    return b"".join(parts)


def _array_body(values: list[int]) -> bytes:
    return np.array(values, dtype="<u2").tobytes()


def _run_body(runs: list[tuple[int, int]]) -> bytes:
    """Run body from (start, length) pairs; lengths stored minus one."""
    pairs = np.array([(s, length - 1) for s, length in runs], dtype="<u2")
    return pairs.tobytes()


def _bitmap_body(indices: list[int]) -> tuple[int, bytes]:
    words = np.zeros(BITMAP_NBYTES // 8, dtype=np.uint64)
    for i in indices:
        words[i >> 6] |= np.uint64(1) << np.uint64(i & 63)
    return len(indices), words.astype("<u8").tobytes()


def _kinds(bitmap: RoaringBitmap) -> list[str]:
    return [kind for _, kind in bitmap.container_kinds()]


# ----------------------------------------------------------------------
# Hypothesis strategies: one per container regime, plus the boundaries.
# ----------------------------------------------------------------------

#: Sparse scatter -> array containers.
sparse_chunks = st.lists(
    st.integers(0, 3 * CHUNK_SIZE - 1), max_size=200, unique=True
)

# Bitmap-container populations need > ARRAY_MAX unique elements, which is
# too much entropy to draw element-by-element; a seed + surplus count keeps
# hypothesis shrinking useful while numpy does the bulk sampling.
dense_chunk = st.tuples(st.integers(0, 2**16), st.integers(1, 600))

#: Run-structured data -> run containers.
run_lists = st.lists(
    st.tuples(st.integers(0, 120_000), st.integers(1, 4_000)),
    min_size=1,
    max_size=12,
)


def _runs_to_bools(nbits: int, runs: list[tuple[int, int]]) -> np.ndarray:
    bools = np.zeros(nbits, dtype=bool)
    for start, length in runs:
        bools[start : min(nbits, start + length)] = True
    return bools


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize(
        "nbits", [0, 1, 63, 64, 65, 4096, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1]
    )
    def test_zeros_and_ones(self, nbits):
        for bitmap in (RoaringBitmap.zeros(nbits), RoaringBitmap.ones(nbits)):
            back = RoaringBitmap.deserialize(bitmap.serialize())
            assert back == bitmap
            assert back.nbits == nbits

    def test_indices_round_trip(self, rng):
        nbits = 200_000
        indices = np.unique(rng.integers(0, nbits, 500))
        bitmap = RoaringBitmap.from_indices(nbits, indices)
        assert np.array_equal(bitmap.indices(), indices)
        assert bitmap.count() == len(indices)
        assert RoaringBitmap.deserialize(bitmap.serialize()) == bitmap

    def test_bitvector_round_trip(self, rng):
        bools = rng.random(150_000) < 0.3
        vector = BitVector.from_bools(bools)
        bitmap = RoaringBitmap.from_bitvector(vector)
        assert bitmap.to_bitvector() == vector
        assert np.array_equal(bitmap.to_bools(), bools)

    def test_empty_serializes_to_header_only(self):
        assert len(RoaringBitmap.zeros(1000).serialize()) == _HEADER.size

    @settings(max_examples=80, deadline=None)
    @given(indices=sparse_chunks)
    def test_sparse_property(self, indices):
        nbits = 3 * CHUNK_SIZE
        bitmap = RoaringBitmap.from_indices(nbits, indices)
        assert np.array_equal(bitmap.indices(), np.array(sorted(indices), dtype=np.int64))
        assert RoaringBitmap.deserialize(bitmap.serialize()) == bitmap

    @settings(max_examples=40, deadline=None)
    @given(params=dense_chunk)
    def test_dense_property(self, params):
        seed, extra = params
        rng = np.random.default_rng(seed)
        indices = rng.choice(CHUNK_SIZE, size=ARRAY_MAX + extra, replace=False)
        bitmap = RoaringBitmap.from_indices(CHUNK_SIZE, indices)
        assert bitmap.count() == ARRAY_MAX + extra
        assert RoaringBitmap.deserialize(bitmap.serialize()) == bitmap

    @settings(max_examples=40, deadline=None)
    @given(runs=run_lists)
    def test_run_property(self, runs):
        nbits = 130_000
        bools = _runs_to_bools(nbits, runs)
        bitmap = RoaringBitmap.from_bools(bools)
        assert np.array_equal(bitmap.to_bools(), bools)
        assert RoaringBitmap.deserialize(bitmap.serialize()) == bitmap


# ----------------------------------------------------------------------
# Container selection and transitions
# ----------------------------------------------------------------------


class TestContainerSelection:
    def test_sparse_scatter_is_array(self):
        bitmap = RoaringBitmap.from_indices(CHUNK_SIZE, range(0, 2000, 2))
        assert _kinds(bitmap) == ["array"]

    def test_array_max_scatter_stays_array(self):
        # ARRAY_MAX scattered elements (stride 2 prevents a run win).
        bitmap = RoaringBitmap.from_indices(CHUNK_SIZE, range(0, 2 * ARRAY_MAX, 2))
        assert bitmap.count() == ARRAY_MAX
        assert _kinds(bitmap) == ["array"]

    def test_one_past_array_max_flips_to_bitmap(self):
        bitmap = RoaringBitmap.from_indices(
            CHUNK_SIZE, range(0, 2 * (ARRAY_MAX + 1), 2)
        )
        assert bitmap.count() == ARRAY_MAX + 1
        assert _kinds(bitmap) == ["bitmap"]

    def test_removal_at_boundary_flips_back_to_array(self):
        over = RoaringBitmap.from_indices(CHUNK_SIZE, range(0, 2 * (ARRAY_MAX + 1), 2))
        one = RoaringBitmap.from_indices(CHUNK_SIZE, [2 * ARRAY_MAX])
        under = over.andnot(one)
        assert under.count() == ARRAY_MAX
        assert _kinds(under) == ["array"]

    def test_full_chunk_is_one_run(self):
        bitmap = RoaringBitmap.ones(CHUNK_SIZE)
        assert _kinds(bitmap) == ["run"]
        assert bitmap.nbytes < 64

    def test_half_dense_scatter_is_bitmap(self, rng):
        bools = rng.random(CHUNK_SIZE) < 0.5
        bitmap = RoaringBitmap.from_bools(bools)
        assert _kinds(bitmap) == ["bitmap"]

    def test_adjacent_runs_coalesce(self):
        # Two abutting intervals OR together into one run, not two.
        a = RoaringBitmap.from_indices(CHUNK_SIZE, range(0, 500))
        b = RoaringBitmap.from_indices(CHUNK_SIZE, range(500, 7000))
        merged = a | b
        assert _kinds(merged) == ["run"]
        assert merged.count() == 7000
        blob = merged.serialize()
        # One run container with exactly one (start, length) pair.
        assert len(blob) == _HEADER.size + _CONTAINER.size + 4

    def test_run_count_decides_against_arrays(self):
        # 3000 runs of 2 bits: 6000 elements fit an array (12000 bytes
        # dense-coded... no: 2*6000 = 12000 > 8192 bitmap, and 4*3000 =
        # 12000 runs) -> bitmap wins the three-way size race.
        indices = [i for start in range(0, 12_000, 4) for i in (start, start + 1)]
        bitmap = RoaringBitmap.from_indices(CHUNK_SIZE, indices)
        assert bitmap.count() == 6000
        assert _kinds(bitmap) == ["bitmap"]

    def test_ops_reseal_to_smallest_kind(self, rng):
        # AND of two ~50% bitmaps is ~25% of a chunk: still a bitmap; but
        # AND with a sparse array must come back as an array.
        dense = RoaringBitmap.from_bools(rng.random(CHUNK_SIZE) < 0.5)
        sparse = RoaringBitmap.from_indices(CHUNK_SIZE, range(0, 1000, 3))
        out = dense & sparse
        assert _kinds(out) in (["array"], [])

    def test_invert_of_sparse_is_runs(self):
        sparse = RoaringBitmap.from_indices(CHUNK_SIZE, [5, 900, 40_000])
        flipped = ~sparse
        assert _kinds(flipped) == ["run"]
        assert flipped.count() == CHUNK_SIZE - 3


# ----------------------------------------------------------------------
# Algebra laws against the dense oracle
# ----------------------------------------------------------------------

pairs = st.tuples(
    st.lists(st.integers(0, 150_000 - 1), max_size=300, unique=True),
    st.lists(st.integers(0, 150_000 - 1), max_size=300, unique=True),
)


class TestAlgebra:
    NBITS = 150_000

    def _pair(self, xs, ys):
        a = RoaringBitmap.from_indices(self.NBITS, xs)
        b = RoaringBitmap.from_indices(self.NBITS, ys)
        da = BitVector.from_indices(self.NBITS, xs)
        db = BitVector.from_indices(self.NBITS, ys)
        return a, b, da, db

    @settings(max_examples=60, deadline=None)
    @given(data=pairs)
    def test_binary_ops_match_oracle(self, data):
        xs, ys = data
        a, b, da, db = self._pair(xs, ys)
        assert (a & b).to_bitvector() == (da & db)
        assert (a | b).to_bitvector() == (da | db)
        assert (a ^ b).to_bitvector() == (da ^ db)
        assert a.andnot(b).to_bitvector() == da.andnot(db)

    @settings(max_examples=60, deadline=None)
    @given(data=pairs)
    def test_commutativity_and_de_morgan(self, data):
        xs, ys = data
        a, b, _, _ = self._pair(xs, ys)
        assert (a & b) == (b & a)
        assert (a | b) == (b | a)
        # De Morgan through ANDNOT: a \ b == a & ~b == ~(~a | b) & ... the
        # usable identity here: ~(a | b) == (~a).andnot(b).
        assert (~(a | b)) == (~a).andnot(b)
        assert (~(a & b)) == (~a) | (~b)

    @settings(max_examples=40, deadline=None)
    @given(xs=st.lists(st.integers(0, 150_000 - 1), max_size=300, unique=True))
    def test_invert_involution_and_count(self, xs):
        a = RoaringBitmap.from_indices(self.NBITS, xs)
        assert ~~a == a
        assert a.count() == len(xs)
        assert (~a).count() == self.NBITS - len(xs)

    def test_ops_on_clustered_data(self, rng):
        # Run-container heavy inputs exercise the run/run and run/other
        # op paths rather than the array fast paths.
        bools_a = _runs_to_bools(self.NBITS, [(0, 30_000), (70_000, 50_000)])
        bools_b = _runs_to_bools(self.NBITS, [(20_000, 60_000)])
        a, b = RoaringBitmap.from_bools(bools_a), RoaringBitmap.from_bools(bools_b)
        assert np.array_equal((a & b).to_bools(), bools_a & bools_b)
        assert np.array_equal((a | b).to_bools(), bools_a | bools_b)
        assert np.array_equal((a ^ b).to_bools(), bools_a ^ bools_b)
        assert np.array_equal(a.andnot(b).to_bools(), bools_a & ~bools_b)

    def test_kway_match_pairwise_fold(self, rng):
        vectors = [
            RoaringBitmap.from_bools(rng.random(self.NBITS) < d)
            for d in (0.001, 0.01, 0.2, 0.6)
        ]
        acc_or, acc_and = vectors[0], vectors[0]
        for v in vectors[1:]:
            acc_or = acc_or | v
            acc_and = acc_and & v
        assert roaring_or_many(vectors) == acc_or
        assert roaring_and_many(vectors) == acc_and
        assert RoaringBitmap.or_many(vectors) == acc_or
        assert RoaringBitmap.and_many(vectors) == acc_and

    def test_length_mismatch_rejected(self):
        a = RoaringBitmap.zeros(100)
        b = RoaringBitmap.zeros(101)
        with pytest.raises(LengthMismatchError):
            a & b

    def test_foreign_type_rejected(self):
        a = RoaringBitmap.zeros(100)
        with pytest.raises(TypeError):
            a & BitVector.zeros(100)


# ----------------------------------------------------------------------
# Corrupt payloads
# ----------------------------------------------------------------------


class TestCorruption:
    def test_short_header(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(b"ROAR\x01")

    def test_bad_magic(self):
        blob = RoaringBitmap.ones(100).serialize()
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(b"WAHX" + blob[4:])

    def test_bad_version(self):
        blob = bytearray(RoaringBitmap.ones(100).serialize())
        blob[4] = 99
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(bytes(blob))

    def test_too_many_containers_declared(self):
        # 100 bits = 1 chunk, but the header declares 2 containers.
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(100, [(0, ARRAY, 1, _array_body([0]))] * 2)
            )

    def test_truncated_container_header(self):
        blob = _payload(100, [(0, ARRAY, 1, _array_body([0]))])
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(blob[: _HEADER.size + 3])

    def test_empty_container_rejected(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(_payload(100, [(0, ARRAY, 0, b"")]))

    def test_non_increasing_keys(self):
        containers = [
            (1, ARRAY, 1, _array_body([0])),
            (0, ARRAY, 1, _array_body([0])),
        ]
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(_payload(3 * CHUNK_SIZE, containers))

    def test_key_out_of_range(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(_payload(100, [(4, ARRAY, 1, _array_body([0]))]))

    def test_unsorted_array(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(100, [(0, ARRAY, 2, _array_body([5, 3]))])
            )

    def test_duplicate_array_values(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(100, [(0, ARRAY, 2, _array_body([5, 5]))])
            )

    def test_array_value_beyond_nbits(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(100, [(0, ARRAY, 1, _array_body([100]))])
            )

    def test_bitmap_cardinality_mismatch(self):
        count, body = _bitmap_body(list(range(0, 9000, 2)))
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(CHUNK_SIZE, [(0, BITMAP, count + 1, body)])
            )

    def test_bitmap_bits_beyond_nbits(self):
        count, body = _bitmap_body(list(range(4000, 9001, 2)))
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(_payload(9000, [(0, BITMAP, count, body)]))

    def test_overlapping_runs(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(1000, [(0, RUN, 2, _run_body([(0, 100), (50, 100)]))])
            )

    def test_uncoalesced_adjacent_runs(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(1000, [(0, RUN, 2, _run_body([(0, 100), (100, 100)]))])
            )

    def test_run_beyond_nbits(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(
                _payload(100, [(0, RUN, 1, _run_body([(50, 51)]))])
            )

    def test_unknown_container_kind(self):
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(_payload(100, [(0, 3, 1, _array_body([0]))]))

    def test_trailing_bytes(self):
        blob = RoaringBitmap.from_indices(100, [3, 5]).serialize()
        with pytest.raises(CorruptFileError):
            RoaringBitmap.deserialize(blob + b"\x00")


# A mixed-kind fixture bitmap for the fuzz tests: array + bitmap + run
# containers in one payload.
def _mixed_bitmap(rng: np.random.Generator) -> RoaringBitmap:
    bools = np.zeros(3 * CHUNK_SIZE, dtype=bool)
    bools[rng.integers(0, CHUNK_SIZE, 300)] = True  # chunk 0: array
    dense = rng.random(CHUNK_SIZE) < 0.4
    bools[CHUNK_SIZE : 2 * CHUNK_SIZE] = dense  # chunk 1: bitmap
    bools[2 * CHUNK_SIZE + 1000 : 2 * CHUNK_SIZE + 60_000] = True  # chunk 2: run
    return RoaringBitmap.from_bools(bools)


@settings(max_examples=80, deadline=None)
@given(cut=st.integers(0, 10_000), seed=st.integers(0, 3))
def test_fuzz_any_truncation_raises(cut, seed):
    """Every strict prefix of a valid payload must be rejected."""
    blob = _mixed_bitmap(np.random.default_rng(seed)).serialize()
    truncated = blob[: cut % len(blob)]
    with pytest.raises(CorruptFileError):
        RoaringBitmap.deserialize(truncated)


@settings(max_examples=60, deadline=None)
@given(extra=st.binary(min_size=1, max_size=64), seed=st.integers(0, 3))
def test_fuzz_overlong_payload_raises(extra, seed):
    """Any bytes past the declared containers must be rejected."""
    blob = _mixed_bitmap(np.random.default_rng(seed)).serialize()
    with pytest.raises(CorruptFileError):
        RoaringBitmap.deserialize(blob + extra)


@settings(max_examples=80, deadline=None)
@given(garbage=st.binary(max_size=256))
def test_fuzz_garbage_raises(garbage):
    """Arbitrary bytes (wrong magic) never decode."""
    if garbage[:4] == b"ROAR":  # pragma: no cover - 2^-32 per example
        garbage = b"XXXX" + garbage[4:]
    with pytest.raises(CorruptFileError):
        RoaringBitmap.deserialize(garbage)


@settings(max_examples=60, deadline=None)
@given(position=st.integers(0, 1 << 30), flip=st.integers(0, 7), seed=st.integers(0, 3))
def test_fuzz_bit_flips_never_crash(position, flip, seed):
    """A single flipped bit either raises CorruptFileError or decodes.

    There is no checksum, so some flips (e.g. inside a bitmap container's
    words alongside a matching count) cannot be detected — but no flip may
    escape as IndexError/ValueError or decode to a structurally invalid
    object.
    """
    blob = bytearray(_mixed_bitmap(np.random.default_rng(seed)).serialize())
    index = _HEADER.size + position % (len(blob) - _HEADER.size)
    blob[index] ^= 1 << flip
    try:
        decoded = RoaringBitmap.deserialize(bytes(blob))
    except CorruptFileError:
        return
    # If it decoded, it must re-serialize cleanly (structural validity).
    assert RoaringBitmap.deserialize(decoded.serialize()) == decoded


# ----------------------------------------------------------------------
# Interop: cache byte accounting across mixed codecs
# ----------------------------------------------------------------------


class TestMixedCodecCache:
    def test_nbytes_tracks_serialized_size(self, rng):
        bitmap = RoaringBitmap.from_bools(rng.random(200_000) < 0.01)
        assert bitmap.nbytes >= len(bitmap.serialize())
        # and is a real accounting hook, not the dense footprint
        assert bitmap.nbytes < BitVector.from_bools(np.zeros(200_000, bool)).nbytes

    def test_mixed_wah_roaring_budget_respected(self, rng):
        """A shared cache holding both codecs never exceeds byte_budget.

        Regression for the cache's ``nbytes`` accounting hook: the budget
        must govern the codecs' real payload bytes, whichever class the
        entry is.
        """
        budget = 50_000
        cache = SharedBitmapCache(capacity=None, byte_budget=budget)
        nbits = 100_000
        for i in range(40):
            bools = rng.random(nbits) < rng.choice([0.001, 0.05, 0.4])
            vector = BitVector.from_bools(bools)
            if i % 2:
                cache.put(("rel", "a", "wah", i), WahBitVector.from_bitvector(vector))
            else:
                cache.put(
                    ("rel", "a", "roaring", i), RoaringBitmap.from_bitvector(vector)
                )
            assert cache.bytes_cached <= budget
        snap = cache.snapshot()
        assert snap["bytes_cached"] <= budget
        assert len(cache) > 0
