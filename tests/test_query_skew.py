"""Tests for the weighted cost model and the query-skew ablation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.errors import InvalidPredicateError
from repro.experiments import ablation_query_skew


class TestWeightedScans:
    @pytest.mark.parametrize(
        "base", [Base((24,)), Base((6, 4)), Base((2, 3, 4))], ids=str
    )
    @pytest.mark.parametrize(
        "encoding,algorithm",
        [
            (EncodingScheme.RANGE, "range_eval_opt"),
            (EncodingScheme.RANGE, "range_eval"),
            (EncodingScheme.EQUALITY, "equality_eval"),
        ],
    )
    def test_uniform_weights_reduce_to_expected_scans(
        self, base, encoding, algorithm
    ):
        c = 24
        uniform = np.ones(c)
        weighted = costmodel.expected_scans_weighted(
            base, c, uniform, encoding, algorithm
        )
        plain = costmodel.expected_scans(base, c, encoding, algorithm)
        assert weighted == pytest.approx(plain)

    def test_point_mass_matches_per_predicate_costs(self):
        base = Base((6, 4))
        c = 24
        v = 13
        weights = np.zeros(c)
        weights[v] = 1.0
        weighted = costmodel.expected_scans_weighted(base, c, weights)
        ops = ("<", "<=", "=", "!=", ">=", ">")
        expected = sum(
            costmodel.scans_for_predicate(base, c, op, v) for op in ops
        ) / len(ops)
        assert weighted == pytest.approx(expected)

    def test_weight_validation(self):
        base = Base((6, 4))
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans_weighted(base, 24, np.ones(10))
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans_weighted(base, 24, -np.ones(24))
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans_weighted(base, 24, np.zeros(24))

    def test_interval_not_supported(self):
        base = Base((6, 4))
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans_weighted(
                base, 24, np.ones(24), EncodingScheme.INTERVAL
            )

    def test_skew_toward_boundary_values_lowers_cost(self):
        # Constants at digit boundaries scan fewer bitmaps; loading the
        # weight onto v = 0 must not cost more than uniform.
        base = Base((6, 4))
        c = 24
        point = np.zeros(c)
        point[0] = 1.0
        assert costmodel.expected_scans_weighted(
            base, c, point
        ) <= costmodel.expected_scans(base, c)


class TestSkewAblation:
    def test_knee_near_optimal_under_skew(self):
        result = ablation_query_skew.run(quick=True, cardinality=36)
        for row in result.rows:
            assert row[4] <= 10.0  # degradation percent

    def test_zero_skew_matches_uniform_model(self):
        result = ablation_query_skew.run(
            quick=True, cardinality=36, skews=(0.0,)
        )
        (row,) = result.rows
        from repro.core.optimize import knee_base

        assert row[1] == pytest.approx(
            costmodel.expected_scans(knee_base(36), 36)
        )
