"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Shrink the workload knobs so examples stay fast under test.
    path = os.path.join(EXAMPLES_DIR, script)
    module_globals = runpy.run_path(path, run_name="not_main")
    if "NUM_ROWS" in module_globals:
        monkeypatch.setitem(module_globals, "NUM_ROWS", 2000)
    module_globals["main"]()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reproduces_figure_7(capsys):
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    module_globals = runpy.run_path(path, run_name="not_main")
    module_globals["main"]()
    out = capsys.readouterr().out
    # A <= 5 on the Figure 1 column matches rows with values {3,2,1,2,2,2,0,5}.
    assert "rows [0, 1, 2, 3, 5, 6, 7, 9]" in out


def test_examples_are_executable_as_scripts():
    for script in EXAMPLES:
        with open(os.path.join(EXAMPLES_DIR, script)) as handle:
            text = handle.read()
        assert '__name__ == "__main__"' in text, script
        assert '"""' in text.split("\n", 1)[0] + text, script
