"""Property-based randomized tests for :class:`BitVector`.

Hypothesis-style properties driven by seeded numpy randomness (fixed
seeds, so the suite is deterministic and needs no extra dependency): every
logical operation is checked against Python's arbitrary-precision integer
bitwise semantics, and every serialization surface round-trips — including
lengths that are not multiples of 64, where the packed tail word must stay
masked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmaps.bitvector import BitVector
from repro.errors import LengthMismatchError

#: Lengths straddling word and byte boundaries (the tail-masking hot spots).
LENGTHS = [1, 3, 7, 8, 9, 31, 32, 63, 64, 65, 100, 127, 128, 129, 191, 1000]
SEEDS = [0, 1, 2]


def random_vector(nbits: int, seed: int, density: float = 0.5) -> BitVector:
    rng = np.random.default_rng(seed * 10_007 + nbits)
    return BitVector.from_bools(rng.random(nbits) < density)


def as_int(vec: BitVector) -> int:
    """The vector as a Python big int (bit i of the int == bit i of the vector)."""
    return int.from_bytes(vec.to_bytes(), "little")


def full_mask(nbits: int) -> int:
    return (1 << nbits) - 1


# ----------------------------------------------------------------------
# Logical operations vs. big-int semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", LENGTHS)
def test_and_or_xor_match_bigint(nbits, seed):
    a = random_vector(nbits, seed)
    b = random_vector(nbits, seed + 100)
    ia, ib = as_int(a), as_int(b)
    assert as_int(a & b) == ia & ib
    assert as_int(a | b) == ia | ib
    assert as_int(a ^ b) == ia ^ ib


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", LENGTHS)
def test_not_and_andnot_match_bigint(nbits, seed):
    a = random_vector(nbits, seed)
    b = random_vector(nbits, seed + 100)
    ia, ib = as_int(a), as_int(b)
    # NOT must complement within [0, nbits) and keep the tail zero.
    assert as_int(~a) == ia ^ full_mask(nbits)
    assert as_int(a.andnot(b)) == ia & ~ib & full_mask(nbits)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", LENGTHS)
def test_count_and_indices_match_bigint(nbits, seed):
    a = random_vector(nbits, seed)
    ia = as_int(a)
    assert a.count() == ia.bit_count()
    expected = [i for i in range(nbits) if (ia >> i) & 1]
    assert a.indices().tolist() == expected
    assert list(a.iter_indices()) == expected
    assert a.any() == (ia != 0)
    assert a.all() == (ia == full_mask(nbits))


@pytest.mark.parametrize("nbits", LENGTHS)
def test_de_morgan_and_double_complement(nbits):
    a = random_vector(nbits, 7)
    b = random_vector(nbits, 8)
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)
    assert ~~a == a
    assert (a ^ b) == (a | b).andnot(a & b)


@pytest.mark.parametrize("nbits", LENGTHS)
def test_identities_with_zeros_and_ones(nbits):
    a = random_vector(nbits, 3)
    zeros, ones = BitVector.zeros(nbits), BitVector.ones(nbits)
    assert (a & ones) == a
    assert (a | zeros) == a
    assert (a ^ a) == zeros
    assert (a | ~a) == ones
    assert ones.count() == nbits
    assert zeros.count() == 0


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", LENGTHS)
def test_bytes_roundtrip(nbits, seed):
    a = random_vector(nbits, seed)
    data = a.to_bytes()
    assert len(data) == (nbits + 7) // 8 == a.nbytes
    back = BitVector.from_bytes(data, nbits)
    assert back == a
    assert as_int(back) == as_int(a)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", LENGTHS)
def test_bools_roundtrip(nbits, seed):
    rng = np.random.default_rng(seed * 31 + nbits)
    bools = rng.random(nbits) < 0.3
    vec = BitVector.from_bools(bools)
    assert np.array_equal(vec.to_bools(), bools)
    assert vec.count() == int(bools.sum())
    # And back again through bytes.
    assert np.array_equal(
        BitVector.from_bytes(vec.to_bytes(), nbits).to_bools(), bools
    )


@pytest.mark.parametrize("nbits", LENGTHS)
def test_indices_roundtrip(nbits):
    rng = np.random.default_rng(nbits)
    k = int(rng.integers(0, nbits + 1))
    indices = np.sort(rng.choice(nbits, size=k, replace=False))
    vec = BitVector.from_indices(nbits, indices)
    assert np.array_equal(vec.indices(), indices)
    assert vec.count() == k


@pytest.mark.parametrize("nbits", LENGTHS)
def test_get_set_matches_bigint(nbits):
    rng = np.random.default_rng(nbits + 99)
    vec = BitVector.zeros(nbits)
    model = 0
    for _ in range(min(nbits, 64)):
        i = int(rng.integers(0, nbits))
        value = bool(rng.integers(0, 2))
        vec.set(i, value)
        model = model | (1 << i) if value else model & ~(1 << i)
    assert as_int(vec) == model
    for i in range(nbits):
        assert vec.get(i) == bool((model >> i) & 1)
        assert vec[i] == vec.get(i)


# ----------------------------------------------------------------------
# Tail masking and edge shapes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("nbits", [n for n in LENGTHS if n % 64])
def test_tail_word_stays_masked_after_not(nbits):
    # A non-multiple-of-64 NOT would see garbage tail bits without masking.
    vec = ~BitVector.zeros(nbits)
    assert vec.count() == nbits
    raw = np.frombuffer(vec.to_bytes(), dtype=np.uint8)
    spare = 8 * len(raw) - nbits
    if spare:
        assert int(raw[-1]) >> (8 - spare) == 0


def test_empty_vector():
    vec = BitVector.zeros(0)
    assert len(vec) == 0
    assert vec.count() == 0
    assert vec.to_bytes() == b""
    assert BitVector.from_bytes(b"", 0) == vec
    assert (~vec).count() == 0


def test_copy_is_independent():
    a = random_vector(130, 5)
    b = a.copy()
    assert a == b
    b.set(0, not b.get(0))
    assert a != b


@pytest.mark.parametrize("nbits", [64, 65])
def test_length_mismatch_rejected(nbits):
    a = BitVector.zeros(nbits)
    b = BitVector.zeros(nbits + 1)
    with pytest.raises(LengthMismatchError):
        _ = a & b


def test_from_bytes_length_validated():
    with pytest.raises(ValueError):
        BitVector.from_bytes(b"\x00\x00", 100)


def test_from_indices_out_of_range_rejected():
    with pytest.raises(IndexError):
        BitVector.from_indices(10, [10])
    with pytest.raises(IndexError):
        BitVector.from_indices(10, [-1])


# ----------------------------------------------------------------------
# WahBitVector: compressed algebra vs. big-int semantics
# ----------------------------------------------------------------------

from repro.bitmaps.compressed import WahBitVector  # noqa: E402

#: Lengths straddling the 31-bit WAH group boundary (and the word/byte
#: hot spots above) — where fill runs meet padded literal tails.
WAH_LENGTHS = sorted(set(LENGTHS + [30, 31, 62, 63, 93, 155, 248, 249, 310]))


def random_wah(nbits: int, seed: int, density: float = 0.5) -> WahBitVector:
    return WahBitVector.from_bitvector(random_vector(nbits, seed, density))


def wah_as_int(vec: WahBitVector) -> int:
    return as_int(vec.to_bitvector())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", WAH_LENGTHS)
def test_wah_and_or_xor_match_bigint(nbits, seed):
    a = random_wah(nbits, seed)
    b = random_wah(nbits, seed + 100)
    ia, ib = wah_as_int(a), wah_as_int(b)
    assert wah_as_int(a & b) == ia & ib
    assert wah_as_int(a | b) == ia | ib
    assert wah_as_int(a ^ b) == ia ^ ib


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", WAH_LENGTHS)
@pytest.mark.parametrize("density", [0.02, 0.5, 0.98])
def test_wah_not_masks_padded_tail(nbits, seed, density):
    # NOT must complement within [0, nbits) and keep the 31-bit padding
    # tail zero — the compressed analogue of dense tail-word masking.
    a = random_wah(nbits, seed, density)
    assert wah_as_int(~a) == wah_as_int(a) ^ full_mask(nbits)
    assert (~~a) == a


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", WAH_LENGTHS)
def test_wah_count_and_indices_match_bigint(nbits, seed):
    a = random_wah(nbits, seed, density=0.1)
    ia = wah_as_int(a)
    assert a.count() == ia.bit_count()
    assert a.indices().tolist() == [i for i in range(nbits) if (ia >> i) & 1]
    assert a.any() == (ia != 0)


@pytest.mark.parametrize("nbits", WAH_LENGTHS)
def test_wah_identities_with_zeros_and_ones(nbits):
    a = random_wah(nbits, 3)
    zeros, ones = WahBitVector.zeros(nbits), WahBitVector.ones(nbits)
    assert (a & ones) == a
    assert (a | zeros) == a
    assert (a ^ a) == zeros
    assert (a | ~a) == ones
    assert ones.count() == nbits
    assert zeros.count() == 0


@pytest.mark.parametrize("nbits", WAH_LENGTHS)
@pytest.mark.parametrize("k", [2, 3, 5])
def test_wah_kway_matches_pairwise_fold(nbits, k):
    vectors = [random_wah(nbits, 50 + j, density=0.2) for j in range(k)]
    ints = [wah_as_int(v) for v in vectors]
    acc_or = acc_and = ints[0]
    for i in ints[1:]:
        acc_or |= i
        acc_and &= i
    assert wah_as_int(WahBitVector.or_many(vectors)) == acc_or
    assert wah_as_int(WahBitVector.and_many(vectors)) == acc_and


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("nbits", WAH_LENGTHS)
def test_wah_dense_roundtrip(nbits, seed):
    dense = random_vector(nbits, seed, density=0.3)
    wah = WahBitVector.from_bitvector(dense)
    assert wah.nbits == nbits
    assert wah.to_bitvector() == dense
    assert np.array_equal(wah.to_bools(), dense.to_bools())


def test_wah_length_mismatch_rejected():
    a = WahBitVector.zeros(64)
    b = WahBitVector.zeros(65)
    with pytest.raises(LengthMismatchError):
        _ = a & b
    with pytest.raises(LengthMismatchError):
        WahBitVector.or_many([a, b])


def test_wah_empty_vector():
    vec = WahBitVector.zeros(0)
    assert vec.count() == 0
    assert (~vec).count() == 0
    assert vec.indices().tolist() == []


def test_wah_run_structured_input_stays_small():
    # 10k rows in 4 runs: the payload must be a handful of words, and the
    # compressed complement must stay just as small.
    bools = np.zeros(10_000, dtype=bool)
    bools[2_000:5_000] = True
    bools[7_000:7_031] = True
    wah = WahBitVector.from_bitvector(BitVector.from_bools(bools))
    assert wah.compressed_bytes < 64
    assert (~wah).compressed_bytes < 64
    assert wah.count() == 3_031
