"""Tests for Section 10: buffer assignments and buffered-time optimality."""

from __future__ import annotations

import itertools

import pytest
from fractions import Fraction

from repro.core import costmodel
from repro.core.buffering import (
    BufferAssignment,
    buffered_time,
    marginal_benefit,
    optimal_assignment,
    time_optimal_base_buffered,
)
from repro.core.decomposition import Base
from repro.core.optimize import enumerate_bases
from repro.errors import BufferConfigError, InvalidBaseError


class TestBufferAssignment:
    def test_total(self):
        a = BufferAssignment(Base((10, 10)), (3, 2))
        assert a.total == 5

    def test_expected_scans_matches_costmodel(self):
        base = Base((10, 10))
        a = BufferAssignment(base, (3, 2))
        assert a.expected_scans() == costmodel.time_range_buffered(base, (3, 2))

    def test_length_validated(self):
        with pytest.raises(BufferConfigError):
            BufferAssignment(Base((10, 10)), (1,))

    def test_bounds_validated(self):
        with pytest.raises(BufferConfigError):
            BufferAssignment(Base((10, 10)), (9, 10))
        with pytest.raises(BufferConfigError):
            BufferAssignment(Base((10, 10)), (-1, 0))


class TestMarginalBenefit:
    def test_component_one_discounted(self):
        base = Base((10, 10))
        assert marginal_benefit(base, 1) == Fraction(4, 30)
        assert marginal_benefit(base, 2) == Fraction(2, 10)

    def test_theorem_10_1_class_boundary(self):
        # A component i >= 2 outranks component 1 iff b_i <= 1.5 * b_1.
        base = Base((15, 10))  # b_2 = 15 = 1.5 * b_1
        assert marginal_benefit(base, 2) >= marginal_benefit(base, 1)
        base = Base((16, 10))
        assert marginal_benefit(base, 2) < marginal_benefit(base, 1)


class TestOptimalAssignment:
    def test_zero_buffer(self):
        a = optimal_assignment(Base((10, 10)), 0)
        assert a.counts == (0, 0)

    def test_prefers_smaller_base_components(self):
        # Base <2, 50>: component 2 (b=2) has benefit 1, component 1 has
        # 4/150 — the single buffered bitmap goes to component 2.
        a = optimal_assignment(Base((2, 50)), 1)
        assert a.counts == (0, 1)

    def test_caps_at_stored_bitmaps(self):
        a = optimal_assignment(Base((2, 50)), 5)
        assert a.counts == (4, 1)

    def test_everything_buffered(self):
        base = Base((4, 4))
        a = optimal_assignment(base, 100)
        assert a.counts == (3, 3)
        assert a.expected_scans() == pytest.approx(0.0)

    def test_negative_rejected(self):
        with pytest.raises(BufferConfigError):
            optimal_assignment(Base((4, 4)), -1)

    @pytest.mark.parametrize(
        "base", [Base((10, 10)), Base((2, 5, 13)), Base((3, 3, 4))], ids=str
    )
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8])
    def test_optimal_against_exhaustive_assignments(self, base, m):
        """Greedy == best over every well-defined m-bitmap assignment."""
        greedy = buffered_time(base, m)
        ranges = [range(min(b - 1, m) + 1) for b in reversed(base.bases)]
        best = min(
            (
                costmodel.time_range_buffered(base, counts)
                for counts in itertools.product(*ranges)
                if sum(counts) == min(m, costmodel.space_range(base))
            ),
            default=costmodel.time_range(base),
        )
        assert greedy == pytest.approx(best)


class TestBufferedTime:
    def test_monotone_in_m(self):
        base = Base((10, 10))
        times = [buffered_time(base, m) for m in range(0, 19)]
        assert times == sorted(times, reverse=True)
        assert times[-1] == pytest.approx(0.0)

    def test_m_zero_matches_eq4(self):
        base = Base((7, 11))
        assert buffered_time(base, 0) == pytest.approx(costmodel.time_range(base))


class TestTheorem102:
    def test_shape(self):
        assert time_optimal_base_buffered(1000, 0) == Base((1000,))
        assert time_optimal_base_buffered(1000, 1) == Base((1000,))
        assert time_optimal_base_buffered(1000, 2) == Base((2, 500))
        assert time_optimal_base_buffered(1000, 4) == Base((2, 2, 2, 125))

    def test_caps_at_binary_index(self):
        assert time_optimal_base_buffered(100, 50) == Base.binary(100)

    @pytest.mark.parametrize("cardinality", [25, 64, 100])
    @pytest.mark.parametrize("m", [0, 1, 2, 3, 5, 7])
    def test_optimal_by_search(self, cardinality, m):
        claimed = buffered_time(time_optimal_base_buffered(cardinality, m), m)
        best = min(
            buffered_time(b, m)
            for b in enumerate_bases(cardinality, tight_only=True)
        )
        assert claimed <= best + 1e-9

    def test_validation(self):
        with pytest.raises(BufferConfigError):
            time_optimal_base_buffered(100, -1)
        with pytest.raises(InvalidBaseError):
            time_optimal_base_buffered(1, 2)
