"""Package-level tests: exports, error hierarchy, stats, doctests."""

from __future__ import annotations

import doctest

import pytest

import repro
from repro import errors
from repro.stats import ExecutionStats


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_is_runnable(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

    def test_predicate_parser_doctest(self):
        from repro.query import predicate

        results = doctest.testmod(predicate, verbose=False)
        assert results.failed == 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_value_errors_also_catchable_as_value_error(self):
        assert issubclass(errors.InvalidBaseError, ValueError)
        assert issubclass(errors.InvalidPredicateError, ValueError)
        assert issubclass(errors.LengthMismatchError, ValueError)

    def test_file_missing_is_key_error(self):
        assert issubclass(errors.FileMissingError, KeyError)

    def test_library_failures_catchable_at_top(self):
        from repro import Base

        with pytest.raises(repro.ReproError):
            Base((1,))


class TestExecutionStats:
    def test_ops_property(self):
        stats = ExecutionStats(ands=1, ors=2, xors=3, nots=4)
        assert stats.ops == 10

    def test_record_scan(self):
        stats = ExecutionStats()
        stats.record_scan(nbytes=128)
        stats.record_scan()
        assert stats.scans == 2
        assert stats.bytes_read == 128

    def test_merge(self):
        a = ExecutionStats(scans=1, ands=2, bytes_read=10, buffer_hits=1)
        b = ExecutionStats(scans=3, ors=1, files_opened=2)
        a.merge(b)
        assert a.scans == 4
        assert a.ands == 2
        assert a.ors == 1
        assert a.bytes_read == 10
        assert a.files_opened == 2
        assert a.buffer_hits == 1

    def test_copy_is_independent(self):
        a = ExecutionStats(scans=5)
        b = a.copy()
        b.scans += 1
        assert a.scans == 5
        assert b.scans == 6
