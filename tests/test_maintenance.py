"""Tests for the index-maintenance extension (append / update / delete)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import OPERATORS, Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.errors import ValueOutOfRangeError

CARDINALITY = 24
BASES = [Base((24,)), Base((6, 4)), Base((2, 3, 4)), Base.binary(24)]
ENCODINGS = list(EncodingScheme)


def _fresh(base: Base, encoding: EncodingScheme, seed: int = 8) -> BitmapIndex:
    rng = np.random.default_rng(seed)
    return BitmapIndex(rng.integers(0, CARDINALITY, 80), CARDINALITY, base, encoding)


def _assert_consistent(index: BitmapIndex) -> None:
    """Every operator/constant still matches the maintained ground truth."""
    for op in OPERATORS:
        for v in range(0, CARDINALITY, 5):
            assert evaluate(index, Predicate(op, v)) == index.naive_eval(op, v), (
                op,
                v,
            )


@pytest.mark.parametrize("base", BASES, ids=str)
@pytest.mark.parametrize("encoding", ENCODINGS)
class TestAppend:
    def test_append_then_query(self, base, encoding):
        index = _fresh(base, encoding)
        extra = np.random.default_rng(1).integers(0, CARDINALITY, 30)
        index.append(extra)
        assert index.nbits == 110
        assert all(c.nbits == 110 for c in index.components)
        _assert_consistent(index)

    def test_append_with_nulls(self, base, encoding):
        index = _fresh(base, encoding)
        extra = np.array([0, 5, 23])
        index.append(extra, nulls=np.array([False, True, False]))
        assert index.nonnull is not None
        assert not index.nonnull.get(81)  # the appended null row
        assert index.nonnull.get(80)
        _assert_consistent(index)


class TestAppendValidation:
    def test_out_of_range_values(self):
        index = _fresh(Base((6, 4)), EncodingScheme.RANGE)
        with pytest.raises(ValueOutOfRangeError):
            index.append(np.array([CARDINALITY]))

    def test_mismatched_null_mask(self):
        index = _fresh(Base((6, 4)), EncodingScheme.RANGE)
        with pytest.raises(ValueOutOfRangeError):
            index.append(np.array([1, 2]), nulls=np.array([True]))

    def test_empty_append_is_noop(self):
        index = _fresh(Base((6, 4)), EncodingScheme.RANGE)
        index.append(np.array([], dtype=np.int64))
        assert index.nbits == 80
        _assert_consistent(index)


@pytest.mark.parametrize("base", BASES, ids=str)
@pytest.mark.parametrize("encoding", ENCODINGS)
class TestUpdate:
    def test_update_then_query(self, base, encoding):
        index = _fresh(base, encoding)
        index.update(0, 23)
        index.update(79, 0)
        index.update(40, 11)
        _assert_consistent(index)

    def test_self_update_touches_nothing(self, base, encoding):
        index = _fresh(base, encoding)
        old = int(index._values[7])
        assert index.update(7, old) == 0


class TestUpdateCosts:
    def test_value_list_touches_two_bitmaps(self):
        """Equality encoding: clear the old value bitmap, set the new one."""
        index = _fresh(Base((24,)), EncodingScheme.EQUALITY)
        old = int(index._values[3])
        new = (old + 10) % CARDINALITY
        assert index.update(3, new) == 2

    def test_range_encoded_touches_digit_distance(self):
        """Range encoding flips every bitmap between old and new digit."""
        index = _fresh(Base((24,)), EncodingScheme.RANGE)
        index.update(3, 0)
        touched = index.update(3, 23)
        assert touched == 23  # bitmaps 0..22 all flip

    def test_validation(self):
        index = _fresh(Base((6, 4)), EncodingScheme.RANGE)
        with pytest.raises(ValueOutOfRangeError):
            index.update(80, 0)
        with pytest.raises(ValueOutOfRangeError):
            index.update(0, CARDINALITY)


@pytest.mark.parametrize("encoding", ENCODINGS)
class TestDelete:
    def test_delete_hides_row(self, encoding):
        index = _fresh(Base((6, 4)), encoding)
        value = int(index._values[10])
        before = evaluate(index, Predicate("=", value)).count()
        index.delete(10)
        after = evaluate(index, Predicate("=", value)).count()
        assert after == before - 1
        _assert_consistent(index)

    def test_delete_then_update_revives(self, encoding):
        index = _fresh(Base((6, 4)), encoding)
        index.delete(10)
        index.update(10, 5)
        assert index.nonnull.get(10)
        assert evaluate(index, Predicate("=", 5)).get(10)
        _assert_consistent(index)

    def test_double_delete_touches_nothing_more(self, encoding):
        index = _fresh(Base((6, 4)), encoding)
        first = index.delete(10)
        second = index.delete(10)
        assert first >= 1
        assert second == 0

    def test_rid_validation(self, encoding):
        index = _fresh(Base((6, 4)), encoding)
        with pytest.raises(ValueOutOfRangeError):
            index.delete(-1)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["append", "update", "delete"]),
            st.integers(0, 10_000),
        ),
        min_size=1,
        max_size=12,
    ),
    encoding=st.sampled_from(ENCODINGS),
)
def test_random_maintenance_sequences(ops, encoding):
    """Property: any interleaving of maintenance ops keeps queries exact."""
    rng = np.random.default_rng(0)
    index = BitmapIndex(
        rng.integers(0, CARDINALITY, 40), CARDINALITY, Base((6, 4)), encoding
    )
    for kind, seed in ops:
        op_rng = np.random.default_rng(seed)
        if kind == "append":
            index.append(op_rng.integers(0, CARDINALITY, 5))
        elif kind == "update":
            rid = int(op_rng.integers(0, index.nbits))
            index.update(rid, int(op_rng.integers(0, CARDINALITY)))
        else:
            index.delete(int(op_rng.integers(0, index.nbits)))
    for op in ("<=", "=", "!="):
        for v in (0, 7, CARDINALITY - 1):
            assert evaluate(index, Predicate(op, v)) == index.naive_eval(op, v)
