"""Tests for the cost-based plan optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.errors import InvalidPredicateError
from repro.query.executor import bitmap_index_for
from repro.query.optimizer import (
    PLAN_BITMAP_MERGE,
    PLAN_FULL_SCAN,
    PLAN_INDEX_PLUS_SCAN,
    PLAN_RIDLIST_MERGE,
    Catalog,
    choose_plan,
    estimate_selectivity,
    execute_plan,
)
from repro.query.predicate import parse_predicate
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex


@pytest.fixture
def relation(rng) -> Relation:
    return Relation.from_dict(
        "facts",
        {
            "region": rng.integers(0, 20, 4000),
            "status": rng.integers(0, 5, 4000),
        },
    )


@pytest.fixture
def full_catalog(relation) -> Catalog:
    return Catalog(
        bitmap_indexes={
            "region": bitmap_index_for(relation, "region", base=Base((5, 4))),
            "status": bitmap_index_for(relation, "status"),
        },
        rid_indexes={
            "region": RIDListIndex(relation.column("region").values),
            "status": RIDListIndex(relation.column("status").values),
        },
    )


class TestSelectivityEstimation:
    def test_equality(self, relation):
        sel = estimate_selectivity(relation, parse_predicate("region = 3"))
        assert sel == pytest.approx(1 / 20)

    def test_equality_absent_value(self, relation):
        sel = estimate_selectivity(relation, parse_predicate("region = 99"))
        assert sel == 0.0

    def test_range(self, relation):
        sel = estimate_selectivity(relation, parse_predicate("region <= 9"))
        assert sel == pytest.approx(0.5)
        sel = estimate_selectivity(relation, parse_predicate("region > 9"))
        assert sel == pytest.approx(0.5)

    def test_not_equal(self, relation):
        sel = estimate_selectivity(relation, parse_predicate("region != 3"))
        assert sel == pytest.approx(19 / 20)

    def test_extremes(self, relation):
        assert estimate_selectivity(relation, parse_predicate("region < 0")) == 0.0
        assert estimate_selectivity(relation, parse_predicate("region >= 0")) == 1.0


class TestPlanChoice:
    def test_wide_query_picks_bitmap_merge(self, relation, full_catalog):
        """The paper's headline: P3/bitmap wins for large foundsets."""
        predicates = [
            parse_predicate("region <= 15"),
            parse_predicate("status <= 3"),
        ]
        choice = choose_plan(relation, predicates, full_catalog)
        assert choice.plan == PLAN_BITMAP_MERGE
        assert choice.alternatives[PLAN_BITMAP_MERGE] < choice.alternatives[
            PLAN_RIDLIST_MERGE
        ]

    def test_needle_query_avoids_bitmap_merge(self, relation, full_catalog):
        """A tiny foundset favours the RID-list path (below 1/32)."""
        predicates = [parse_predicate("region = 3")]
        choice = choose_plan(relation, predicates, full_catalog)
        assert choice.plan in (PLAN_RIDLIST_MERGE, PLAN_INDEX_PLUS_SCAN)

    def test_no_indexes_forces_full_scan(self, relation):
        choice = choose_plan(
            relation, [parse_predicate("region <= 5")], Catalog()
        )
        assert choice.plan == PLAN_FULL_SCAN

    def test_partial_index_coverage_enables_p2(self, relation, full_catalog):
        catalog = Catalog(
            bitmap_indexes={"region": full_catalog.bitmap_indexes["region"]}
        )
        predicates = [
            parse_predicate("region = 3"),
            parse_predicate("status <= 3"),
        ]
        choice = choose_plan(relation, predicates, catalog)
        assert choice.plan == PLAN_INDEX_PLUS_SCAN
        assert choice.driving_attribute == "region"

    def test_p2_drives_with_most_selective(self, relation, full_catalog):
        predicates = [
            parse_predicate("region <= 18"),  # ~95%
            parse_predicate("status = 0"),  # 20%
        ]
        choice = choose_plan(relation, predicates, full_catalog)
        if choice.plan == PLAN_INDEX_PLUS_SCAN:
            assert choice.driving_attribute == "status"
        # Either way P2's estimate must have used the selective predicate.
        assert choice.alternatives[PLAN_INDEX_PLUS_SCAN] < relation.num_rows * (
            relation.row_bytes
        )

    def test_empty_predicates_rejected(self, relation, full_catalog):
        with pytest.raises(InvalidPredicateError):
            choose_plan(relation, [], full_catalog)

    def test_str_rendering(self, relation, full_catalog):
        choice = choose_plan(
            relation, [parse_predicate("region <= 5")], full_catalog
        )
        assert choice.plan in str(choice)


class TestExecution:
    @pytest.mark.parametrize(
        "texts",
        [
            ["region <= 15", "status <= 3"],
            ["region = 3"],
            ["region = 3", "status = 1"],
            ["region != 0"],
            ["region > 25"],  # empty result
        ],
    )
    def test_optimized_execution_correct(self, relation, full_catalog, texts):
        predicates = [parse_predicate(t) for t in texts]
        result, choice = execute_plan(relation, predicates, full_catalog)
        mask = np.ones(relation.num_rows, dtype=bool)
        for predicate in predicates:
            mask &= predicate.matches(relation.column(predicate.attribute).values)
        assert result.count == int(mask.sum())

    def test_every_plan_executes_correctly(self, relation, full_catalog):
        """Force each plan and check they all return the same rows."""
        from repro.query.optimizer import PlanChoice

        predicates = [
            parse_predicate("region <= 10"),
            parse_predicate("status <= 2"),
        ]
        baseline = None
        for plan in (
            PLAN_FULL_SCAN,
            PLAN_INDEX_PLUS_SCAN,
            PLAN_BITMAP_MERGE,
            PLAN_RIDLIST_MERGE,
        ):
            forced = PlanChoice(plan, 0, {plan: 0}, driving_attribute="status")
            result, _ = execute_plan(
                relation, predicates, full_catalog, choice=forced
            )
            if baseline is None:
                baseline = result.rids
            else:
                assert np.array_equal(result.rids, baseline)

    def test_stats_reflect_plan(self, relation, full_catalog):
        predicates = [parse_predicate("region <= 15")]
        result, choice = execute_plan(relation, predicates, full_catalog)
        if choice.plan == PLAN_BITMAP_MERGE:
            assert result.stats.scans >= 1
        else:
            assert result.stats.bytes_read > 0
