"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


#: The paper's Figure 1 example column (10 records, values 0..8).
PAPER_EXAMPLE_VALUES = np.array([3, 2, 1, 2, 8, 2, 2, 0, 7, 5])


@pytest.fixture
def paper_values() -> np.ndarray:
    return PAPER_EXAMPLE_VALUES.copy()


@pytest.fixture
def paper_index(paper_values) -> BitmapIndex:
    """The base-<3,3> range-encoded index of the paper's Figure 4(c)."""
    return BitmapIndex(paper_values, cardinality=9, base=Base((3, 3)))


def make_index(
    num_rows: int = 300,
    cardinality: int = 60,
    base: Base | None = None,
    encoding: EncodingScheme = EncodingScheme.RANGE,
    seed: int = 0,
    nulls: bool = False,
) -> BitmapIndex:
    """Build a seeded random index for tests."""
    generator = np.random.default_rng(seed)
    values = generator.integers(0, cardinality, num_rows)
    null_mask = generator.random(num_rows) < 0.1 if nulls else None
    return BitmapIndex(
        values, cardinality, base=base, encoding=encoding, nulls=null_mask
    )
