"""Tests for the Section 6-8 optimization machinery.

Every closed-form characterization is validated against brute-force
search over the enumerated design space at small cardinalities.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel
from repro.core.decomposition import Base, product
from repro.core.optimize import (
    DesignPoint,
    candidate_set_size,
    design_space,
    enumerate_bases,
    find_knee,
    find_smallest_n,
    global_space_optimal_base,
    global_time_optimal_base,
    knee_base,
    max_components,
    pareto_front,
    refine_index,
    space_optimal_base,
    space_optimal_bitmaps,
    time_optimal_base,
    time_optimal_under_space,
    time_optimal_under_space_heuristic,
)
from repro.errors import InvalidBaseError, OptimizationError


class TestMaxComponents:
    @pytest.mark.parametrize(
        "cardinality,expected",
        [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1000, 10), (1024, 10)],
    )
    def test_values(self, cardinality, expected):
        assert max_components(cardinality) == expected

    def test_rejects_tiny(self):
        with pytest.raises(InvalidBaseError):
            max_components(1)


class TestSpaceOptimal:
    def test_paper_c1000_values(self):
        assert space_optimal_base(1000, 1) == Base((1000,))
        assert space_optimal_base(1000, 2) == Base((32, 32))
        assert space_optimal_base(1000, 3) == Base((10, 10, 10))
        assert space_optimal_bitmaps(1000, 2) == 62
        assert space_optimal_bitmaps(1000, 10) == 10

    def test_covers_cardinality(self):
        for c in (10, 17, 100, 999):
            for n in range(1, max_components(c) + 1):
                base = space_optimal_base(c, n)
                assert base.covers(c)
                assert base.n == n

    @pytest.mark.parametrize("cardinality", [10, 17, 36, 100])
    def test_minimal_by_brute_force(self, cardinality):
        for n in range(1, max_components(cardinality) + 1):
            claimed = space_optimal_bitmaps(cardinality, n)
            best = min(
                costmodel.space_range(b)
                for b in enumerate_bases(
                    cardinality, exact_n=n, max_space=cardinality, tight_only=True
                )
            )
            assert claimed == best

    def test_monotone_in_components(self):
        """Theorem 6.1(2): more components never cost more bitmaps."""
        for c in (10, 100, 1000):
            sizes = [
                space_optimal_bitmaps(c, n)
                for n in range(1, max_components(c) + 1)
            ]
            assert sizes == sorted(sizes, reverse=True)

    def test_invalid_n(self):
        with pytest.raises(InvalidBaseError):
            space_optimal_base(100, 0)
        with pytest.raises(InvalidBaseError):
            space_optimal_base(100, 8)  # max is 7

    def test_global(self):
        base = global_space_optimal_base(100)
        assert base == Base.binary(100)
        assert costmodel.space_range(base) == 7


class TestTimeOptimal:
    def test_paper_c1000_values(self):
        assert time_optimal_base(1000, 1) == Base((1000,))
        assert time_optimal_base(1000, 2) == Base((2, 500))
        assert time_optimal_base(1000, 4) == Base((2, 2, 2, 125))

    @pytest.mark.parametrize("cardinality", [10, 17, 36])
    def test_fastest_by_brute_force(self, cardinality):
        for n in range(1, max_components(cardinality) + 1):
            claimed = costmodel.time_range(time_optimal_base(cardinality, n))
            best = min(
                costmodel.time_range(b)
                for b in enumerate_bases(
                    cardinality, exact_n=n, max_space=cardinality, tight_only=True
                )
            )
            assert claimed <= best + 1e-12

    def test_monotone_in_components(self):
        """Theorem 6.1(4): more components never evaluate faster."""
        for c in (10, 100, 1000):
            times = [
                costmodel.time_range(time_optimal_base(c, n))
                for n in range(1, max_components(c) + 1)
            ]
            assert times == sorted(times)

    def test_global_is_single_component(self):
        assert global_time_optimal_base(1000) == Base((1000,))

    def test_invalid_n(self):
        with pytest.raises(InvalidBaseError):
            time_optimal_base(8, 4)


class TestKnee:
    def test_paper_c1000(self):
        assert knee_base(1000) == Base((28, 36))

    def test_small_cardinalities(self):
        assert knee_base(2) == Base((2,))
        assert knee_base(3) == Base((2, 2))
        assert knee_base(4) == Base((2, 2))
        assert knee_base(100) == Base((10, 10))

    @pytest.mark.parametrize("cardinality", [9, 25, 37, 64, 100, 500, 1000])
    def test_most_time_efficient_two_component_space_optimal(self, cardinality):
        """Theorem 7.1 against brute force."""
        kb = knee_base(cardinality)
        target = space_optimal_bitmaps(cardinality, 2)
        assert costmodel.space_range(kb) == target
        best = min(
            costmodel.time_range(b)
            for b in enumerate_bases(
                cardinality, exact_n=2, max_space=target, tight_only=False
            )
            if costmodel.space_range(b) == target
        )
        assert costmodel.time_range(kb) <= best + 1e-12

    def test_covers(self):
        for c in range(2, 300):
            assert knee_base(c).covers(c)


class TestFindKnee:
    def test_definition_on_synthetic_staircase(self):
        points = [
            DesignPoint(Base((100,)), 99, 1.32),
            DesignPoint(Base((10, 10)), 18, 3.0),
            DesignPoint(Base((4, 5, 5)), 11, 4.17),
            DesignPoint(Base((2, 2, 3, 3, 3)), 8, 5.56),
            DesignPoint(Base.binary(100), 7, 6.67),
        ]
        knee = find_knee(points)
        assert knee.base == Base((10, 10))

    def test_tiny_inputs(self):
        single = [DesignPoint(Base((4,)), 3, 1.0)]
        assert find_knee(single) is single[0]
        with pytest.raises(OptimizationError):
            find_knee([])


class TestEnumeration:
    def test_tight_bases_cover_and_are_tight(self):
        for base in enumerate_bases(36, tight_only=True):
            p = product(base.bases)
            assert p >= 36
            bmax = max(base.bases)
            # Reducing the largest base number must lose coverage.
            assert (p // bmax) * (bmax - 1) < 36

    def test_necessary_bases(self):
        for base in enumerate_bases(36, necessary_only=True, tight_only=False):
            p = product(base.bases)
            assert p >= 36
            if base.n > 1:
                assert p // max(2, min(base.bases)) < 36

    def test_arrangement_largest_on_component_one(self):
        for base in enumerate_bases(36, tight_only=True):
            assert base.component(1) == max(base.bases)

    def test_exact_n_filter(self):
        for base in enumerate_bases(36, exact_n=2, max_space=36, tight_only=True):
            assert base.n == 2

    def test_max_space_filter(self):
        for base in enumerate_bases(36, max_space=12, tight_only=True):
            assert costmodel.space_range(base) <= 12

    def test_no_duplicate_multisets(self):
        seen = list(enumerate_bases(36, tight_only=True))
        assert len(seen) == len({tuple(sorted(b.bases)) for b in seen})

    def test_single_component_tight_is_exactly_c(self):
        singles = [
            b for b in enumerate_bases(36, tight_only=True) if b.n == 1
        ]
        assert singles == [Base((36,))]

    def test_unbounded_unrestricted_rejected(self):
        with pytest.raises(OptimizationError):
            list(enumerate_bases(36, tight_only=False, necessary_only=False))

    def test_unrestricted_counts_more(self):
        tight = sum(1 for _ in enumerate_bases(36, max_space=20, tight_only=True))
        loose = sum(
            1
            for _ in enumerate_bases(
                36, max_space=20, tight_only=False, necessary_only=False
            )
        )
        assert loose > tight


class TestParetoFront:
    def test_removes_dominated(self):
        pts = [
            DesignPoint(Base((4,)), 3, 1.0),
            DesignPoint(Base((5,)), 4, 1.5),  # dominated: more space & time
            DesignPoint(Base((2, 2)), 2, 2.0),
        ]
        front = pareto_front(pts)
        assert [p.space for p in front] == [2, 3]

    def test_keeps_faster_of_equal_space(self):
        pts = [
            DesignPoint(Base((4,)), 3, 2.0),
            DesignPoint(Base((2, 2)), 3, 1.0),
        ]
        front = pareto_front(pts)
        assert len(front) == 1
        assert front[0].time == 1.0

    def test_design_space_cloud(self):
        cloud = design_space(36)
        front = pareto_front(cloud)
        assert front
        for p in front:
            assert not any(
                q.space <= p.space and q.time < p.time - 1e-12 for q in cloud
            )


class TestFindSmallestN:
    @pytest.mark.parametrize("cardinality", [20, 36, 100])
    def test_space_is_exactly_budget(self, cardinality):
        for budget in range(max_components(cardinality), cardinality):
            n, seed = find_smallest_n(budget, cardinality)
            assert seed.n == n
            assert costmodel.space_range(seed) == budget
            assert seed.covers(cardinality)

    def test_n_is_smallest_feasible(self):
        for budget in range(7, 40):
            n, _ = find_smallest_n(budget, 100)
            assert space_optimal_bitmaps(100, n) <= budget
            if n > 1:
                assert space_optimal_bitmaps(100, n - 1) > budget

    def test_budget_below_minimum_rejected(self):
        with pytest.raises(OptimizationError):
            find_smallest_n(6, 100)  # minimum is 7 (base-2)


class TestRefineIndex:
    def test_worked_shape(self):
        refined = refine_index(Base((10, 10, 10)), 100)
        assert refined.covers(100)
        assert costmodel.space_range(refined) <= costmodel.space_range(
            Base((10, 10, 10))
        )
        assert costmodel.time_range(refined) <= costmodel.time_range(
            Base((10, 10, 10))
        )

    def test_single_component_shrinks_to_c(self):
        assert refine_index(Base((40,)), 36) == Base((36,))

    @settings(max_examples=120, deadline=None)
    @given(
        bases=st.lists(st.integers(2, 15), min_size=1, max_size=5),
        data=st.data(),
    )
    def test_invariants_property(self, bases, data):
        base = Base(tuple(sorted(bases)))
        cardinality = data.draw(st.integers(2, base.capacity))
        refined = refine_index(base, cardinality)
        assert refined.n == base.n
        assert refined.covers(cardinality)
        assert costmodel.space_range(refined) <= costmodel.space_range(base)
        assert costmodel.time_range(refined) <= costmodel.time_range(base) + 1e-12


class TestTimeOptUnderSpace:
    @pytest.mark.parametrize("cardinality", [20, 36])
    def test_exact_against_brute_force(self, cardinality):
        for budget in range(max_components(cardinality), cardinality):
            chosen = time_optimal_under_space(budget, cardinality)
            assert costmodel.space_range(chosen) <= budget
            best = min(
                costmodel.time_range(b)
                for b in enumerate_bases(
                    cardinality, max_space=budget, tight_only=True
                )
            )
            assert costmodel.time_range(chosen) <= best + 1e-12

    def test_generous_budget_returns_global_time_optimal(self):
        assert time_optimal_under_space(999, 1000) == Base((1000,))

    def test_heuristic_feasible_and_near_optimal(self):
        cardinality = 100
        optimal_hits = 0
        total = 0
        for budget in range(max_components(cardinality), cardinality):
            heuristic = time_optimal_under_space_heuristic(budget, cardinality)
            assert costmodel.space_range(heuristic) <= budget
            assert heuristic.covers(cardinality)
            exact = time_optimal_under_space(budget, cardinality)
            total += 1
            if costmodel.time_range(heuristic) <= costmodel.time_range(exact) + 1e-9:
                optimal_hits += 1
        # The paper reports >= 97%; give a small safety margin.
        assert optimal_hits / total >= 0.95

    def test_budget_below_minimum_rejected(self):
        with pytest.raises(OptimizationError):
            time_optimal_under_space(5, 100)
        with pytest.raises(OptimizationError):
            time_optimal_under_space_heuristic(5, 100)


class TestCandidateSetSize:
    def test_early_exit_is_one(self):
        assert candidate_set_size(99, 100) == 1

    def test_counts_positive(self):
        for budget in (10, 20, 40):
            assert candidate_set_size(budget, 100) >= 1

    def test_matches_direct_enumeration(self):
        cardinality, budget = 36, 12
        # Recompute by the definition, mirroring the algorithm's window.
        n0 = next(
            n
            for n in range(1, max_components(cardinality) + 1)
            if space_optimal_bitmaps(cardinality, n) <= budget
        )
        if costmodel.space_range(time_optimal_base(cardinality, n0)) <= budget:
            expected = 1
        else:
            n1 = next(
                n
                for n in range(n0, max_components(cardinality) + 1)
                if costmodel.space_range(time_optimal_base(cardinality, n)) <= budget
            )
            expected = 1 + sum(
                sum(
                    1
                    for _ in enumerate_bases(
                        cardinality,
                        max_space=budget,
                        exact_n=k,
                        tight_only=False,
                        necessary_only=False,
                    )
                )
                for k in range(n0, n1)
            )
        assert candidate_set_size(budget, cardinality) == expected
